//! `schemacast` — command-line schema-cast revalidation.
//!
//! ```text
//! schemacast validate --schema S.xsd doc.xml [doc2.xml ...]
//! schemacast cast --source S.xsd --target T.xsd [--stream] [--stats] doc.xml ...
//! schemacast batch --source S.xsd --target T.xsd [--threads N] [--warm-up] doc.xml ...
//! schemacast batch --source S.xsd --target T.xsd --dir CORPUS/ [--cache verdicts.scvc]
//! schemacast batch --source S.xsd --target T.xsd --manifest files.txt [--cache ...]
//! schemacast repair --source S.xsd --target T.xsd --out fixed.xml doc.xml
//! schemacast inspect --source S.xsd --target T.xsd
//! schemacast analyze S.xsd Sprime.xsd [--json]
//! schemacast lint S.xsd [Sprime.xsd] [--json | --sarif] [--fail-on warn|error]
//! schemacast certify S.xsd Sprime.xsd [--json]
//! schemacast chain v1.xsd v2.xsd [v3.xsd ...] [--json | --sarif] [--certify]
//! ```
//!
//! `batch` with `--dir`, `--manifest`, or `--stream` runs the
//! bounded-memory corpus pipeline: paths stream through a bounded queue
//! to the workers, documents are memory-mapped and validated off the
//! tape without ever materializing the corpus in memory, and per-file
//! read failures become per-item verdicts instead of aborting the run.
//! `--cache PATH` adds the persistent content-hash verdict cache: hits
//! replay recorded verdicts, and the cache goes cold automatically when
//! the schema pair, cast options, or computed relations change. With
//! `--certify`, only entries recorded under the same certified
//! fingerprint are trusted.
//!
//! Schemas ending in `.dtd` are parsed as DTDs (root taken from the first
//! document's DOCTYPE, or `--root NAME`).
//!
//! Every verdict-bearing subcommand shares one exit contract:
//! **0** = clean (all documents valid / no findings at the gate severity /
//! every certificate checked / evolution fully stable), **1** = a negative
//! verdict (some document invalid, a finding at or above `--fail-on`, a
//! rejected certificate, an unstable `analyze` diff, a broken chain),
//! **2** = usage, I/O, or parse error — the input never got a verdict.
//!
//! `certify` emits proof certificates for every static claim of the pair's
//! preprocessing and validates them with the independent checker (exit 1 if
//! any fails). `--certify` on `cast` / `batch` / `analyze` / `chain` runs
//! the same pass before any document is touched and fails closed (exit 2)
//! unless every claim is certified; on `chain` it adds the composition
//! certificates (the per-hop tuples behind every composed end-to-end fact).

use schemacast::analysis;
use schemacast::core::certification_digest;
use schemacast::core::certify::{certify_context, certify_context_with_scripts, CertificationRun};
use schemacast::core::{
    certify_chain, CastContext, FullValidator, Repairer, SchemaChain, Severity, StreamingCast,
};
use schemacast::engine::{BatchEngine, CorpusOptions, CorpusSource, ItemOutcome, VerdictCache};
use schemacast::schema::{AbstractSchema, SchemaSpans, Session};
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::xml::parse_document;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    command: String,
    schema: Option<String>,
    source: Option<String>,
    target: Option<String>,
    root: Option<String>,
    out: Option<String>,
    threads: Option<usize>,
    dir: Option<String>,
    manifest: Option<String>,
    cache: Option<String>,
    stream: bool,
    stats: bool,
    warm_up: bool,
    certify: bool,
    json: bool,
    sarif: bool,
    fail_on: Option<String>,
    script: Option<String>,
    docs: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  schemacast validate --schema S.xsd doc.xml...\n  \
         schemacast cast --source S.xsd --target T.xsd [--stream] [--stats] [--certify] \
         doc.xml...\n  \
         schemacast batch --source S.xsd --target T.xsd [--threads N] [--stream] \
         [--warm-up] [--stats] [--certify] doc.xml...\n  \
         schemacast batch --source S.xsd --target T.xsd (--dir DIR | --manifest FILE) \
         [--cache PATH] [--threads N] [--stats] [--certify]\n  \
         schemacast repair --source S.xsd --target T.xsd [--out fixed.xml] doc.xml\n  \
         schemacast inspect --source S.xsd --target T.xsd\n  \
         schemacast analyze S.xsd Sprime.xsd [--json] [--certify]\n  \
         schemacast analyze S.xsd Sprime.xsd doc.xml --script edits.txt \
         [--json | --sarif] [--certify]\n  \
         schemacast lint S.xsd [Sprime.xsd] [--json | --sarif] [--fail-on warn|error]\n  \
         schemacast certify S.xsd Sprime.xsd [--json]\n  \
         schemacast chain v1.xsd v2.xsd [v3.xsd ...] [--json | --sarif] [--certify] \
         [--fail-on warn|error]\n  \
         (use .dtd schema files with optional --root NAME)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        schema: None,
        source: None,
        target: None,
        root: None,
        out: None,
        threads: None,
        dir: None,
        manifest: None,
        cache: None,
        stream: false,
        stats: false,
        warm_up: false,
        certify: false,
        json: false,
        sarif: false,
        fail_on: None,
        script: None,
        docs: Vec::new(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schema" => opts.schema = args.next(),
            "--source" => opts.source = args.next(),
            "--target" => opts.target = args.next(),
            "--root" => opts.root = args.next(),
            "--out" => opts.out = args.next(),
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads requires a number");
                    return Err(usage());
                };
                opts.threads = Some(n);
            }
            "--dir" => opts.dir = args.next(),
            "--manifest" => opts.manifest = args.next(),
            "--cache" => opts.cache = args.next(),
            "--stream" => opts.stream = true,
            "--stats" => opts.stats = true,
            "--warm-up" => opts.warm_up = true,
            "--certify" => opts.certify = true,
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--fail-on" => opts.fail_on = args.next(),
            "--script" => opts.script = args.next(),
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a}");
                return Err(usage());
            }
            _ => opts.docs.push(a),
        }
    }
    // `analyze` and `certify` take their two schemas as positional
    // arguments.
    if opts.command == "analyze" || opts.command == "certify" {
        // `analyze --script` adds a document positional after the schemas.
        let want = if opts.command == "analyze" && opts.script.is_some() {
            3
        } else {
            2
        };
        if opts.docs.len() != want {
            if want == 3 {
                eprintln!("analyze --script requires two schema files and one document");
            } else {
                eprintln!("{} requires exactly two schema files", opts.command);
            }
            return Err(usage());
        }
        if opts.json && opts.sarif {
            eprintln!("--json and --sarif are mutually exclusive");
            return Err(usage());
        }
        return Ok(opts);
    }
    // `lint` takes one schema (hygiene) or two (evolution compatibility);
    // `chain` takes the whole version sequence.
    if opts.command == "lint" || opts.command == "chain" {
        if opts.command == "lint" && (opts.docs.is_empty() || opts.docs.len() > 2) {
            eprintln!("lint requires one or two schema files");
            return Err(usage());
        }
        if opts.command == "chain" && opts.docs.len() < 2 {
            eprintln!("chain requires at least two schema files (v1 v2 [v3 ...])");
            return Err(usage());
        }
        if opts.json && opts.sarif {
            eprintln!("--json and --sarif are mutually exclusive");
            return Err(usage());
        }
        match opts.fail_on.as_deref() {
            None | Some("warn" | "error") => {}
            Some(other) => {
                eprintln!("--fail-on must be `warn` or `error`, got {other:?}");
                return Err(usage());
            }
        }
        return Ok(opts);
    }
    // `batch --dir` / `--manifest` name their corpus via the flag; the
    // two sources (and a positional file list) are mutually exclusive.
    if opts.command == "batch" {
        let sources = usize::from(opts.dir.is_some())
            + usize::from(opts.manifest.is_some())
            + usize::from(!opts.docs.is_empty());
        if sources > 1 {
            eprintln!("--dir, --manifest, and a positional file list are mutually exclusive");
            return Err(usage());
        }
        if sources == 1 {
            return Ok(opts);
        }
    }
    if opts.docs.is_empty() && opts.command != "inspect" {
        eprintln!("no documents given");
        return Err(usage());
    }
    Ok(opts)
}

fn load_schema(
    path: &str,
    root: Option<&str>,
    session: &mut Session,
) -> Result<AbstractSchema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".dtd") {
        session
            .parse_dtd(&text, root)
            .map_err(|e| format!("{path}: {e}"))
    } else {
        session.parse_xsd(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_doc(path: &str, session: &mut Session) -> Result<(Doc, String), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let xml = parse_document(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((
        Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim),
        text,
    ))
}

/// The `--certify` gate: certifies the pair's preprocessing and fails
/// closed unless every static claim passes the independent checker. On
/// success returns the run so callers can surface the counters.
fn certify_gate(ctx: &CastContext<'_>) -> Result<CertificationRun, ExitCode> {
    let run = certify_context(ctx);
    if run.all_certified() {
        Ok(run)
    } else {
        for d in &run.diagnostics {
            eprintln!("{d}");
        }
        eprintln!(
            "certification failed: {} finding(s); refusing to proceed",
            run.diagnostics.len()
        );
        Err(ExitCode::from(2))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let mut session = Session::new();
    let mut any_invalid = false;

    match opts.command.as_str() {
        "validate" => {
            let Some(schema_path) = opts.schema.as_deref() else {
                eprintln!("validate requires --schema");
                return usage();
            };
            let schema = match load_schema(schema_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let validator = FullValidator::new(&schema);
            for path in &opts.docs {
                match load_doc(path, &mut session) {
                    Ok((doc, _)) => {
                        let (out, stats) = validator.validate_with_stats(&doc);
                        println!(
                            "{path}: {}",
                            if out.is_valid() { "valid" } else { "INVALID" }
                        );
                        if opts.stats {
                            println!("  nodes visited: {}", stats.nodes_visited);
                        }
                        any_invalid |= !out.is_valid();
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
        "inspect" => {
            let (Some(src_path), Some(tgt_path)) = (opts.source.as_deref(), opts.target.as_deref())
            else {
                eprintln!("inspect requires --source and --target");
                return usage();
            };
            let source = match load_schema(src_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let target = match load_schema(tgt_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let ctx = CastContext::new(&source, &target, &session.alphabet);
            let rel = ctx.relations();
            println!(
                "source: {} types   target: {} types   (DTD-style: {}/{})",
                source.type_count(),
                target.type_count(),
                source.is_dtd_style(),
                target.is_dtd_style()
            );
            println!(
                "subsumed pairs: {}   disjoint pairs: {}\n",
                rel.subsumed_pair_count(),
                rel.disjoint_pair_count()
            );
            // Per same-named type pair, the relation the validator will use.
            println!("{:<28} {:<28} relation", "source type", "target type");
            for s_id in source.type_ids() {
                let name = source.type_name(s_id);
                let Some(t_id) = target.type_by_name(name) else {
                    continue;
                };
                let relation = if rel.subsumed(s_id, t_id) {
                    "subsumed (skip)"
                } else if rel.disjoint(s_id, t_id) {
                    "disjoint (reject)"
                } else {
                    "check"
                };
                println!("{:<28} {:<28} {}", name, target.type_name(t_id), relation);
            }
            return ExitCode::SUCCESS;
        }
        "batch" => {
            let (Some(src_path), Some(tgt_path)) = (opts.source.as_deref(), opts.target.as_deref())
            else {
                eprintln!("batch requires --source and --target");
                return usage();
            };
            let source = match load_schema(src_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let target = match load_schema(tgt_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            // `--dir` / `--manifest` / `--stream` all run the streaming
            // corpus pipeline: bounded memory, mmap'd documents, per-file
            // read failures as per-item verdicts. Plain positional batches
            // keep the tree path (documents parsed up front, interning
            // labels into the shared alphabet).
            let corpus_source = if let Some(dir) = &opts.dir {
                Some(CorpusSource::Dir(PathBuf::from(dir)))
            } else if let Some(man) = &opts.manifest {
                Some(CorpusSource::Manifest(PathBuf::from(man)))
            } else if opts.stream {
                Some(CorpusSource::Paths(
                    opts.docs.iter().map(PathBuf::from).collect(),
                ))
            } else {
                None
            };
            let mut docs: Vec<Doc> = Vec::new();
            if corpus_source.is_none() {
                for path in &opts.docs {
                    match load_doc(path, &mut session) {
                        Ok((doc, _)) => docs.push(doc),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            let ctx = CastContext::new(&source, &target, &session.alphabet);
            let engine = BatchEngine::with_workers(&ctx, opts.threads.unwrap_or(0));
            let cert_run = if opts.certify {
                match certify_gate(&ctx) {
                    Ok(run) => Some(run),
                    Err(code) => return code,
                }
            } else {
                None
            };
            if opts.warm_up {
                let built = engine.warm_up();
                println!("warm-up: {built} product IDA(s) precomputed");
            }

            if let Some(corpus) = corpus_source {
                // The cache trusts an existing file only under the same
                // context fingerprint — and, when certifying, the same
                // certification digest.
                let fp = ctx.fingerprint(&session.alphabet);
                let cert_digest = cert_run
                    .as_ref()
                    .map_or(0, |run| certification_digest(fp, run));
                let mut cache = opts
                    .cache
                    .as_deref()
                    .map(|p| VerdictCache::load(Path::new(p), fp, cert_digest));
                let mut report = match engine.validate_corpus(
                    &corpus,
                    &session.alphabet,
                    cache.as_mut(),
                    &CorpusOptions::default(),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("batch: {e}");
                        return ExitCode::from(2);
                    }
                };
                if let (Some(cache), Some(path)) = (&cache, opts.cache.as_deref()) {
                    if let Err(e) = cache.save(Path::new(path)) {
                        eprintln!("warning: cannot save cache {path}: {e}");
                    }
                }
                if let Some(run) = &cert_run {
                    report.totals += run.stats();
                }
                let mut any_malformed = false;
                for item in &report.items {
                    let path = item.path.display();
                    match &item.outcome {
                        ItemOutcome::Valid => println!("{path}: valid"),
                        ItemOutcome::Invalid | ItemOutcome::ChainBroken { .. } => {
                            println!("{path}: INVALID");
                            any_invalid = true;
                        }
                        ItemOutcome::MalformedXml(e) => {
                            println!("{path}: MALFORMED ({e})");
                            any_malformed = true;
                        }
                        ItemOutcome::ReadFailed(e) | ItemOutcome::EditFailed(e) => {
                            println!("{path}: READ FAILED ({e})");
                            any_malformed = true;
                        }
                    }
                }
                println!(
                    "batch: {} doc(s) on {} worker(s) in {:.1?}  ({:.0} docs/sec)  \
                     valid {} / invalid {} / malformed {} / read-failed {}",
                    report.items.len(),
                    report.workers,
                    report.elapsed,
                    report.docs_per_sec(),
                    report.valid,
                    report.invalid,
                    report.malformed,
                    report.read_failed
                );
                if opts.stats {
                    println!(
                        "  nodes visited: {}   subsumed skips: {}   value checks: {}",
                        report.totals.nodes_visited,
                        report.totals.subsumed_skips,
                        report.totals.value_checks
                    );
                    println!(
                        "  bytes skipped lexically: {}   tag events avoided: {}",
                        report.totals.bytes_skipped, report.totals.events_avoided
                    );
                    if report.totals.tape_events > 0 {
                        println!(
                            "  tape events: {}   tape skip hops: {}   index build: {} us",
                            report.totals.tape_events,
                            report.totals.tape_skip_hops,
                            report.totals.index_build_micros
                        );
                    }
                    println!(
                        "  cache hits: {}   cache misses: {}",
                        report.cache_hits, report.cache_misses
                    );
                    println!(
                        "  bytes mmapped: {}   bytes read: {}",
                        report.bytes_mmapped, report.bytes_read
                    );
                    if cert_run.is_some() {
                        println!(
                            "  certificates: {} emitted, {} checked in {} us",
                            report.totals.certs_emitted,
                            report.totals.certs_checked,
                            report.totals.cert_check_micros
                        );
                    }
                }
                if any_malformed {
                    return ExitCode::from(2);
                }
            } else {
                let mut report = engine.validate_docs(&docs);
                if let Some(run) = &cert_run {
                    report.totals += run.stats();
                }
                let mut any_malformed = false;
                for (path, item) in opts.docs.iter().zip(&report.items) {
                    match &item.outcome {
                        ItemOutcome::Valid => println!("{path}: valid"),
                        ItemOutcome::Invalid => {
                            println!("{path}: INVALID");
                            any_invalid = true;
                        }
                        ItemOutcome::MalformedXml(e) => {
                            println!("{path}: MALFORMED ({e})");
                            any_malformed = true;
                        }
                        ItemOutcome::EditFailed(e) | ItemOutcome::ReadFailed(e) => {
                            println!("{path}: EDIT FAILED ({e})");
                            any_malformed = true;
                        }
                        ItemOutcome::ChainBroken { hop } => {
                            println!("{path}: CHAIN BROKEN (hop {hop})");
                            any_invalid = true;
                        }
                    }
                }
                println!(
                    "batch: {} doc(s) on {} worker(s) in {:.1?}  ({:.0} docs/sec)  \
                     valid {} / invalid {} / malformed {}",
                    report.items.len(),
                    report.workers,
                    report.elapsed,
                    report.docs_per_sec(),
                    report.valid,
                    report.invalid,
                    report.malformed
                );
                if opts.stats {
                    println!(
                        "  nodes visited: {}   subsumed skips: {}   value checks: {}",
                        report.totals.nodes_visited,
                        report.totals.subsumed_skips,
                        report.totals.value_checks
                    );
                    println!(
                        "  bytes skipped lexically: {}   tag events avoided: {}",
                        report.totals.bytes_skipped, report.totals.events_avoided
                    );
                    if report.totals.tape_events > 0 {
                        println!(
                            "  tape events: {}   tape skip hops: {}   index build: {} us",
                            report.totals.tape_events,
                            report.totals.tape_skip_hops,
                            report.totals.index_build_micros
                        );
                    }
                    if cert_run.is_some() {
                        println!(
                            "  certificates: {} emitted, {} checked in {} us",
                            report.totals.certs_emitted,
                            report.totals.certs_checked,
                            report.totals.cert_check_micros
                        );
                    }
                }
                if any_malformed {
                    return ExitCode::from(2);
                }
            }
        }
        "cast" | "repair" => {
            let (Some(src_path), Some(tgt_path)) = (opts.source.as_deref(), opts.target.as_deref())
            else {
                eprintln!("{} requires --source and --target", opts.command);
                return usage();
            };
            let source = match load_schema(src_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let target = match load_schema(tgt_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            // Documents must be loaded (or at least alphabet-interned)
            // against the shared alphabet; for streaming we hold the text.
            let mut loaded = Vec::new();
            for path in &opts.docs {
                match load_doc(path, &mut session) {
                    Ok(pair) => loaded.push((path.clone(), pair)),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let ctx = CastContext::new(&source, &target, &session.alphabet);
            let cert_run = if opts.certify {
                match certify_gate(&ctx) {
                    Ok(run) => Some(run),
                    Err(code) => return code,
                }
            } else {
                None
            };
            if let (true, Some(run)) = (opts.stats, &cert_run) {
                println!(
                    "certificates: {} emitted, {} checked in {} us",
                    run.certs_emitted, run.certs_checked, run.check_micros
                );
            }
            if opts.command == "repair" {
                let repairer = Repairer::new(&ctx, &session.alphabet);
                for (path, (doc, _)) in &loaded {
                    match repairer.repair(doc) {
                        Ok((fixed, actions)) => {
                            println!("{path}: {} change(s)", actions.len());
                            for a in &actions {
                                println!("  {a}");
                            }
                            let xml_out =
                                schemacast::xml::to_pretty_string(&fixed.to_xml(&session.alphabet));
                            match opts.out.as_deref() {
                                Some(out_path) => {
                                    if let Err(e) = std::fs::write(out_path, xml_out) {
                                        eprintln!("cannot write {out_path}: {e}");
                                        return ExitCode::from(2);
                                    }
                                    println!("  wrote {out_path}");
                                }
                                None => print!("{xml_out}"),
                            }
                        }
                        Err(e) => {
                            eprintln!("{path}: unrepairable: {e}");
                            any_invalid = true;
                        }
                    }
                }
            } else {
                for (path, (doc, text)) in &loaded {
                    let (out, stats) = if opts.stream {
                        match StreamingCast::new(&ctx).validate_str(text, &session.alphabet) {
                            Ok(r) => r,
                            Err(e) => {
                                eprintln!("{path}: {e}");
                                return ExitCode::from(2);
                            }
                        }
                    } else {
                        ctx.validate_with_stats(doc)
                    };
                    println!(
                        "{path}: {}",
                        if out.is_valid() { "valid" } else { "INVALID" }
                    );
                    if opts.stats {
                        println!(
                            "  nodes visited: {} / {}   subsumed skips: {}   value checks: {}",
                            stats.nodes_visited,
                            doc.node_count(),
                            stats.subsumed_skips,
                            stats.value_checks
                        );
                        if opts.stream {
                            println!(
                                "  bytes skipped lexically: {} / {}   tag events avoided: {}",
                                stats.bytes_skipped,
                                text.len(),
                                stats.events_avoided
                            );
                            println!(
                                "  tape events: {}   tape skip hops: {}   index build: {} us",
                                stats.tape_events, stats.tape_skip_hops, stats.index_build_micros
                            );
                        }
                    }
                    any_invalid |= !out.is_valid();
                }
            }
        }
        "lint" => {
            // Parse every schema and keep the raw text: the span scanner
            // anchors diagnostics to file positions the parser discards.
            let mut parsed: Vec<(String, AbstractSchema, Option<SchemaSpans>)> = Vec::new();
            for path in &opts.docs {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let (schema, spans) = if path.ends_with(".dtd") {
                    match session.parse_dtd(&text, opts.root.as_deref()) {
                        Ok(s) => (s, None),
                        Err(e) => {
                            eprintln!("{path}: {e}");
                            return ExitCode::from(2);
                        }
                    }
                } else {
                    match session.parse_xsd(&text) {
                        Ok(s) => (s, Some(SchemaSpans::scan(&text))),
                        Err(e) => {
                            eprintln!("{path}: {e}");
                            return ExitCode::from(2);
                        }
                    }
                };
                parsed.push((path.clone(), schema, spans));
            }
            let mut report = analysis::LintReport::default();
            for (path, schema, spans) in &parsed {
                report.extend(analysis::lint_schema(
                    schema,
                    &session.alphabet,
                    Some(path),
                    spans.as_ref(),
                ));
            }
            if let [_, (tgt_path, target, tgt_spans)] = parsed.as_slice() {
                let source = &parsed[0].1;
                let ctx = CastContext::new(source, target, &session.alphabet);
                let target_info = tgt_spans.as_ref().map(|s| (tgt_path.as_str(), s));
                report.extend(analysis::lint_pair(&ctx, &session.alphabet, target_info));
            }
            if opts.sarif {
                println!("{}", analysis::render_sarif(&report));
            } else if opts.json {
                println!("{}", analysis::render_lint_json(&report));
            } else {
                print!("{}", analysis::render_lint_text(&report));
            }
            let threshold = match opts.fail_on.as_deref() {
                Some("warn") => Severity::Warning,
                _ => Severity::Error,
            };
            return if report.fails(threshold) {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            };
        }
        "analyze" => {
            let (src_path, tgt_path) = (&opts.docs[0], &opts.docs[1]);
            let source = match load_schema(src_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let target = match load_schema(tgt_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(script_path) = &opts.script {
                // Whole-script mode: judge one (document, edit script) pair.
                let (doc, _) = match load_doc(&opts.docs[2], &mut session) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                };
                let script_text = match std::fs::read_to_string(script_path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {script_path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                // Script labels are interned before the context borrows the
                // alphabet; late symbols land in each DFA's sink state.
                let edits = match analysis::parse_script(&doc, &mut session.alphabet, &script_text)
                {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("{script_path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let ctx = CastContext::new(&source, &target, &session.alphabet);
                if !source.accepts_document(&doc) {
                    eprintln!("{}: document is not valid against {src_path}", opts.docs[2]);
                    return ExitCode::from(2);
                }
                if opts.certify {
                    let run = certify_context_with_scripts(&ctx, &[(&doc, &edits)]);
                    if !run.all_certified() {
                        for d in &run.diagnostics {
                            eprintln!("{d}");
                        }
                        eprintln!(
                            "certification failed: {} finding(s); refusing to proceed",
                            run.diagnostics.len()
                        );
                        return ExitCode::from(2);
                    }
                }
                let report = analysis::analyze_script(&ctx, &doc, &edits);
                if opts.sarif {
                    println!("{}", analysis::render_sarif(&report.lint));
                } else if opts.json {
                    println!("{}", analysis::render_script_json(&report));
                } else {
                    print!("{}", analysis::render_script_text(&report));
                }
                // Exit contract: statically rejected scripts fail the gate;
                // accepted and fallback scripts are not errors.
                return if report.outcome == analysis::ScriptOutcome::Rejected {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                };
            }
            let ctx = CastContext::new(&source, &target, &session.alphabet);
            if opts.certify {
                if let Err(code) = certify_gate(&ctx) {
                    return code;
                }
            }
            let report = analysis::analyze(&ctx, &session.alphabet);
            if opts.json {
                println!("{}", analysis::render_json(&report));
            } else {
                print!("{}", analysis::render_text(&report));
            }
            // Exit contract: 0 only when the evolution is fully
            // subsumption-stable (nothing changed, went disjoint, or was
            // removed) — the same gate shape as `lint --fail-on error`.
            return if report.is_stable() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            };
        }
        "certify" => {
            let (src_path, tgt_path) = (&opts.docs[0], &opts.docs[1]);
            let source = match load_schema(src_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let target = match load_schema(tgt_path, opts.root.as_deref(), &mut session) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let ctx = CastContext::new(&source, &target, &session.alphabet);
            let run = certify_context(&ctx);
            if opts.json {
                println!("{}", analysis::render_certify_json(&run));
            } else {
                print!("{}", analysis::render_certify_text(&run));
            }
            return if run.all_certified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            };
        }
        "chain" => {
            let mut schemas = Vec::with_capacity(opts.docs.len());
            for path in &opts.docs {
                match load_schema(path, opts.root.as_deref(), &mut session) {
                    Ok(s) => schemas.push(s),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let chain = match SchemaChain::new(&schemas, &session.alphabet) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            if opts.certify {
                let run = certify_chain(&chain);
                if !run.all_certified() {
                    for d in &run.diagnostics {
                        eprintln!("{d}");
                    }
                    eprintln!(
                        "chain certification failed: {} finding(s); refusing to proceed",
                        run.diagnostics.len()
                    );
                    return ExitCode::from(2);
                }
                if opts.stats && !opts.json && !opts.sarif {
                    println!("{}", run.stats());
                }
            }
            let report = analysis::analyze_chain(&chain, &session.alphabet);
            if opts.sarif {
                println!("{}", analysis::render_sarif(&report.lint));
            } else if opts.json {
                println!("{}", analysis::render_chain_json(&report));
            } else {
                print!("{}", analysis::render_chain_text(&report));
            }
            let threshold = match opts.fail_on.as_deref() {
                Some("warn") => Severity::Warning,
                _ => Severity::Error,
            };
            return if report.lint.fails(threshold) {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            };
        }
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    }
    if any_invalid {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
