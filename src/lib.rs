#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # schemacast
//!
//! A reproduction of **“Efficient Schema-Based Revalidation of XML”**
//! (Raghavachari & Shmueli, EDBT 2004): given an XML document known to be
//! valid with respect to one schema, decide — much faster than full
//! revalidation — whether it is valid with respect to another schema,
//! optionally after a sequence of edits.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`regex`] — content-model regular expressions, Glushkov automata,
//!   one-unambiguity.
//! * [`automata`] — DFAs, products, inclusion tests, immediate decision
//!   automata, string revalidation (§4 of the paper).
//! * [`xml`] — a from-scratch XML parser and serializer.
//! * [`tree`] — ordered labeled trees, Dewey numbers, edits and Δ-encoding.
//! * [`schema`] — abstract XML Schemas, simple types and facets, DTD and
//!   XSD front-ends.
//! * [`core`] — the schema-cast validators and the `R_sub`/`R_dis`
//!   relations (§3).
//! * [`engine`] — the parallel batch revalidation engine (one shared
//!   [`core::CastContext`], a scoped worker pool, deterministic reports).
//! * [`analysis`] — static update-safety reports: which edits are
//!   SAFE/UNSAFE/DYNAMIC for a schema pair, before touching any document.
//! * [`certify`] — the independent certificate checker: a dependency-free
//!   validator for the proof certificates `core::certify` emits for every
//!   static claim (relation memberships, IDA decision sets, safety
//!   verdicts).
//! * [`workload`] — generators reproducing the paper's experiments.
//!
//! ## Quick start
//!
//! ```
//! use schemacast::schema::Session;
//! use schemacast::core::{CastContext, CastOutcome};
//! use schemacast::workload::purchase_order as po;
//!
//! // Source schema: billTo optional. Target: billTo required.
//! let mut session = Session::new();
//! let source = session.parse_xsd(&po::source_xsd()).unwrap();
//! let target = session.parse_xsd(&po::target_xsd()).unwrap();
//!
//! // A document with 5 items, valid for the source schema.
//! let doc = po::generate_document(&mut session.alphabet, 5, true);
//!
//! // Preprocess the schema pair once; revalidate many documents.
//! let ctx = CastContext::new(&source, &target, &session.alphabet);
//! assert_eq!(ctx.validate(&doc), CastOutcome::Valid);
//! ```

pub use schemacast_analysis as analysis;
pub use schemacast_automata as automata;
pub use schemacast_certify as certify;
pub use schemacast_core as core;
pub use schemacast_engine as engine;
pub use schemacast_regex as regex;
pub use schemacast_schema as schema;
pub use schemacast_tree as tree;
pub use schemacast_workload as workload;
pub use schemacast_xml as xml;
