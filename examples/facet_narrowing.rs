//! Experiment 2 end-to-end (Figure 3b and Table 3 of the paper): the source
//! schema is Figure 2 with `quantity`'s `maxExclusive` raised to 200; the
//! target is Figure 2 itself (`maxExclusive=100`).
//!
//! The quantity types are neither subsumed nor disjoint, so every
//! `quantity` value must be checked — but the address subtrees and the
//! other item children are skipped, giving the paper's ~30% speedup and
//! ~20% fewer node visits.
//!
//! Run with: `cargo run --release --example facet_narrowing`

use schemacast::core::{CastContext, FullValidator};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;
use std::time::Instant;

fn main() {
    let mut session = Session::new();
    let source = session
        .parse_xsd(&po::source_maxex200_xsd())
        .expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>12} {:>12}",
        "items", "cast visits", "full visits", "ratio", "cast µs", "full µs"
    );
    for n in [2usize, 50, 100, 200, 500, 1000] {
        let doc = po::generate_document(&mut session.alphabet, n, true);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(out.is_valid());
        let (_, full_stats) = FullValidator::new(&target).validate_with_stats(&doc);

        let t0 = Instant::now();
        for _ in 0..10 {
            assert!(ctx.validate(&doc).is_valid());
        }
        let cast_us = t0.elapsed().as_secs_f64() * 1e5;
        let t1 = Instant::now();
        for _ in 0..10 {
            assert!(FullValidator::new(&target).validate(&doc).is_valid());
        }
        let full_us = t1.elapsed().as_secs_f64() * 1e5;

        println!(
            "{:>6} {:>14} {:>14} {:>8.2} {:>12.2} {:>12.2}",
            n,
            stats.nodes_visited,
            full_stats.nodes_visited,
            stats.nodes_visited as f64 / full_stats.nodes_visited as f64,
            cast_us,
            full_us
        );
    }

    // A document whose quantities fall in [100, 200): valid for the source,
    // caught by the value check against the target.
    let doc = po::generate_document_with(&mut session.alphabet, 100, true, |i| {
        if i == 57 {
            150 // one offending quantity deep in the document
        } else {
            1 + (i as u32 % 99)
        }
    });
    assert!(source.accepts_document(&doc));
    let (out, stats) = ctx.validate_with_stats(&doc);
    println!(
        "\noffending quantity at item 57: {} after {} visits, {} value checks",
        if out.is_valid() { "valid" } else { "invalid" },
        stats.nodes_visited,
        stats.value_checks
    );
    println!("Expected shape (paper, Table 3): cast ≈ 70–80% of full visits, both linear.");
}
