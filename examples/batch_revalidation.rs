//! Batch revalidation with the parallel engine.
//!
//! Builds the paper's purchase-order schema pair (billTo optional →
//! billTo required), generates a mixed batch of documents, and
//! revalidates them on 1 worker and on all available cores — showing that
//! the verdicts are identical while the wall-clock drops.
//!
//! Run with: `cargo run --release --example batch_revalidation`

use schemacast::core::CastContext;
use schemacast::engine::BatchEngine;
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;

fn main() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source schema");
    let target = session.parse_xsd(&po::target_xsd()).expect("target schema");

    // 2000 documents, each valid for the source schema; every third one
    // omits billTo, which the target requires.
    let docs: Vec<_> = (0..2000)
        .map(|i| po::generate_document(&mut session.alphabet, 20 + i % 80, i % 3 != 0))
        .collect();

    // One shared context: relations and product IDAs are computed once and
    // reused by every worker.
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    let single = BatchEngine::with_workers(&ctx, 1);
    let report1 = single.validate_docs(&docs);
    println!(
        "1 worker : {} docs in {:?}  ({:.0} docs/sec)  valid {} / invalid {}",
        report1.items.len(),
        report1.elapsed,
        report1.docs_per_sec(),
        report1.valid,
        report1.invalid,
    );

    let wide = BatchEngine::new(&ctx);
    wide.warm_up(); // precompute all reachable product IDAs in parallel
    let report_n = wide.validate_docs(&docs);
    println!(
        "{} workers: {} docs in {:?}  ({:.0} docs/sec)  valid {} / invalid {}",
        report_n.workers,
        report_n.items.len(),
        report_n.elapsed,
        report_n.docs_per_sec(),
        report_n.valid,
        report_n.invalid,
    );

    assert_eq!(report1.deterministic_view(), report_n.deterministic_view());
    println!(
        "identical verdicts and stats at both worker counts; speedup {:.2}x",
        report_n.docs_per_sec() / report1.docs_per_sec()
    );
}
