//! §4 at string level: immediate decision automata and revalidation with
//! modifications over plain symbol strings (content models).
//!
//! Run with: `cargo run --release --example fsa_revalidation`

use schemacast::automata::{Dfa, Strategy, StringCast};
use schemacast::regex::{parse_regex, Alphabet, Sym};

fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
    let r = parse_regex(text, ab).expect("regex parses");
    Dfa::from_regex(&r, ab.len()).expect("compiles")
}

fn main() {
    let mut ab = Alphabet::new();
    // Figure 1 content models.
    let a = compile("(shipTo, billTo?, items)", &mut ab);
    let b = compile("(shipTo, billTo, items)", &mut ab);
    let cast = StringCast::new(a.clone(), b.clone()).with_reverse();

    let sh = ab.lookup("shipTo").unwrap();
    let bi = ab.lookup("billTo").unwrap();
    let it = ab.lookup("items").unwrap();

    println!("source: (shipTo, billTo?, items)   target: (shipTo, billTo, items)\n");
    for s in [vec![sh, bi, it], vec![sh, it]] {
        let d = cast.revalidate(&s);
        let names: Vec<&str> = s.iter().map(|&x| ab.name(x)).collect();
        println!(
            "{:<28} -> {:<8} after scanning {}/{} symbols",
            names.join(" "),
            if d.accepted { "accept" } else { "reject" },
            d.symbols_scanned,
            s.len()
        );
    }

    // Long content models: head*, tail edits, direction choice.
    let mut ab2 = Alphabet::new();
    let a2 = compile("(header, item*, (footerA | footerB))", &mut ab2);
    let b2 = compile("(header, item*, footerA)", &mut ab2);
    let cast2 = StringCast::new(a2.clone(), b2.clone()).with_reverse();
    let header = ab2.lookup("header").unwrap();
    let item = ab2.lookup("item").unwrap();
    let fa = ab2.lookup("footerA").unwrap();
    let fb = ab2.lookup("footerB").unwrap();

    let mut old: Vec<Sym> = vec![header];
    old.extend(std::iter::repeat_n(item, 100_000));
    old.push(fb);
    assert!(a2.accepts(&old));

    // Edit at the very end: footerB -> footerA. Backward strategy scans a
    // handful of symbols out of 100k.
    let mut new = old.clone();
    let last = new.len() - 1;
    new[last] = fa;
    let d = cast2.revalidate_with_mods(&old, &new);
    println!(
        "\n100k-symbol string, suffix edit: {} via {:?}, scanned {} symbols",
        if d.accepted { "accept" } else { "reject" },
        d.strategy,
        d.symbols_scanned
    );
    assert!(d.accepted);
    assert_eq!(d.strategy, Strategy::BackwardWithMods);

    // Edit at the very start: drop the header. Forward strategy, and the
    // target automaton rejects immediately.
    let new2: Vec<Sym> = old[1..].to_vec();
    let d2 = cast2.revalidate_with_mods(&old, &new2);
    println!(
        "100k-symbol string, header deleted: {} via {:?}, scanned {} symbols",
        if d2.accepted { "accept" } else { "reject" },
        d2.strategy,
        d2.symbols_scanned
    );
    assert!(!d2.accepted);
}
