//! Schema cast *with modifications* (§3.3): an editor applies point edits
//! to a large purchase order and revalidates after each batch — against a
//! *different* schema than the one the document originally conformed to
//! (the XJ / XQuery `validate` scenario from the paper's introduction).
//!
//! Run with: `cargo run --release --example incremental_editor`

use schemacast::core::{CastContext, ModsValidator};
use schemacast::schema::Session;
use schemacast::tree::{DeltaDoc, Edit};
use schemacast::workload::purchase_order as po;

fn main() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let mods = ModsValidator::new(&ctx);

    // A large document (1000 items), valid for the source schema, with a
    // billTo so it is also target-valid before edits.
    let doc = po::generate_document(&mut session.alphabet, 1000, true);
    let total_nodes = doc.node_count();
    println!("document: {total_nodes} nodes\n");

    let mut dd = DeltaDoc::new(doc);
    let report = |step: &str, dd: &DeltaDoc, mods: &ModsValidator| {
        let (out, stats) = mods.validate_with_stats(dd);
        println!(
            "{step:<44} {:>8} {:>10} visits {:>8} syms",
            if out.is_valid() { "valid" } else { "INVALID" },
            stats.nodes_visited,
            stats.content_symbols_scanned,
        );
    };

    report("no edits (pure cast)", &dd, &mods);

    // Edit 1: bump a quantity value deep inside the document.
    let root = dd.doc().root();
    let items = dd.doc().children(root)[2];
    let item500 = dd.doc().children(items)[500];
    let qty = dd.doc().children(item500)[1];
    let qty_text = dd.doc().children(qty)[0];
    dd.apply(&Edit::SetText {
        node: qty_text,
        text: "42".into(),
    })
    .expect("edit applies");
    report("after editing one quantity value", &dd, &mods);

    // Edit 2: append a fresh item subtree at the end of items.
    let item_l = session.alphabet.lookup("item").unwrap();
    let pn = session.alphabet.lookup("productName").unwrap();
    let q = session.alphabet.lookup("quantity").unwrap();
    let price = session.alphabet.lookup("USPrice").unwrap();
    let pos = dd.doc().children(items).len();
    dd.apply(&Edit::InsertElement {
        parent: items,
        position: pos,
        label: item_l,
    })
    .unwrap();
    let new_item = dd.doc().children(items)[pos];
    for (i, (l, v)) in [(pn, "Trampoline"), (q, "3"), (price, "119.99")]
        .into_iter()
        .enumerate()
    {
        dd.apply(&Edit::InsertElement {
            parent: new_item,
            position: i,
            label: l,
        })
        .unwrap();
        let e = dd.doc().children(new_item)[i];
        dd.apply(&Edit::InsertText {
            parent: e,
            position: 0,
            text: v.into(),
        })
        .unwrap();
    }
    report("after appending a new item subtree", &dd, &mods);

    // Edit 3: break it — delete the billTo address (the target requires it).
    let bill = dd.doc().children(root)[1];
    let bill_children: Vec<_> = dd.doc().children(bill).to_vec();
    for c in bill_children {
        let texts: Vec<_> = dd.doc().children(c).to_vec();
        for t in texts {
            dd.apply(&Edit::DeleteLeaf { node: t }).unwrap();
        }
        dd.apply(&Edit::DeleteLeaf { node: c }).unwrap();
    }
    dd.apply(&Edit::DeleteLeaf { node: bill }).unwrap();
    report("after deleting billTo (target requires it)", &dd, &mods);

    // Cross-check every step against ground truth on the committed tree.
    let committed = dd.committed();
    assert!(!target.accepts_document(&committed));
    println!("\nground truth on the materialized edited tree agrees.");
}
