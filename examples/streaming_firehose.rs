//! Streaming validation of a large XML text — the paper's memory claim in
//! action: the verdict is produced in one pass with O(depth) state, without
//! ever building the document tree, and rejections abort the scan at the
//! earliest possible event.
//!
//! Run with: `cargo run --release --example streaming_firehose`

use schemacast::core::{CastContext, StreamingCast};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;
use std::time::Instant;

fn main() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");

    // A large document as raw XML text (the broker's wire format).
    let text = po::document_xml(&mut session.alphabet, 20_000);
    println!(
        "document: {:.1} MB of XML text ({} items)",
        text.len() as f64 / 1e6,
        20_000
    );

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    ctx.warm_up();
    let sc = StreamingCast::new(&ctx);

    let t0 = Instant::now();
    let (out, stats) = sc
        .validate_str(&text, &session.alphabet)
        .expect("well-formed");
    let elapsed = t0.elapsed();
    println!(
        "streaming cast: {} in {:.2} ms ({:.0} MB/s), {} nodes entered, {} subtrees skipped",
        if out.is_valid() { "valid" } else { "invalid" },
        elapsed.as_secs_f64() * 1e3,
        text.len() as f64 / 1e6 / elapsed.as_secs_f64(),
        stats.nodes_visited,
        stats.subsumed_skips,
    );

    // Early rejection: break the document near the start (drop billTo by
    // renaming it) and watch the scan stop almost immediately.
    let broken = text
        .replacen("<billTo>", "<billTwo>", 1)
        .replacen("</billTo>", "</billTwo>", 1);
    let t1 = Instant::now();
    let (out, stats) = sc
        .validate_str(&broken, &session.alphabet)
        .expect("well-formed");
    let elapsed_broken = t1.elapsed();
    println!(
        "broken document: {} in {:.3} ms after entering {} nodes (early abort)",
        if out.is_valid() { "valid" } else { "invalid" },
        elapsed_broken.as_secs_f64() * 1e3,
        stats.nodes_visited,
    );
    assert!(!out.is_valid());
    assert!(elapsed_broken < elapsed);
}
