//! Automatic document repair across a schema migration — the paper's
//! future-work direction, implemented: documents valid under the old schema
//! are *corrected* to conform to the new one, with a change log.
//!
//! Run with: `cargo run --release --example schema_migration_repair`

use schemacast::core::{explain, CastContext, Repairer};
use schemacast::schema::Session;
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::workload::purchase_order as po;
use schemacast::xml::parse_document;

fn main() {
    let mut session = Session::new();
    // Old: billTo optional, quantity < 200. New: billTo required, < 100.
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    // A legacy document: no billTo, one extra bogus element.
    let legacy = r#"<purchaseOrder>
  <shipTo><name>Ada</name><street>1 Main</street><city>MV</city><state>CA</state><zip>90952</zip><country>US</country></shipTo>
  <items>
    <item><productName>Lamp</productName><quantity>3</quantity><USPrice>12.50</USPrice></item>
  </items>
</purchaseOrder>"#;
    let xml = parse_document(legacy).expect("well-formed");
    let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);

    // Preprocess the pair after all labels are interned.
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let repairer = Repairer::new(&ctx, &session.alphabet);

    println!("validating legacy document against the new schema:");
    match explain(&ctx, &doc, &session.alphabet) {
        Ok(()) => println!("  already valid"),
        Err(failure) => println!("  {failure}"),
    }

    println!("\nrepairing:");
    let (fixed, actions) = repairer.repair(&doc).expect("repairable");
    for a in &actions {
        println!("  {a}");
    }
    assert!(target.accepts_document(&fixed));
    assert!(ctx.validate(&fixed).is_valid());

    println!("\nrepaired document:");
    print!(
        "{}",
        schemacast::xml::to_pretty_string(&fixed.to_xml(&session.alphabet))
    );

    // Second pass is a no-op.
    let (_, again) = repairer.repair(&fixed).expect("still repairable");
    assert!(again.is_empty());
    println!(
        "\nrepair is idempotent: second pass made {} changes",
        again.len()
    );
}
