//! Quickstart: parse two XSDs, generate a document valid for the first,
//! and decide validity for the second with schema-cast revalidation.
//!
//! Run with: `cargo run --release --example quickstart`

use schemacast::core::{CastContext, FullValidator};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;

fn main() {
    // One session = one shared label alphabet for schemas and documents.
    let mut session = Session::new();

    // Source: Figure 1a (billTo optional). Target: Figure 2 (required).
    let source = session.parse_xsd(&po::source_xsd()).expect("source XSD");
    let target = session.parse_xsd(&po::target_xsd()).expect("target XSD");

    // Preprocess the schema pair once: R_sub/R_dis fixpoints + IDAs.
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    // Revalidate documents of growing size.
    println!(
        "{:>8} {:>10} {:>16} {:>16}",
        "items", "valid?", "cast visits", "full visits"
    );
    for n in [2usize, 50, 100, 200, 500, 1000] {
        let doc = po::generate_document(&mut session.alphabet, n, true);
        let (outcome, stats) = ctx.validate_with_stats(&doc);
        let (_, full_stats) = FullValidator::new(&target).validate_with_stats(&doc);
        println!(
            "{:>8} {:>10} {:>16} {:>16}",
            n,
            if outcome.is_valid() {
                "valid"
            } else {
                "invalid"
            },
            stats.nodes_visited,
            full_stats.nodes_visited
        );
    }

    // A document without billTo: valid for the source, not the target —
    // detected after visiting a constant number of nodes.
    let doc = po::generate_document(&mut session.alphabet, 1000, false);
    let (outcome, stats) = ctx.validate_with_stats(&doc);
    println!(
        "\nwithout billTo: {} after visiting {} of {} nodes",
        if outcome.is_valid() {
            "valid"
        } else {
            "invalid"
        },
        stats.nodes_visited,
        doc.node_count()
    );
}
