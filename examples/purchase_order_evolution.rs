//! Experiment 1 end-to-end (Figure 3a of the paper): documents valid under
//! the Figure 1a schema (`billTo` optional) are revalidated against the
//! Figure 2 schema (`billTo` required).
//!
//! With schema-cast validation the cost is **constant** in the document
//! size — the decision hinges on the presence of `billTo`, after which the
//! product immediate-decision automaton accepts and every child pair is
//! subsumed. The baseline revalidates everything, so its cost is linear.
//!
//! Run with: `cargo run --release --example purchase_order_evolution`

use schemacast::core::{CastContext, CastOptions, FullValidator};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;
use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source XSD");
    let target = session.parse_xsd(&po::target_xsd()).expect("target XSD");

    let (ctx, preprocess_us) = time(|| CastContext::new(&source, &target, &session.alphabet));
    println!("schema-pair preprocessing: {preprocess_us:.1} µs (done once)\n");

    // The configuration of the paper's prototype (no IDA content checks).
    let paper_ctx = CastContext::with_options(
        &source,
        &target,
        &session.alphabet,
        CastOptions::paper_prototype(),
    );

    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>14}",
        "items", "doc nodes", "cast µs", "paper-cfg µs", "full µs"
    );
    for n in [2usize, 50, 100, 200, 500, 1000] {
        let doc = po::generate_document(&mut session.alphabet, n, true);
        // Warm once, then measure the median of a few runs.
        let median = |f: &dyn Fn() -> bool| -> f64 {
            let mut times: Vec<f64> = (0..7).map(|_| time(f).1).collect();
            times.sort_by(f64::total_cmp);
            times[3]
        };
        let cast_us = median(&|| ctx.validate(&doc).is_valid());
        let paper_us = median(&|| paper_ctx.validate(&doc).is_valid());
        let full_us = median(&|| FullValidator::new(&target).validate(&doc).is_valid());
        assert!(ctx.validate(&doc).is_valid());
        println!(
            "{:>6} {:>12} {:>14.2} {:>14.2} {:>14.2}",
            n,
            doc.node_count(),
            cast_us,
            paper_us,
            full_us
        );
    }

    println!("\nExpected shape (paper, Figure 3a): cast flat, full linear.");
}
