//! The negative half of the certifying analyzer's guarantee: the checker
//! must reject every corrupted certificate — zero false accepts.
//!
//! Over the purchase-order fixture pair and a sweep of random schema
//! evolutions, this suite certifies each pair, then deterministically
//! enumerates guaranteed-breaking mutations (dropped simulation pairs and
//! obligations, out-of-range certificate references, truncated witness
//! children, flipped decision-set bits, zeroed ranks, broken witness
//! traces) and asserts the independent checker catches every single one.
//! Per-kind coverage counters keep the sweep honest: each certificate kind
//! must actually have been attacked.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::certify::{
    check_bundle, check_chain_bundle, BlockedSymbol, CertBundle, ChainBundle, CompClaim, DisBody,
    NondisBody, ScriptProv, ScriptStep, SiteReason, SubBody,
};
use schemacast::core::certify::{certify_context, certify_context_with_scripts};
use schemacast::core::{certify_chain, CastContext, SchemaChain};
use schemacast::regex::Alphabet;
use schemacast::schema::{AbstractSchema, SchemaBuilder, SimpleType};
use schemacast::tree::{Doc, Edit};
use schemacast::workload::purchase_order as po;
use schemacast::workload::synth::{random_schema, SynthConfig};

/// Every guaranteed-breaking mutation applicable to `bundle`, with a label
/// for failure messages and a kind tag for the coverage floor. Each entry
/// is an independently corrupted clone.
fn corruptions(bundle: &CertBundle) -> Vec<(&'static str, CertBundle)> {
    let mut out: Vec<(&'static str, CertBundle)> = Vec::new();
    let mut push = |label: &'static str, mutated: CertBundle| out.push((label, mutated));

    for (i, cert) in bundle.subs.iter().enumerate() {
        if let SubBody::Complex {
            simulation,
            obligations,
        } = &cert.body
        {
            for k in 0..simulation.relation.len() {
                let mut b = bundle.clone();
                let SubBody::Complex { simulation, .. } = &mut b.subs[i].body else {
                    unreachable!()
                };
                simulation.relation.remove(k);
                push("sub: dropped simulation pair", b);
            }
            if !obligations.is_empty() {
                let mut b = bundle.clone();
                let SubBody::Complex { obligations, .. } = &mut b.subs[i].body else {
                    unreachable!()
                };
                obligations.pop();
                push("sub: dropped obligation", b);

                let mut b = bundle.clone();
                let SubBody::Complex { obligations, .. } = &mut b.subs[i].body else {
                    unreachable!()
                };
                obligations[0].child_ref = bundle.subs.len() as u32;
                push("sub: obligation ref out of range", b);
            }
        }
    }

    for (i, cert) in bundle.diss.iter().enumerate() {
        if let DisBody::Complex {
            invariant, blocked, ..
        } = &cert.body
        {
            for k in 0..invariant.len() {
                let mut b = bundle.clone();
                let DisBody::Complex { invariant, .. } = &mut b.diss[i].body else {
                    unreachable!()
                };
                invariant.remove(k);
                push("dis: dropped invariant pair", b);
            }
            if let Some(k) = blocked
                .iter()
                .position(|s| matches!(s, BlockedSymbol::DisjointChild { .. }))
            {
                let mut b = bundle.clone();
                let DisBody::Complex { blocked, .. } = &mut b.diss[i].body else {
                    unreachable!()
                };
                let BlockedSymbol::DisjointChild { dis_ref, .. } = &mut blocked[k] else {
                    unreachable!()
                };
                *dis_ref = bundle.diss.len() as u32;
                push("dis: blocked-symbol ref out of range", b);
            }
        }
    }

    for (i, cert) in bundle.nondis.iter().enumerate() {
        if let NondisBody::Complex { word, children, .. } = &cert.body {
            if !word.is_empty() {
                let mut b = bundle.clone();
                let NondisBody::Complex { word, .. } = &mut b.nondis[i].body else {
                    unreachable!()
                };
                word[0] = u32::MAX;
                push("nondis: word symbol out of alphabet", b);

                // Truncating the child list breaks the word/children length
                // tie (truncating the *word* is not guaranteed-breaking: a
                // prefix may be jointly accepted).
                let mut b = bundle.clone();
                let NondisBody::Complex { children, .. } = &mut b.nondis[i].body else {
                    unreachable!()
                };
                children.pop();
                push("nondis: truncated children", b);
            }
            if !children.is_empty() {
                let mut b = bundle.clone();
                let NondisBody::Complex { children, .. } = &mut b.nondis[i].body else {
                    unreachable!()
                };
                children[0].nondis_ref = i as u32;
                push("nondis: self-referential child (not well-founded)", b);
            }
        }
    }

    for (i, cert) in bundle.idas.iter().enumerate() {
        for grid in ["ia", "ir", "safe", "dead"] {
            let mut b = bundle.clone();
            let c = &mut b.idas[i];
            let v = match grid {
                "ia" => &mut c.ia,
                "ir" => &mut c.ir,
                "safe" => &mut c.safe,
                _ => &mut c.dead,
            };
            if v.is_empty() {
                continue;
            }
            v[0] = !v[0];
            push("ida: flipped decision bit", b);
        }
        // Zeroing a positive rank of a non-member breaks the rank-0 ⟺ goal
        // law (only applicable when such an entry exists).
        if let Some(k) = (0..cert.safe.len()).find(|&k| !cert.safe[k] && cert.safe_rank[k] > 0) {
            let mut b = bundle.clone();
            b.idas[i].safe_rank[k] = 0;
            push("ida: zeroed safe rank", b);
        }
        if let Some(k) = (0..cert.dead.len()).find(|&k| !cert.dead[k] && cert.dead_rank[k] > 0) {
            let mut b = bundle.clone();
            b.idas[i].dead_rank[k] = 0;
            push("ida: zeroed dead rank", b);
        }
    }

    for (i, cert) in bundle.paths.iter().enumerate() {
        let mut b = bundle.clone();
        b.paths[i].states[0].0 = b.paths[i].states[0].0.wrapping_add(1);
        push("path: broken start anchor", b);

        if !cert.word.is_empty() {
            let mut b = bundle.clone();
            b.paths[i].word.push(0);
            push("path: word/trace length mismatch", b);
        }
    }

    for (i, cert) in bundle.safety.iter().enumerate() {
        let mut b = bundle.clone();
        b.safety[i].ida_ref = bundle.idas.len() as u32;
        push("safety: ida ref out of range", b);

        if cert.stable.as_ref().is_some_and(|s| !s.is_empty()) {
            let mut b = bundle.clone();
            b.safety[i].stable.as_mut().unwrap().pop();
            push("safety: dropped stable obligation", b);
        }
        if !cert.sub_links.is_empty() {
            let mut b = bundle.clone();
            b.safety[i].sub_links[0].cert_ref = bundle.subs.len() as u32;
            push("safety: sub link ref out of range", b);
        }
    }

    out
}

/// Every guaranteed-breaking mutation of the script certificates in
/// `bundle`: tampered replay inputs (net word, trace, provenance), dropped
/// or dangling child evidence, flipped site and script verdicts, cleared
/// rejection reasons, and tampered early-settle claims.
fn site_at(b: &mut CertBundle, s: usize, i: usize) -> &mut schemacast::certify::ScriptSiteCert {
    &mut b.scripts[s].sites[i]
}

fn script_corruptions(bundle: &CertBundle) -> Vec<(&'static str, CertBundle)> {
    let mut out: Vec<(&'static str, CertBundle)> = Vec::new();
    let mut push = |label: &'static str, mutated: CertBundle| out.push((label, mutated));

    for (s, script) in bundle.scripts.iter().enumerate() {
        let mut b = bundle.clone();
        b.scripts[s].accepted = !script.accepted;
        push("script: flipped script verdict", b);

        for (i, site) in script.sites.iter().enumerate() {
            if !site.net.is_empty() {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).net[0] = u32::MAX;
                push("script: tampered net word", b);
            }
            // A bogus extra trace step always breaks replay equality.
            let mut b = bundle.clone();
            site_at(&mut b, s, i).trace.push(ScriptStep::InsertFresh {
                pos: 0,
                sym: u32::MAX,
            });
            push("script: tampered trace", b);

            if let Some(k) = site
                .prov
                .iter()
                .position(|p| !matches!(p, ScriptProv::Fresh))
            {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).prov[k] = ScriptProv::Fresh;
                push("script: tampered provenance", b);
            }

            let mut b = bundle.clone();
            site_at(&mut b, s, i).verdict = !site.verdict;
            if !site.verdict {
                // A rejected site recast as accepted must also shed its
                // reason to probe the deepest accept-side checks.
                site_at(&mut b, s, i).reject = None;
            }
            push("script: flipped site verdict", b);

            if !site.kept_links.is_empty() {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).kept_links.pop();
                push("script: dropped kept child link", b);

                let mut b = bundle.clone();
                site_at(&mut b, s, i).kept_links[0].sub_ref = bundle.subs.len() as u32;
                push("script: kept link sub ref dangling", b);
            }
            if !site.fresh_leaves.is_empty() {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).fresh_leaves.pop();
                push("script: dropped fresh leaf", b);
            }
            if site.reject.is_some() {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).reject = None;
                push("script: cleared rejection reason", b);
            }
            if let Some(early) = &site.early {
                let mut b = bundle.clone();
                site_at(&mut b, s, i).early.as_mut().unwrap().pair_a = early.pair_a.wrapping_add(1);
                push("script: tampered early-settle state", b);

                let mut b = bundle.clone();
                site_at(&mut b, s, i).early.as_mut().unwrap().ida_ref = bundle.idas.len() as u32;
                push("script: early-settle ida ref dangling", b);
            }
        }
    }
    out
}

/// Certifies `source -> target`, then asserts the checker rejects every
/// applicable corruption. Returns per-label mutation counts.
fn attack_pair(
    source: &schemacast::schema::AbstractSchema,
    target: &schemacast::schema::AbstractSchema,
    alphabet: &Alphabet,
    what: &str,
) -> Vec<&'static str> {
    let ctx = CastContext::new(source, target, alphabet);
    let run = certify_context(&ctx);
    assert!(
        run.all_certified(),
        "{what}: baseline not certified: {:#?}",
        run.diagnostics
    );
    let mut labels = Vec::new();
    for (label, mutated) in corruptions(&run.bundle) {
        assert_ne!(
            mutated, run.bundle,
            "{what}: mutation {label:?} did not change the bundle"
        );
        let report = check_bundle(&mutated);
        assert!(
            !report.all_valid(),
            "{what}: FALSE ACCEPT — checker passed corrupted bundle ({label})"
        );
        labels.push(label);
    }
    labels
}

/// Every guaranteed-breaking mutation of a chain bundle: per-hop and
/// endpoint bundles are attacked with the pairwise mutations above, and
/// the composition certificates with chain-specific ones (dangling step
/// references, broken adjacency, dropped steps, retargeted endpoints,
/// flipped claims).
fn chain_corruptions(bundle: &ChainBundle) -> Vec<(&'static str, ChainBundle)> {
    let mut out: Vec<(&'static str, ChainBundle)> = Vec::new();
    let mut push = |label: &'static str, mutated: ChainBundle| out.push((label, mutated));

    // A corrupted hop (or endpoint) bundle must fail the whole chain: the
    // composition steps lean on exactly these per-hop certificates.
    for h in 0..bundle.hops.len() {
        for (_, mutated) in corruptions(&bundle.hops[h]) {
            let mut b = bundle.clone();
            b.hops[h] = mutated;
            push("hop: corrupted per-hop bundle", b);
        }
    }
    for (_, mutated) in corruptions(&bundle.endpoint) {
        let mut b = bundle.clone();
        b.endpoint = mutated;
        push("hop: corrupted endpoint bundle", b);
    }

    for (i, comp) in bundle.compositions.iter().enumerate() {
        let n = comp.steps.len();

        // One step per hop is structural: dropping any step breaks it.
        let mut b = bundle.clone();
        b.compositions[i].steps.pop();
        push("comp: dropped step", b);

        // Dangling certificate reference, per step (the final step of a
        // Disjoint claim resolves in the hop's dis list, the rest in sub).
        for j in 0..n {
            let pool_len = if j + 1 == n && matches!(comp.claim, CompClaim::Disjoint) {
                bundle.hops[j].diss.len()
            } else {
                bundle.hops[j].subs.len()
            };
            let mut b = bundle.clone();
            b.compositions[i].steps[j].cert_ref = pool_len as u32;
            push("comp: step certificate ref dangling", b);
        }

        // Retargeting a middle step breaks either the adjacency law or the
        // referenced certificate's pair — the resolved cert is unchanged.
        if n >= 2 {
            let mut b = bundle.clone();
            b.compositions[i].steps[0].target_type = comp.steps[0].target_type.wrapping_add(1);
            push("comp: broken step adjacency", b);
        }

        // The claim endpoints must match the first/last step.
        let mut b = bundle.clone();
        b.compositions[i].source_type = comp.source_type.wrapping_add(1);
        push("comp: retargeted claim source", b);
        let mut b = bundle.clone();
        b.compositions[i].target_type = comp.target_type.wrapping_add(1);
        push("comp: retargeted claim target", b);

        // Flipping the claim reroutes the final step into the other
        // certificate list. Only guaranteed-breaking when that list has no
        // identically-paired certificate at the same index.
        let last = comp.steps.last().expect("non-empty steps");
        let hop = &bundle.hops[n - 1];
        let (flipped, other) = match comp.claim {
            CompClaim::Subsumed => (
                CompClaim::Disjoint,
                hop.diss
                    .get(last.cert_ref as usize)
                    .map(|c| (c.source_type, c.target_type)),
            ),
            CompClaim::Disjoint => (
                CompClaim::Subsumed,
                hop.subs
                    .get(last.cert_ref as usize)
                    .map(|c| (c.source_type, c.target_type)),
            ),
        };
        if other != Some((last.source_type, last.target_type)) {
            let mut b = bundle.clone();
            b.compositions[i].claim = flipped;
            push("comp: flipped claim", b);
        }
    }

    out
}

/// Certifies a whole chain, then asserts the chain checker rejects every
/// applicable corruption. Returns the attacked-mutation labels.
fn attack_chain(
    schemas: &[schemacast::schema::AbstractSchema],
    alphabet: &Alphabet,
    what: &str,
) -> Vec<&'static str> {
    let chain = SchemaChain::new(schemas, alphabet).expect("chain");
    let run = certify_chain(&chain);
    assert!(
        run.all_certified(),
        "{what}: baseline chain not certified: {:#?}",
        run.diagnostics
    );
    let mut labels = Vec::new();
    for (label, mutated) in chain_corruptions(&run.bundle) {
        assert_ne!(
            mutated, run.bundle,
            "{what}: mutation {label:?} did not change the chain bundle"
        );
        let report = check_chain_bundle(&mutated);
        assert!(
            !report.all_valid(),
            "{what}: FALSE ACCEPT — chain checker passed corrupted bundle ({label})"
        );
        labels.push(label);
    }
    labels
}

#[test]
fn checker_rejects_every_corruption_on_the_fixture_pair() {
    let mut session = schemacast::schema::Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    let labels = attack_pair(&source, &target, &session.alphabet, "po fixture");
    assert!(!labels.is_empty());
}

#[test]
fn checker_rejects_every_corruption_across_random_evolutions() {
    let mut attacked: std::collections::BTreeMap<&str, usize> = Default::default();
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0DE + seed);
        let original = random_schema(&SynthConfig::default(), &mut rng);
        let mut evolved = original.clone();
        for _ in 0..=(seed % 3) {
            evolved.evolve(&mut rng);
        }
        let mut alphabet = Alphabet::new();
        let source = original.build(&mut alphabet);
        let target = evolved.build(&mut alphabet);
        for label in attack_pair(&source, &target, &alphabet, &format!("seed {seed}")) {
            *attacked.entry(label).or_default() += 1;
        }
    }
    // Coverage floor: every certificate kind must actually have been
    // attacked somewhere in the sweep, or the zero-false-accept claim is
    // vacuous for that kind.
    for kind in ["sub:", "dis:", "nondis:", "ida:", "path:", "safety:"] {
        assert!(
            attacked.keys().any(|l| l.starts_with(kind)),
            "no {kind} mutations exercised across the sweep: {attacked:?}"
        );
    }
}

/// `po -> (shipTo, billTo?, items)` / `(shipTo, billTo, items)` with
/// simple-text children: small enough that script certificates carry every
/// evidence kind (kept links, fresh leaves, early claims, rejections).
fn script_po_schema(ab: &mut Alphabet, bill_optional: bool) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).unwrap();
    let po_t = b.declare("PO").unwrap();
    let model = if bill_optional {
        "(shipTo, billTo?, items)"
    } else {
        "(shipTo, billTo, items)"
    };
    b.complex(
        po_t,
        model,
        &[("shipTo", text), ("billTo", text), ("items", text)],
    )
    .unwrap();
    b.root("po", po_t);
    b.finish().unwrap()
}

#[test]
fn checker_rejects_every_script_cert_corruption() {
    let mut ab = Alphabet::new();
    let source = script_po_schema(&mut ab, true);
    let target = script_po_schema(&mut ab, false);
    let po_sym = ab.lookup("po").unwrap();
    let ship = ab.lookup("shipTo").unwrap();
    let bill = ab.lookup("billTo").unwrap();
    let items = ab.lookup("items").unwrap();

    let mut doc = Doc::new(po_sym);
    doc.add_element(doc.root(), ship);
    doc.add_element(doc.root(), items);
    let ctx = CastContext::new(&source, &target, &ab);

    // One statically accepted script (fresh insert at the right position)
    // and one statically rejected one (same insert at the wrong position).
    let accept = [Edit::InsertElement {
        parent: doc.root(),
        position: 1,
        label: bill,
    }];
    let reject = [Edit::InsertElement {
        parent: doc.root(),
        position: 0,
        label: bill,
    }];
    let run = certify_context_with_scripts(&ctx, &[(&doc, &accept[..]), (&doc, &reject[..])]);
    assert!(
        run.all_certified(),
        "baseline not certified: {:#?}",
        run.diagnostics
    );

    // Evidence-kind floors: the baseline must actually carry every kind of
    // claim the sweep below attacks, or zero-false-accepts is vacuous.
    let sites: Vec<_> = run.bundle.scripts.iter().flat_map(|c| &c.sites).collect();
    assert!(sites.iter().any(|s| !s.kept_links.is_empty()));
    assert!(sites.iter().any(|s| !s.fresh_leaves.is_empty()));
    assert!(sites
        .iter()
        .any(|s| matches!(s.reject, Some(SiteReason::Membership))));
    assert!(run.bundle.scripts.iter().any(|c| c.accepted));
    assert!(run.bundle.scripts.iter().any(|c| !c.accepted));

    let mut attacked: std::collections::BTreeMap<&str, usize> = Default::default();
    for (label, mutated) in script_corruptions(&run.bundle) {
        assert_ne!(
            mutated, run.bundle,
            "mutation {label:?} did not change the bundle"
        );
        let report = check_bundle(&mutated);
        assert!(
            !report.all_valid(),
            "FALSE ACCEPT — checker passed corrupted script bundle ({label})"
        );
        *attacked.entry(label).or_default() += 1;
    }
    // Per-kind coverage floor over the script-specific mutations.
    for label in [
        "script: flipped script verdict",
        "script: tampered net word",
        "script: tampered trace",
        "script: tampered provenance",
        "script: flipped site verdict",
        "script: dropped kept child link",
        "script: kept link sub ref dangling",
        "script: dropped fresh leaf",
        "script: cleared rejection reason",
    ] {
        assert!(
            attacked.contains_key(label),
            "no {label:?} mutations exercised: {attacked:?}"
        );
    }
}

#[test]
fn chain_checker_rejects_every_corruption_on_the_fixture_chain() {
    let mut session = schemacast::schema::Session::new();
    let schemas: Vec<_> = ["po_v1", "po_v2", "po_v3"]
        .iter()
        .map(|v| {
            let text = std::fs::read_to_string(format!("tests/fixtures/{v}.xsd")).expect("fixture");
            session.parse_xsd(&text).expect("parse")
        })
        .collect();
    let labels = attack_chain(&schemas, &session.alphabet, "po chain");
    assert!(labels.iter().any(|l| l.starts_with("comp:")));
    assert!(labels.iter().any(|l| l.starts_with("hop:")));
}

#[test]
fn chain_checker_rejects_every_corruption_across_random_chains() {
    let mut attacked: std::collections::BTreeMap<&str, usize> = Default::default();
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xCAB1E + seed);
        let mut synth = random_schema(&SynthConfig::default(), &mut rng);
        let mut alphabet = Alphabet::new();
        let mut schemas = vec![synth.build(&mut alphabet)];
        for _ in 0..=(seed % 2) {
            synth.evolve(&mut rng);
            schemas.push(synth.build(&mut alphabet));
        }
        for label in attack_chain(&schemas, &alphabet, &format!("chain seed {seed}")) {
            *attacked.entry(label).or_default() += 1;
        }
    }
    // Coverage floor: both the composition-specific mutations and the
    // embedded per-hop attacks must have fired, and among the composition
    // ones each labeled kind must appear.
    for label in [
        "hop: corrupted per-hop bundle",
        "hop: corrupted endpoint bundle",
        "comp: dropped step",
        "comp: step certificate ref dangling",
        "comp: broken step adjacency",
        "comp: retargeted claim source",
        "comp: retargeted claim target",
        "comp: flipped claim",
    ] {
        assert!(
            attacked.contains_key(label),
            "no {label:?} mutations exercised across the sweep: {attacked:?}"
        );
    }
}
