//! Property tests on the automata substrate: compiled DFAs match the
//! derivative-based reference semantics, minimization and products preserve
//! languages, and the §4 revalidation machinery is sound and decides as
//! early as the precomputed state sets allow.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::automata::{
    language_subset, languages_disjoint, minimize, Dfa, Ida, ProductIda, StringCast,
};
use schemacast::regex::{Regex, Sym};
use schemacast::workload::strings::{edit_string, random_regex, sample_member, EditLocality};

const SIGMA: u32 = 3;

fn regex_from_seed(seed: u64, depth: usize) -> Regex {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_regex(&mut rng, SIGMA, depth)
}

/// All strings over {0,1,2} up to length `n`.
fn strings_up_to(n: usize) -> Vec<Vec<Sym>> {
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut frontier = out.clone();
    for _ in 0..n {
        let mut next = Vec::new();
        for base in &frontier {
            for s in 0..SIGMA {
                let mut v = base.clone();
                v.push(Sym(s));
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DFA compilation matches Brzozowski-derivative semantics.
    #[test]
    fn dfa_matches_reference_semantics(seed in 0u64..10_000) {
        let r = regex_from_seed(seed, 3);
        let dfa = Dfa::from_regex(&r, SIGMA as usize).expect("compiles");
        for s in strings_up_to(4) {
            prop_assert_eq!(dfa.accepts(&s), r.matches(&s), "string {:?}", s);
        }
    }

    /// Minimization preserves the language and never grows the automaton.
    #[test]
    fn minimize_preserves_language(seed in 0u64..10_000) {
        let r = regex_from_seed(seed, 3);
        let dfa = Dfa::from_regex(&r, SIGMA as usize).expect("compiles");
        let m = minimize(&dfa);
        prop_assert!(m.state_count() <= dfa.state_count());
        for s in strings_up_to(4) {
            prop_assert_eq!(m.accepts(&s), dfa.accepts(&s));
        }
    }

    /// Inclusion and disjointness checks agree with brute-force enumeration
    /// on bounded strings (sound up to the probe length; the checks are
    /// exact, enumeration is the sanity side).
    #[test]
    fn checks_agree_with_enumeration(seed_a in 0u64..3_000, seed_b in 0u64..3_000) {
        let a = Dfa::from_regex(&regex_from_seed(seed_a, 2), SIGMA as usize).expect("a");
        let b = Dfa::from_regex(&regex_from_seed(seed_b, 2), SIGMA as usize).expect("b");
        let probes = strings_up_to(5);
        if language_subset(&a, &b) {
            for s in &probes {
                prop_assert!(!a.accepts(s) || b.accepts(s), "subset violated by {:?}", s);
            }
        }
        if languages_disjoint(&a, &b) {
            for s in &probes {
                prop_assert!(!(a.accepts(s) && b.accepts(s)), "disjoint violated by {:?}", s);
            }
        }
    }

    /// The product IDA decides membership in L(b) for members of L(a), and
    /// plain IDA decisions equal DFA membership for arbitrary strings.
    #[test]
    fn ida_decisions_are_sound(seed_a in 0u64..3_000, seed_b in 0u64..3_000) {
        let a = Dfa::from_regex(&regex_from_seed(seed_a, 2), SIGMA as usize).expect("a");
        let b = Dfa::from_regex(&regex_from_seed(seed_b, 2), SIGMA as usize).expect("b");
        let c = ProductIda::new(&a, &b);
        let b_immed = Ida::from_dfa(&b);
        for s in strings_up_to(4) {
            prop_assert_eq!(b_immed.run(&s).accepted(), b.accepts(&s));
            if a.accepts(&s) {
                let out = c.run(&s);
                prop_assert_eq!(out.accepted(), b.accepts(&s), "string {:?}", s);
                prop_assert!(out.consumed() <= s.len());
            }
        }
    }

    /// Reversal: reversed DFA accepts exactly reversed strings.
    #[test]
    fn reversal_is_involutive_on_membership(seed in 0u64..5_000) {
        let r = regex_from_seed(seed, 2);
        let dfa = Dfa::from_regex(&r, SIGMA as usize).expect("compiles");
        let rev = dfa.reversed();
        for s in strings_up_to(4) {
            let mut sr = s.clone();
            sr.reverse();
            prop_assert_eq!(dfa.accepts(&s), rev.accepts(&sr));
        }
    }

    /// With-modifications revalidation equals direct membership of the new
    /// string, for every locality, whenever the old string is in L(a).
    #[test]
    fn with_mods_equals_direct_membership(
        seed_a in 0u64..2_000,
        seed_b in 0u64..2_000,
        edit_seed in 0u64..1_000,
        n_edits in 0usize..5,
    ) {
        let a = Dfa::from_regex(&regex_from_seed(seed_a, 2), SIGMA as usize).expect("a");
        let b = Dfa::from_regex(&regex_from_seed(seed_b, 2), SIGMA as usize).expect("b");
        let mut rng = SmallRng::seed_from_u64(edit_seed);
        let Some(old) = sample_member(&a, &mut rng, 12) else { return Ok(()); };
        let cast = StringCast::new(a.clone(), b.clone()).with_reverse();
        for locality in [EditLocality::Prefix, EditLocality::Middle, EditLocality::Suffix] {
            let new = edit_string(&old, &mut rng, n_edits, locality, SIGMA);
            let d = cast.revalidate_with_mods(&old, &new);
            prop_assert_eq!(d.accepted, b.accepts(&new),
                "old {:?} new {:?} locality {:?}", old, new, locality);
        }
    }

    /// Optimality-flavoured check (Prop. 3 on samples): the product IDA never
    /// scans more symbols than needed to distinguish the residual languages —
    /// verified indirectly: once the IDA accepts early at position i, every
    /// a-member continuation of the scanned prefix is accepted by b.
    #[test]
    fn early_accepts_are_justified(seed_a in 0u64..1_000, seed_b in 0u64..1_000) {
        let a = Dfa::from_regex(&regex_from_seed(seed_a, 2), SIGMA as usize).expect("a");
        let b = Dfa::from_regex(&regex_from_seed(seed_b, 2), SIGMA as usize).expect("b");
        let c = ProductIda::new(&a, &b);
        for s in strings_up_to(3) {
            if !a.accepts(&s) {
                continue;
            }
            let out = c.run(&s);
            if out.accepted() && out.early() {
                let prefix = &s[..out.consumed()];
                // Every continuation of `prefix` that a accepts, b accepts.
                for t in strings_up_to(3) {
                    let mut w = prefix.to_vec();
                    w.extend(&t);
                    prop_assert!(!a.accepts(&w) || b.accepts(&w),
                        "early accept after {:?} unjustified on {:?}", prefix, w);
                }
            }
        }
    }
}
