//! Integration tests for `schemacast certify` and the `--certify` gate:
//! the exit-code contract (0 all certified / 1 checker failures / 2 usage
//! error), the JSON shape, and the fail-closed behavior of `--certify` on
//! `cast` / `analyze`.

use std::process::{Command, Output};

const SOURCE: &str = "tests/fixtures/po_source.xsd";
const TARGET: &str = "tests/fixtures/po_target.xsd";

fn schemacast(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_schemacast"))
        .args(args)
        .output()
        .expect("run schemacast")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn fixture_pair_certifies_and_exits_zero() {
    let out = schemacast(&["certify", SOURCE, TARGET]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all claims certified"), "{text}");
    assert!(text.contains("emitted"), "{text}");

    // Both directions and the identity pair certify too.
    assert_eq!(exit_code(&schemacast(&["certify", TARGET, SOURCE])), 0);
    assert_eq!(exit_code(&schemacast(&["certify", SOURCE, SOURCE])), 0);
}

#[test]
fn json_output_is_well_formed_and_complete() {
    let out = schemacast(&["certify", SOURCE, TARGET, "--json"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.starts_with("{\"certified\":true"), "{json}");
    for key in [
        "\"emitted\":",
        "\"checked\":",
        "\"check_micros\":",
        "\"counts\":{\"dfas\":",
        "\"subs\":",
        "\"diss\":",
        "\"nondis\":",
        "\"idas\":",
        "\"paths\":",
        "\"safety\":",
        "\"failures\":[]",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn usage_errors_exit_two() {
    // Wrong number of schemas.
    assert_eq!(exit_code(&schemacast(&["certify"])), 2);
    assert_eq!(exit_code(&schemacast(&["certify", SOURCE])), 2);
    assert_eq!(
        exit_code(&schemacast(&["certify", SOURCE, TARGET, SOURCE])),
        2
    );
    // Unreadable schema file.
    assert_eq!(
        exit_code(&schemacast(&["certify", "no-such-file.xsd", TARGET])),
        2
    );
}

#[test]
fn certify_gate_on_cast_and_analyze() {
    // A source-valid document (billTo present, so also target-valid).
    let addr = "<name>n</name><street>s</street><city>c</city>\
                <state>NY</state><zip>10001</zip><country>US</country>";
    let doc = format!(
        "<purchaseOrder><shipTo>{addr}</shipTo><billTo>{addr}</billTo>\
         <items><item><productName>p</productName><quantity>2</quantity>\
         <USPrice>9.50</USPrice></item></items></purchaseOrder>"
    );
    let dir = std::env::temp_dir().join("schemacast-certify-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let doc_path = dir.join("po.xml");
    std::fs::write(&doc_path, doc).unwrap();
    let doc_path = doc_path.to_str().unwrap();

    // cast --certify: certification passes, validation proceeds, and the
    // counters surface under --stats.
    let out = schemacast(&[
        "cast",
        "--source",
        SOURCE,
        "--target",
        TARGET,
        "--certify",
        "--stats",
        doc_path,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("certificates:"), "{text}");
    assert!(text.contains("valid"), "{text}");

    // batch --certify --stats: totals fold the certification counters in.
    let out = schemacast(&[
        "batch",
        "--source",
        SOURCE,
        "--target",
        TARGET,
        "--certify",
        "--stats",
        doc_path,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("certificates:"), "{text}");

    // analyze --certify still prints the analysis report; the pair is an
    // incompatible evolution, so the verdict exit code is 1 (the unified
    // 0/1/2 contract), not a certification failure (which would be 2).
    let out = schemacast(&["analyze", SOURCE, TARGET, "--certify"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("edit safety"), "{text}");
}
