//! The feed-family workload end to end: cast, diagnostics, repair, and the
//! DTD label-indexed path, on an evolution with choices and bounded
//! repetition (constructs the purchase-order experiments don't exercise).

use schemacast::core::{explain, CastContext, DtdCastValidator, FailureKind, LabelIndex, Repairer};
use schemacast::schema::Session;
use schemacast::workload::feed::{self, FeedConfig};

#[test]
fn cast_between_feed_versions() {
    let mut session = Session::new();
    let v1 = session.parse_xsd(&feed::v1_xsd()).unwrap();
    let v2 = session.parse_xsd(&feed::v2_xsd()).unwrap();

    // Generate documents first so every label is interned.
    let good = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 8,
            content_prob: 1.0,
            max_categories: 4,
            seed: 11,
        },
    );
    let summaries = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 4,
            content_prob: 0.0,
            max_categories: 2,
            seed: 12,
        },
    );
    let empty = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 0,
            ..Default::default()
        },
    );

    let ctx = CastContext::new(&v1, &v2, &session.alphabet);
    assert!(ctx.validate(&good).is_valid());
    assert!(!ctx.validate(&summaries).is_valid());
    assert!(!ctx.validate(&empty).is_valid());

    // Diagnostics name the right failure.
    let err = explain(&ctx, &summaries, &session.alphabet).unwrap_err();
    assert!(
        matches!(err.kind, FailureKind::ContentModel { .. }),
        "got {err:?}"
    );
    assert!(err.path.starts_with("/feed/entry"));

    let err = explain(&ctx, &empty, &session.alphabet).unwrap_err();
    assert_eq!(err.path, "/feed");
}

#[test]
fn repair_migrates_v1_feeds_to_v2() {
    let mut session = Session::new();
    let v1 = session.parse_xsd(&feed::v1_xsd()).unwrap();
    let v2 = session.parse_xsd(&feed::v2_xsd()).unwrap();
    let summaries = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 3,
            content_prob: 0.0,
            max_categories: 2,
            seed: 21,
        },
    );
    assert!(v1.accepts_document(&summaries));
    assert!(!v2.accepts_document(&summaries));

    let ctx = CastContext::new(&v1, &v2, &session.alphabet);
    let repairer = Repairer::new(&ctx, &session.alphabet);
    let (fixed, actions) = repairer.repair(&summaries).expect("repairable");
    assert!(v2.accepts_document(&fixed));
    // Each summary body became a content body (replace), one per entry.
    let replaces = actions
        .iter()
        .filter(|a| matches!(a, schemacast::core::RepairAction::ReplaceElement { .. }))
        .count();
    assert_eq!(replaces, 3);
}

#[test]
fn dtd_label_index_on_feed_evolution() {
    let mut session = Session::new();
    let v1 = session.parse_dtd(feed::v1_dtd(), Some("feed")).unwrap();
    let v2 = session.parse_dtd(feed::v2_dtd(), Some("feed")).unwrap();
    let doc = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 6,
            content_prob: 1.0,
            max_categories: 3,
            seed: 31,
        },
    );
    assert!(v1.accepts_document(&doc));
    let ctx = CastContext::new(&v1, &v2, &session.alphabet);
    let dtd = DtdCastValidator::new(&ctx, session.alphabet.len()).expect("DTD style");
    let index = LabelIndex::build(&doc);
    let (out, stats) = dtd.validate_with_stats(&doc, &index);
    assert_eq!(out.is_valid(), v2.accepts_document(&doc));
    // Only feed / meta / entry instances needed checking — the simple-typed
    // leaves are subsumed.
    assert!(
        stats.nodes_visited <= 2 + 6 + 6,
        "visited {}",
        stats.nodes_visited
    );
}

#[test]
fn streaming_on_serialized_feeds() {
    let mut session = Session::new();
    let v1 = session.parse_xsd(&feed::v1_xsd()).unwrap();
    let v2 = session.parse_xsd(&feed::v2_xsd()).unwrap();
    let doc = feed::generate_feed(
        &mut session.alphabet,
        &FeedConfig {
            entries: 5,
            content_prob: 1.0,
            max_categories: 2,
            seed: 41,
        },
    );
    let text = schemacast::xml::to_pretty_string(&doc.to_xml(&session.alphabet));
    let ctx = CastContext::new(&v1, &v2, &session.alphabet);
    let sc = schemacast::core::StreamingCast::new(&ctx);
    let (out, _) = sc
        .validate_str(&text, &session.alphabet)
        .expect("well-formed");
    assert_eq!(out.is_valid(), v2.accepts_document(&doc));
}
