//! Property tests for automatic document repair: on random schema
//! evolutions and source-valid documents, `Repairer::repair` always
//! produces a target-valid document, makes no changes when none are
//! needed, and is idempotent.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::core::{CastContext, Repairer};
use schemacast::regex::Alphabet;
use schemacast::workload::synth::{random_schema, sample_document, SynthConfig};

fn scenario(
    schema_seed: u64,
    evolve_steps: usize,
    doc_seed: u64,
) -> Option<(
    schemacast::schema::AbstractSchema,
    schemacast::schema::AbstractSchema,
    Alphabet,
    schemacast::tree::Doc,
)> {
    let mut rng = SmallRng::seed_from_u64(schema_seed);
    let mut synth = random_schema(&SynthConfig::default(), &mut rng);
    let original = synth.clone();
    for _ in 0..evolve_steps {
        synth.evolve(&mut rng);
    }
    let mut ab = Alphabet::new();
    let source = original.build(&mut ab);
    let target = synth.build(&mut ab);
    let mut doc_rng = SmallRng::seed_from_u64(doc_seed);
    let doc = sample_document(&source, &mut ab, &mut doc_rng, 4)?;
    Some((source, target, ab, doc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn repaired_documents_are_target_valid(
        schema_seed in 0u64..4000,
        evolve_steps in 0usize..4,
        doc_seed in 0u64..4000,
    ) {
        let Some((source, target, ab, doc)) = scenario(schema_seed, evolve_steps, doc_seed)
        else { return Ok(()); };
        let ctx = CastContext::new(&source, &target, &ab);
        let repairer = Repairer::new(&ctx, &ab);
        match repairer.repair(&doc) {
            Ok((fixed, actions)) => {
                prop_assert!(
                    target.accepts_document(&fixed),
                    "repaired document is not target-valid (actions: {:?})", actions
                );
                // No-op repairs iff the document was already valid.
                let was_valid = target.accepts_document(&doc);
                prop_assert_eq!(actions.is_empty(), was_valid);
                // Idempotence.
                let (fixed2, actions2) = repairer.repair(&fixed).expect("second pass");
                prop_assert!(actions2.is_empty(), "second pass: {:?}", actions2);
                prop_assert!(target.accepts_document(&fixed2));
            }
            Err(e) => {
                // Repair may only fail when some required type is
                // genuinely unsatisfiable — never for our productive
                // synthetic schemas.
                prop_assert!(false, "repair failed on productive schema: {e}");
            }
        }
    }

    /// Repair preserves already-valid content byte for byte.
    #[test]
    fn valid_documents_round_trip(schema_seed in 0u64..4000, doc_seed in 0u64..4000) {
        let Some((source, _target, ab, doc)) = scenario(schema_seed, 0, doc_seed)
        else { return Ok(()); };
        // Source == target (no evolution): document is valid.
        let ctx = CastContext::new(&source, &source, &ab);
        let repairer = Repairer::new(&ctx, &ab);
        let (fixed, actions) = repairer.repair(&doc).expect("repairs");
        prop_assert!(actions.is_empty());
        prop_assert_eq!(fixed.node_count(), doc.node_count());
        // Structural equality via serialization.
        let a = schemacast::xml::to_string(&doc.to_xml(&ab));
        let b = schemacast::xml::to_string(&fixed.to_xml(&ab));
        prop_assert_eq!(a, b);
    }
}
