//! End-to-end integration: XSD text + XML text in, cast verdicts out —
//! exercising the whole stack through the public facade (`schemacast`).

use schemacast::core::{CastContext, CastOutcome};
use schemacast::schema::Session;
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::xml::parse_document;

const SOURCE: &str = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="library" type="Library"/>
  <xsd:complexType name="Library">
    <xsd:sequence>
      <xsd:element name="book" type="Book" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Book">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="year" type="xsd:integer"/>
      <xsd:element name="isbn" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

const TARGET: &str = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="library" type="Library"/>
  <xsd:complexType name="Library">
    <xsd:sequence>
      <xsd:element name="book" type="Book" minOccurs="1" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Book">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="year">
        <xsd:simpleType>
          <xsd:restriction base="xsd:integer">
            <xsd:minInclusive value="1900"/>
            <xsd:maxInclusive value="2100"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="isbn" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

fn load(session: &mut Session, xml: &str) -> Doc {
    let parsed = parse_document(xml).expect("well-formed XML");
    Doc::from_xml(&parsed.root, &mut session.alphabet, WhitespaceMode::Trim)
}

#[test]
fn cast_between_library_schema_versions() {
    let mut session = Session::new();
    let source = session.parse_xsd(SOURCE).expect("source");
    let target = session.parse_xsd(TARGET).expect("target");
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    // In range and non-empty: valid under both.
    let ok = load(
        &mut session,
        r#"<library>
             <book><title>TAOCP</title><year>1968</year><isbn>0-201-03801-3</isbn></book>
             <book><title>SICP</title><year>1985</year></book>
           </library>"#,
    );
    assert!(source.accepts_document(&ok));
    assert_eq!(ctx.validate(&ok), CastOutcome::Valid);

    // Empty library: valid for source (book*), invalid for target (book+).
    let empty = load(&mut session, "<library/>");
    assert!(source.accepts_document(&empty));
    assert_eq!(ctx.validate(&empty), CastOutcome::Invalid);

    // Year out of target range: source-valid, target-invalid.
    let ancient = load(
        &mut session,
        "<library><book><title>Epic of Gilgamesh</title><year>-1800</year></book></library>",
    );
    assert!(source.accepts_document(&ancient));
    assert_eq!(ctx.validate(&ancient), CastOutcome::Invalid);
}

#[test]
fn stats_show_skipping_on_unchanged_types() {
    let mut session = Session::new();
    let source = session.parse_xsd(SOURCE).expect("source");
    let target = session.parse_xsd(TARGET).expect("target");
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    // Large library; title/isbn are identical string types in both schemas
    // (subsumed), year must be value-checked.
    let mut body = String::from("<library>");
    for y in 0..200 {
        body.push_str(&format!(
            "<book><title>b{y}</title><year>{}</year></book>",
            1900 + (y % 200)
        ));
    }
    body.push_str("</library>");
    let doc = load(&mut session, &body);
    let (out, stats) = ctx.validate_with_stats(&doc);
    assert!(out.is_valid());
    assert_eq!(stats.value_checks, 200); // every year checked
    assert!(stats.subsumed_skips >= 200); // titles skipped
    assert!(stats.nodes_visited < doc.node_count());
}

#[test]
fn whole_pipeline_from_strings_to_verdict() {
    // The one-call pipeline a downstream user would write.
    let mut session = Session::new();
    let source = session.parse_xsd(SOURCE).expect("source");
    let target = session.parse_xsd(TARGET).expect("target");
    let xml =
        parse_document("<library><book><title>Rust</title><year>2015</year></book></library>")
            .expect("xml");
    let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    assert!(ctx.validate(&doc).is_valid());
}

#[test]
fn serialization_round_trip_preserves_verdict() {
    let mut session = Session::new();
    let source = session.parse_xsd(SOURCE).expect("source");
    let target = session.parse_xsd(TARGET).expect("target");

    let doc = load(
        &mut session,
        "<library><book><title>X</title><year>1999</year></book></library>",
    );
    // Serialize and re-parse; the verdict must be identical.
    let xml = doc.to_xml(&session.alphabet);
    let text = schemacast::xml::to_pretty_string(&xml);
    let doc2 = load(&mut session, &text);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    assert_eq!(ctx.validate(&doc), ctx.validate(&doc2));
}
