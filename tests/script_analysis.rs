//! Whole-script static analysis against the apply-then-revalidate oracle.
//!
//! Two layers: named edge cases for every normalization rule the analyzer
//! claims (cancellation, overwrite collapse, commutation, empty script,
//! per-edit agreement), and a randomized multi-edit sweep proving the
//! script analyzer decides a strict superset of the per-edit fast path —
//! with anti-vacuity floors so the sweep cannot pass by deciding nothing.

use schemacast::core::{CastContext, CastOutcome, ScriptVerdict, SiteDecision};
use schemacast::regex::Alphabet;
use schemacast::schema::{AbstractSchema, SchemaBuilder, SimpleType};
use schemacast::tree::{DeltaDoc, Doc, Edit, NodeId};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `po -> (shipTo, billTo?, items)` (optional) or `(shipTo, billTo, items)`
/// (required); every child is simple text, so child subtrees are
/// subsumption-stable and the action is entirely in the root's child word.
fn po_schema(ab: &mut Alphabet, bill_optional: bool) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).unwrap();
    let po = b.declare("PO").unwrap();
    let model = if bill_optional {
        "(shipTo, billTo?, items)"
    } else {
        "(shipTo, billTo, items)"
    };
    b.complex(
        po,
        model,
        &[("shipTo", text), ("billTo", text), ("items", text)],
    )
    .unwrap();
    b.root("po", po);
    b.finish().unwrap()
}

fn po_doc(ab: &mut Alphabet, with_bill: bool) -> Doc {
    let po = ab.intern("po");
    let mut doc = Doc::new(po);
    doc.add_element(doc.root(), ab.intern("shipTo"));
    if with_bill {
        doc.add_element(doc.root(), ab.intern("billTo"));
    }
    doc.add_element(doc.root(), ab.intern("items"));
    doc
}

/// Apply the script for real and revalidate against the target — the
/// ground truth every static verdict must agree with. `None` when the
/// script is not applicable to the document.
fn oracle(target: &AbstractSchema, doc: &Doc, edits: &[Edit]) -> Option<bool> {
    let mut dd = DeltaDoc::new(doc.clone());
    dd.apply_all(edits).ok()?;
    Some(target.accepts_document(&dd.committed()))
}

#[test]
fn empty_script_is_statically_accepted() {
    let mut ab = Alphabet::new();
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let doc = po_doc(&mut ab, true);
    let ctx = CastContext::new(&source, &target, &ab);

    let analysis = ctx.script_analysis(&doc, &[]).expect("analyzable");
    assert_eq!(analysis.verdict, ScriptVerdict::Accept);
    assert!(analysis.sites.is_empty());
    // The oracle agrees: an unedited source-valid doc with billTo present
    // is target-valid.
    assert_eq!(oracle(&target, &doc, &[]), Some(true));
}

#[test]
fn single_edit_agrees_with_the_per_edit_verdict() {
    let mut ab = Alphabet::new();
    let ghost = ab.intern("ghost");
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let doc = po_doc(&mut ab, true);
    let ctx = CastContext::new(&source, &target, &ab);

    // Inserting a label outside the content model is per-edit Unsafe at
    // every position. The script path must reach the same verdict through
    // the net-word run.
    let edits = [Edit::InsertElement {
        parent: doc.root(),
        position: 1,
        label: ghost,
    }];
    let per_edit = ctx
        .validate_edited_static(&doc, &edits)
        .expect("per-edit path decides this");
    assert_eq!(per_edit.0, CastOutcome::Invalid);

    let analysis = ctx.script_analysis(&doc, &edits).expect("analyzable");
    assert_eq!(analysis.verdict, ScriptVerdict::Reject);
    let (out, _) = ctx
        .validate_edited_script(&doc, &edits)
        .expect("script path decides this");
    assert_eq!(out, CastOutcome::Invalid);
    assert_eq!(oracle(&target, &doc, &edits), Some(false));
}

#[test]
fn insert_then_delete_cancels_to_identity() {
    let mut ab = Alphabet::new();
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let doc = po_doc(&mut ab, true);
    let ghost = ab.intern("ghost");
    let ctx = CastContext::new(&source, &target, &ab);

    // The inserted node's id is the next arena slot.
    let inserted = NodeId(doc.node_count() as u32);
    let edits = [
        Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: ghost,
        },
        Edit::DeleteLeaf { node: inserted },
    ];
    // Per-edit analysis cannot resolve the not-yet-existing node.
    assert!(ctx.validate_edited_static(&doc, &edits).is_none());

    let analysis = ctx.script_analysis(&doc, &edits).expect("analyzable");
    assert_eq!(analysis.verdict, ScriptVerdict::Accept);
    assert!(
        analysis.normalized(),
        "cancellation must appear in the trace"
    );
    assert!(analysis
        .sites
        .iter()
        .all(|s| s.decision == SiteDecision::Identity));
    assert_eq!(oracle(&target, &doc, &edits), Some(true));
}

#[test]
fn two_same_position_overwrites_collapse_to_the_last() {
    let mut ab = Alphabet::new();
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let doc = po_doc(&mut ab, true);
    let ghost = ab.intern("ghost");
    let ctx = CastContext::new(&source, &target, &ab);
    let bill_node = doc.children(doc.root())[1];
    let bill = ab.lookup("billTo").unwrap();

    // billTo -> ghost -> billTo: the second relabel overwrites the first
    // and cancels it; the net effect is the identity even though the
    // intermediate word (shipTo, ghost, items) is invalid in both schemas.
    let edits = [
        Edit::Relabel {
            node: bill_node,
            label: ghost,
        },
        Edit::Relabel {
            node: bill_node,
            label: bill,
        },
    ];
    let analysis = ctx.script_analysis(&doc, &edits).expect("analyzable");
    assert_eq!(analysis.verdict, ScriptVerdict::Accept);
    assert!(analysis.normalized(), "overwrite collapse must be traced");
    assert_eq!(oracle(&target, &doc, &edits), Some(true));

    // Overwrite that does NOT cancel: billTo -> ghost -> shipTo judges
    // only the final word (shipTo, shipTo, items), which is invalid.
    let edits = [
        Edit::Relabel {
            node: bill_node,
            label: ghost,
        },
        Edit::Relabel {
            node: bill_node,
            label: ab.lookup("shipTo").unwrap(),
        },
    ];
    let analysis = ctx.script_analysis(&doc, &edits).expect("analyzable");
    assert_eq!(analysis.verdict, ScriptVerdict::Reject);
    assert_eq!(oracle(&target, &doc, &edits), Some(false));
}

#[test]
fn position_disjoint_edits_commute() {
    let mut ab = Alphabet::new();
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let doc = po_doc(&mut ab, false);
    let bill = ab.lookup("billTo").unwrap();
    let ship = ab.lookup("shipTo").unwrap();
    let ctx = CastContext::new(&source, &target, &ab);
    let ship_node = doc.children(doc.root())[0];

    // Two edits at disjoint positions: insert billTo at 1, and relabel
    // position 0 to itself-after-roundtrip. Run the script in both orders;
    // the net effect — hence the verdict — must be identical.
    let forward = [
        Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: bill,
        },
        Edit::Relabel {
            node: ship_node,
            label: ship,
        },
    ];
    let swapped = [
        Edit::Relabel {
            node: ship_node,
            label: ship,
        },
        Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: bill,
        },
    ];
    let a1 = ctx.script_analysis(&doc, &forward).expect("analyzable");
    let a2 = ctx.script_analysis(&doc, &swapped).expect("analyzable");
    assert_eq!(a1.verdict, a2.verdict);
    assert_eq!(a1.verdict, ScriptVerdict::Accept);
    assert_eq!(
        oracle(&target, &doc, &forward),
        oracle(&target, &doc, &swapped)
    );
    assert_eq!(oracle(&target, &doc, &forward), Some(true));
}

/// One randomly generated structural script over the root child word.
/// Tracks the simulated child list (placeholder-inclusive, exactly the
/// DeltaDoc coordinate system) so generated positions are always legal.
fn random_script(doc: &Doc, ab: &Alphabet, rng: &mut SmallRng) -> Vec<Edit> {
    #[derive(Clone, Copy)]
    struct Entry {
        id: NodeId,
        inserted: bool,
        deleted: bool,
    }
    let labels: Vec<_> = ["shipTo", "billTo", "items", "ghost"]
        .iter()
        .map(|n| ab.lookup(n).unwrap())
        .collect();
    let mut entries: Vec<Entry> = doc
        .children(doc.root())
        .iter()
        .map(|&id| Entry {
            id,
            inserted: false,
            deleted: false,
        })
        .collect();
    let mut next_id = doc.node_count() as u32;
    let mut edits = Vec::new();
    let n_edits = rng.gen_range(1..=5);
    for _ in 0..n_edits {
        match rng.gen_range(0..3) {
            0 => {
                let pos = rng.gen_range(0..=entries.len());
                let label = labels[rng.gen_range(0..labels.len())];
                edits.push(Edit::InsertElement {
                    parent: doc.root(),
                    position: pos,
                    label,
                });
                entries.insert(
                    pos,
                    Entry {
                        id: NodeId(next_id),
                        inserted: true,
                        deleted: false,
                    },
                );
                next_id += 1;
            }
            1 => {
                let live: Vec<usize> = (0..entries.len())
                    .filter(|&i| !entries[i].deleted)
                    .collect();
                if live.is_empty() {
                    continue;
                }
                let i = live[rng.gen_range(0..live.len())];
                edits.push(Edit::DeleteLeaf {
                    node: entries[i].id,
                });
                if entries[i].inserted {
                    entries.remove(i);
                } else {
                    entries[i].deleted = true;
                }
            }
            _ => {
                let live: Vec<usize> = (0..entries.len())
                    .filter(|&i| !entries[i].deleted)
                    .collect();
                if live.is_empty() {
                    continue;
                }
                let i = live[rng.gen_range(0..live.len())];
                let label = labels[rng.gen_range(0..labels.len())];
                edits.push(Edit::Relabel {
                    node: entries[i].id,
                    label,
                });
            }
        }
    }
    edits
}

/// The acceptance property: over randomized multi-edit scripts the script
/// analyzer (a) agrees with the oracle whenever it decides, (b) decides
/// everything the per-edit fast path decides, with the same outcome, and
/// (c) decides strictly more — including scripts only normalization can
/// settle. Floors make (c) non-vacuous.
#[test]
fn randomized_scripts_decide_a_strict_superset_of_the_per_edit_path() {
    let mut ab = Alphabet::new();
    ab.intern("ghost");
    let source = po_schema(&mut ab, true);
    let target = po_schema(&mut ab, false);
    let ctx = CastContext::new(&source, &target, &ab);
    let mut rng = SmallRng::seed_from_u64(0x5c21);

    let mut script_decided = 0usize;
    let mut per_edit_decided = 0usize;
    let mut script_only = 0usize;
    let mut normalized_decided = 0usize;
    let mut applicable = 0usize;

    for trial in 0..600 {
        let doc = po_doc(&mut ab.clone(), trial % 2 == 0);
        let edits = random_script(&doc, &ab, &mut rng);
        let truth = oracle(&target, &doc, &edits);
        if truth.is_some() {
            applicable += 1;
        }

        let per_edit = ctx.validate_edited_static(&doc, &edits);
        // The full script-path outcome: the static verdict at the edited
        // sites plus the exemption walk over everything else. This is what
        // the engine consults, and what must agree with the oracle.
        let script = ctx.validate_edited_script(&doc, &edits);
        let script_verdict = script.as_ref().map(|(out, _)| out.is_valid());

        if let Some(valid) = script_verdict {
            script_decided += 1;
            assert_eq!(
                Some(valid),
                truth,
                "trial {trial}: script verdict disagrees with oracle for {edits:?}"
            );
            let analysis = ctx.script_analysis(&doc, &edits);
            if analysis.as_ref().is_some_and(|a| a.normalized()) {
                normalized_decided += 1;
            }
        }
        if let Some((out, _)) = &per_edit {
            per_edit_decided += 1;
            assert_eq!(
                Some(out.is_valid()),
                truth,
                "trial {trial}: per-edit verdict disagrees with oracle for {edits:?}"
            );
            // Strict-superset inclusion: everything the per-edit path
            // decides, the script path also decides, identically.
            assert_eq!(
                script_verdict,
                Some(out.is_valid()),
                "trial {trial}: script path failed to cover a per-edit decision for {edits:?}"
            );
        } else if script_verdict.is_some() {
            script_only += 1;
        }
    }

    // Anti-vacuity floors: the sweep must actually exercise every claim.
    assert!(applicable > 300, "only {applicable} applicable scripts");
    assert!(
        per_edit_decided >= 20,
        "only {per_edit_decided} per-edit decisions"
    );
    assert!(
        script_only >= 20,
        "only {script_only} scripts decided exclusively at the script level"
    );
    assert!(
        normalized_decided >= 10,
        "only {normalized_decided} decided scripts involved a normalization rewrite"
    );
    assert!(script_decided > per_edit_decided, "not a strict superset");
}
