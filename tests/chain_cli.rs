//! Integration tests for `schemacast chain` and the unified exit-code
//! contract across every verdict-bearing subcommand: **0** clean verdict,
//! **1** negative verdict, **2** usage / I/O / parse error.

use std::process::{Command, Output};

const V1: &str = "tests/fixtures/po_v1.xsd";
const V2: &str = "tests/fixtures/po_v2.xsd";
const V3: &str = "tests/fixtures/po_v3.xsd";
const SOURCE: &str = "tests/fixtures/po_source.xsd";
const TARGET: &str = "tests/fixtures/po_target.xsd";

fn schemacast(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_schemacast"))
        .args(args)
        .output()
        .expect("run schemacast")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn widening_chain_exits_zero() {
    // v1 ⊑ v2 (billTo becomes optional): every v1 document remains valid,
    // so the chain lints clean.
    let out = schemacast(&["chain", V1, V2]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chain: 2 versions, 1 hop(s)"), "{text}");
    assert!(text.contains("composition:"), "{text}");
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn breaking_chain_exits_one_with_witness_and_hop() {
    // v2 → v3 narrows Item/quantity (maxExclusive 200 → 100): consumers of
    // v3 break, and the finding must say at which hop.
    let out = schemacast(&["chain", V1, V2, V3]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SC0501"), "{text}");
    assert!(text.contains("breaks at hop 1 (v2 → v3)"), "{text}");
    assert!(text.contains("witness:"), "{text}");
}

#[test]
fn json_output_carries_composition_and_findings() {
    let out = schemacast(&["chain", V1, V2, V3, "--json"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    for key in [
        "\"versions\":3",
        "\"hops\":2",
        "\"composition\":{\"composed_sub\":",
        "\"fallback_sub\":",
        "\"composed_dis\":",
        "\"fallback_dis\":",
        "\"diagnostics\":[",
        "\"rule\":\"SC0501\"",
        "\"witness\":\"",
        "\"summary\":{",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn sarif_output_carries_required_properties() {
    let out = schemacast(&["chain", V1, V2, V3, "--sarif"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let sarif = String::from_utf8(out.stdout).expect("utf8");
    for required in [
        "\"version\":\"2.1.0\"",
        "\"runs\":[",
        "\"tool\":{\"driver\":{\"name\":\"schemacast-lint\"",
        "\"results\":[",
        "\"ruleId\":\"SC0501\"",
        "\"message\":{\"text\":",
    ] {
        assert!(sarif.contains(required), "missing {required} in {sarif}");
    }
}

#[test]
fn certify_gate_checks_composition_certificates() {
    // Clean chain: certification passes and the verdict stays 0; --stats
    // surfaces the chain-level certificate counters.
    let out = schemacast(&["chain", V1, V2, "--certify", "--stats"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chain certificates:"), "{text}");
    assert!(text.contains("0 rejected"), "{text}");

    // Breaking chain: certification still passes (the certificates prove
    // the *relations*, including disjointness), findings still gate exit 1.
    let out = schemacast(&["chain", V1, V2, V3, "--certify"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("refusing to proceed"), "{text}");
}

#[test]
fn fail_on_threshold_is_respected() {
    // The breaking findings are errors, so --fail-on warn also fails…
    let out = schemacast(&["chain", V1, V2, V3, "--fail-on", "warn"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    // …and a clean chain passes at any threshold.
    let out = schemacast(&["chain", V1, V2, "--fail-on", "warn"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    // Fewer than two schemas.
    assert_eq!(exit_code(&schemacast(&["chain"])), 2);
    assert_eq!(exit_code(&schemacast(&["chain", V1])), 2);
    // Mutually exclusive output modes.
    assert_eq!(
        exit_code(&schemacast(&["chain", V1, V2, "--json", "--sarif"])),
        2
    );
    // Bad --fail-on value.
    assert_eq!(
        exit_code(&schemacast(&["chain", V1, V2, "--fail-on", "bogus"])),
        2
    );
    // Unreadable schema file.
    assert_eq!(
        exit_code(&schemacast(&["chain", V1, "no-such-file.xsd"])),
        2
    );
}

#[test]
fn analyze_exit_contract_matches_the_verdict() {
    // Identical pair: the edit-safety report is stable — exit 0.
    let out = schemacast(&["analyze", TARGET, TARGET]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    // Incompatible evolution: changed/disjoint/removed pairs — exit 1.
    let out = schemacast(&["analyze", SOURCE, TARGET]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("edit safety"), "{text}");
    // Usage errors stay 2.
    assert_eq!(exit_code(&schemacast(&["analyze", SOURCE])), 2);
    assert_eq!(
        exit_code(&schemacast(&["analyze", "no-such-file.xsd", TARGET])),
        2
    );
}

#[test]
fn fixture_chain_pairs_also_certify_standalone() {
    // The chain fixtures participate in the ordinary pairwise certifier
    // (the CI certify-self job certifies every ordered fixture pair).
    for (a, b) in [(V1, V2), (V2, V3), (V1, V3)] {
        let out = schemacast(&["certify", a, b]);
        assert_eq!(exit_code(&out), 0, "{a} -> {b}: {out:?}");
    }
}
