//! Chain-composition soundness properties: on randomly generated
//! evolution chains, the one-pass composed verdict must agree with the
//! sequential hop-by-hop apply-then-revalidate oracle, every composed
//! relation must be confirmed by the endpoint pair's exact relations, and
//! every composed tuple must decompose into per-hop facts (`sub*` for
//! subsumption, `sub*·dis` for disjointness).
//!
//! An explicit anti-vacuity sweep keeps the properties honest: across the
//! seed range both composition-decided *and* fallback-only chains must
//! occur, and migration scripts must both survive and break.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast::core::SchemaChain;
use schemacast::engine::{ChainEngine, ItemOutcome};
use schemacast::regex::Alphabet;
use schemacast::schema::AbstractSchema;
use schemacast::tree::{DeltaDoc, Doc, Edit, NodeId};
use schemacast::workload::synth::{random_schema, sample_document, SynthConfig};

/// Builds `versions` progressively evolved schema snapshots sharing one
/// alphabet.
fn chain_versions(schema_seed: u64, versions: usize) -> (Vec<AbstractSchema>, Alphabet) {
    let mut rng = SmallRng::seed_from_u64(schema_seed);
    let mut synth = random_schema(&SynthConfig::default(), &mut rng);
    let mut ab = Alphabet::new();
    let mut out = vec![synth.build(&mut ab)];
    for _ in 1..versions {
        synth.evolve(&mut rng);
        out.push(synth.build(&mut ab));
    }
    (out, ab)
}

/// A small random edit batch against the *current* document state. Edits
/// reference concrete [`NodeId`]s, so replaying the batch on a clone of
/// the same tree is deterministic.
fn random_batch(doc: &Doc, ab: &Alphabet, rng: &mut SmallRng, n: usize) -> Vec<Edit> {
    let nodes: Vec<NodeId> = doc.preorder_iter().collect();
    let mut edits = Vec::new();
    for _ in 0..n {
        let node = nodes[rng.gen_range(0..nodes.len())];
        let label = ab.symbols().nth(rng.gen_range(0..ab.len()));
        match rng.gen_range(0..4) {
            0 if doc.text(node).is_some() => edits.push(Edit::SetText {
                node,
                text: rng.gen_range(0i64..300).to_string(),
            }),
            1 if doc.label(node).is_some() && doc.parent(node).is_some() => {
                if let Some(label) = label {
                    edits.push(Edit::Relabel { node, label });
                }
            }
            2 if doc.parent(node).is_some() => edits.push(Edit::DeleteLeaf { node }),
            _ if doc.label(node).is_some() => {
                if let Some(label) = label {
                    edits.push(Edit::InsertElement {
                        parent: node,
                        position: 0,
                        label,
                    });
                }
            }
            _ => {}
        }
    }
    edits
}

/// The reference semantics of a migration script: apply each hop's batch
/// to a materialized tree and fully revalidate against the next version.
/// Returns the generated scripts plus the first failing hop (`true` =
/// the batch itself failed to apply).
fn scripted_oracle(
    schemas: &[AbstractSchema],
    doc: &Doc,
    ab: &Alphabet,
    rng: &mut SmallRng,
    per_hop: usize,
) -> (Vec<Vec<Edit>>, Option<(usize, bool)>) {
    let mut current = doc.clone();
    let mut scripts = Vec::new();
    let mut breaking = None;
    for i in 0..schemas.len() - 1 {
        let edits = random_batch(&current, ab, rng, per_hop);
        scripts.push(edits.clone());
        if breaking.is_some() {
            continue; // verify_script stops here; later batches are inert.
        }
        let mut dd = DeltaDoc::new(current.clone());
        match dd.apply_all(&edits) {
            Err(_) => breaking = Some((i, true)),
            Ok(()) => {
                let committed = dd.committed();
                if schemas[i + 1].accepts_document(&committed) {
                    current = committed;
                } else {
                    breaking = Some((i, false));
                }
            }
        }
    }
    (scripts, breaking)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every relation the composition pass derives is confirmed by the
    /// endpoint `(v_1, v_N)` pair's exact relations, and its middle-type
    /// tuple decomposes into per-hop facts: all-subsumption steps for a
    /// composed subsumption, subsumption steps with a final disjoint step
    /// for a composed disjointness.
    #[test]
    fn composed_relations_are_sound_and_tuples_decompose(
        schema_seed in 0u64..3000,
        versions in 3usize..5,
    ) {
        let (schemas, ab) = chain_versions(schema_seed, versions);
        let chain = SchemaChain::new(&schemas, &ab).expect("chain");
        let rel = chain.endpoint().relations();
        for s in schemas[0].type_ids() {
            for t in schemas[versions - 1].type_ids() {
                if let Some(tuple) = chain.sub_tuple(s, t) {
                    prop_assert!(rel.subsumed(s, t), "composed sub not exact: {s:?} {t:?}");
                    prop_assert_eq!(tuple.len(), versions);
                    prop_assert_eq!((tuple[0], tuple[versions - 1]), (s, t));
                    for (i, hop) in chain.hops().iter().enumerate() {
                        prop_assert!(
                            hop.relations().subsumed(tuple[i], tuple[i + 1]),
                            "sub tuple step {i} unsupported"
                        );
                    }
                }
                if let Some(tuple) = chain.dis_tuple(s, t) {
                    prop_assert!(rel.disjoint(s, t), "composed dis not exact: {s:?} {t:?}");
                    prop_assert_eq!(tuple.len(), versions);
                    prop_assert_eq!((tuple[0], tuple[versions - 1]), (s, t));
                    for (i, hop) in chain.hops().iter().enumerate() {
                        if i + 2 == versions {
                            prop_assert!(
                                hop.relations().disjoint(tuple[i], tuple[i + 1]),
                                "dis tuple final step unsupported"
                            );
                        } else {
                            prop_assert!(
                                hop.relations().subsumed(tuple[i], tuple[i + 1]),
                                "dis tuple sub step {i} unsupported"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The one-pass chain verdict on an unedited `v_1`-valid document
    /// equals full validation against `v_N`.
    #[test]
    fn one_pass_verdict_matches_endpoint_ground_truth(
        schema_seed in 0u64..3000,
        versions in 3usize..5,
        doc_seed in 0u64..3000,
    ) {
        let (schemas, mut ab) = chain_versions(schema_seed, versions);
        let mut rng = SmallRng::seed_from_u64(doc_seed);
        let Some(doc) = sample_document(&schemas[0], &mut ab, &mut rng, 5) else {
            return Ok(());
        };
        let chain = SchemaChain::new(&schemas, &ab).expect("chain");
        prop_assert_eq!(
            chain.validate(&doc).is_valid(),
            schemas[versions - 1].accepts_document(&doc)
        );
    }

    /// `verify_script` agrees with the sequential apply-then-revalidate
    /// oracle hop for hop: same overall verdict, same breaking hop, and
    /// the breaking hop's verdict kind matches (apply failure vs invalid).
    #[test]
    fn verify_script_matches_sequential_oracle(
        schema_seed in 0u64..3000,
        versions in 3usize..5,
        doc_seed in 0u64..3000,
        edit_seed in 0u64..3000,
        per_hop in 0usize..5,
    ) {
        let (schemas, mut ab) = chain_versions(schema_seed, versions);
        let mut rng = SmallRng::seed_from_u64(doc_seed);
        let Some(doc) = sample_document(&schemas[0], &mut ab, &mut rng, 5) else {
            return Ok(());
        };
        let chain = SchemaChain::new(&schemas, &ab).expect("chain");
        let mut rng = SmallRng::seed_from_u64(edit_seed);
        let (scripts, breaking) = scripted_oracle(&schemas, &doc, &ab, &mut rng, per_hop);
        let report = chain.verify_script(&doc, &scripts);
        prop_assert_eq!(report.ok(), breaking.is_none(), "{report:?} vs {breaking:?}");
        prop_assert_eq!(report.breaking_hop, breaking.map(|(h, _)| h));
        if let Some((hop, edit_failed)) = breaking {
            prop_assert_eq!(report.hops.len(), hop + 1);
            let last = &report.hops[hop];
            prop_assert_eq!(
                matches!(last.verdict, schemacast::core::HopVerdict::EditFailed(_)),
                edit_failed,
                "verdict {:?}", last.verdict
            );
        } else {
            prop_assert_eq!(report.hops.len(), chain.hop_count());
            prop_assert!(report.hops.iter().all(|h| h.verdict.is_ok()));
        }
    }
}

/// Anti-vacuity sweep: the properties above are only meaningful if the
/// random chains actually exercise both sides of every branch. Across a
/// fixed seed range we require composition-decided facts, fallback-only
/// facts (the endpoint knows a relation the hop-wise composition cannot
/// derive), surviving scripts, and breaking scripts — and that the
/// parallel [`ChainEngine`] migration path reproduces `verify_script`
/// verdicts deterministically at any worker count.
#[test]
fn sweep_hits_both_composition_and_fallback_and_both_script_verdicts() {
    let (mut composed, mut fallback) = (0usize, 0usize);
    let (mut ok_scripts, mut broken_scripts) = (0u32, 0u32);
    for seed in 0..48u64 {
        let versions = 3 + (seed % 2) as usize;
        let (schemas, mut ab) = chain_versions(seed, versions);
        let chain = match SchemaChain::new(&schemas, &ab) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let stats = chain.composition_stats();
        composed += stats.composed_sub + stats.composed_dis;
        fallback += stats.fallback_sub + stats.fallback_dis;

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let Some(doc) = sample_document(&schemas[0], &mut ab, &mut rng, 5) else {
            continue;
        };
        let mut items = Vec::new();
        for k in 0..4usize {
            let mut rng = SmallRng::seed_from_u64(seed * 31 + k as u64);
            let (scripts, breaking) = scripted_oracle(&schemas, &doc, &ab, &mut rng, k);
            match breaking {
                None => ok_scripts += 1,
                Some(_) => broken_scripts += 1,
            }
            items.push((doc.clone(), scripts));
        }
        // Engine determinism: the pooled migration path must report the
        // same per-item outcomes at any worker count, in input order.
        let one = ChainEngine::with_workers(&chain, 1).validate_migrations(&items);
        let many = ChainEngine::with_workers(&chain, 4).validate_migrations(&items);
        assert_eq!(one.items, many.items, "seed {seed}: outcome order diverged");
        for (item, (doc, scripts)) in one.items.iter().zip(&items) {
            let want = chain.verify_script(doc, scripts);
            match (&item.outcome, want.breaking_hop) {
                (ItemOutcome::Valid, None) => {}
                (ItemOutcome::ChainBroken { hop }, Some(h)) => assert_eq!(*hop, h),
                (ItemOutcome::EditFailed(_), Some(_)) => {}
                other => panic!("seed {seed}: engine/oracle mismatch: {other:?}"),
            }
        }
    }
    assert!(composed > 0, "no composition-decided facts in the sweep");
    assert!(
        fallback > 0,
        "no fallback-only facts in the sweep (composed={composed}) — the \
         composition/fallback split is vacuous"
    );
    assert!(
        ok_scripts > 0,
        "no surviving migration scripts in the sweep"
    );
    assert!(
        broken_scripts > 0,
        "no breaking migration scripts in the sweep"
    );
}
