//! Coverage for two schema shapes outside the paper's experiments:
//!
//! * **Recursive types** (document outlines: `section(title, section*)`) —
//!   the fixpoints must converge and deep documents must validate.
//! * **1-ambiguous content models** — XML forbids them, but the abstract
//!   formalism doesn't; the paper notes the techniques still apply (only
//!   the optimality claim needs determinism). We determinize via subset
//!   construction and everything works.

use schemacast::core::{CastContext, FullValidator};
use schemacast::regex::Alphabet;
use schemacast::schema::{AbstractSchema, SchemaBuilder, SimpleType};
use schemacast::tree::Doc;

fn outline_schema(ab: &mut Alphabet, max_depth_note: bool) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).unwrap();
    let section = b.declare("Section").unwrap();
    // v2 additionally allows a note at the end of every section.
    let model = if max_depth_note {
        "(title, section*, note?)"
    } else {
        "(title, section*)"
    };
    b.complex(
        section,
        model,
        &[("title", text), ("section", section), ("note", text)],
    )
    .unwrap();
    b.root("doc", section);
    b.finish().unwrap()
}

fn deep_outline(ab: &mut Alphabet, depth: usize, fanout: usize) -> Doc {
    let doc_l = ab.intern("doc");
    let section = ab.intern("section");
    let title = ab.intern("title");
    let mut d = Doc::new(doc_l);
    let t = d.add_element(d.root(), title);
    d.add_text(t, "root");
    let mut cur = d.root();
    for i in 0..depth {
        let s = d.add_element(cur, section);
        let t = d.add_element(s, title);
        d.add_text(t, format!("level {i}"));
        for _ in 0..fanout {
            let leaf = d.add_element(s, section);
            let lt = d.add_element(leaf, title);
            d.add_text(lt, "leaf");
        }
        cur = s;
    }
    d
}

#[test]
fn recursive_schema_cast_and_subsumption() {
    let mut ab = Alphabet::new();
    let v1 = outline_schema(&mut ab, false);
    let v2 = outline_schema(&mut ab, true);
    let doc = deep_outline(&mut ab, 40, 2);
    assert!(v1.accepts_document(&doc));

    // v1 ⊆ v2 (note is optional): the whole cast is one subsumption skip.
    let ctx = CastContext::new(&v1, &v2, &ab);
    let (out, stats) = ctx.validate_with_stats(&doc);
    assert!(out.is_valid());
    assert_eq!(stats.nodes_visited, 1);

    // The reverse direction requires checking (notes may be present) but
    // still accepts note-free documents.
    let ctx_rev = CastContext::new(&v2, &v1, &ab);
    assert!(ctx_rev.validate(&doc).is_valid());
}

#[test]
fn deep_documents_validate_without_issue() {
    let mut ab = Alphabet::new();
    let v1 = outline_schema(&mut ab, false);
    let v2 = outline_schema(&mut ab, true);
    // 20,000 levels deep: the full and cast validators are iterative, so
    // document depth never consumes call-stack frames.
    let doc = deep_outline(&mut ab, 20_000, 0);
    assert!(FullValidator::new(&v1).validate(&doc).is_valid());
    let ctx = CastContext::new(&v2, &v1, &ab);
    assert!(ctx.validate(&doc).is_valid());
    // A deep failure is found too (break the innermost title).
    let mut broken = deep_outline(&mut ab, 20_000, 0);
    let bogus = ab.intern("bogus");
    // Walk to the deepest section and relabel its title.
    let mut cur = broken.root();
    loop {
        let next = broken
            .children(cur)
            .iter()
            .copied()
            .find(|&c| broken.label(c) == ab.lookup("section"));
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    let title = broken.children(cur)[0];
    broken.set_label(title, bogus);
    assert!(!FullValidator::new(&v1).validate(&broken).is_valid());
    assert!(!ctx.validate(&broken).is_valid());
}

#[test]
fn ambiguous_content_models_are_supported() {
    // (a, c) | (a, d): 1-ambiguous (two a-positions reachable first) —
    // illegal in real XML/DTD, fine for the abstract formalism.
    let mut ab = Alphabet::new();
    let mk = |ab: &mut Alphabet, with_d: bool| {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        let model = if with_d { "(a, c) | (a, d)" } else { "(a, c)" };
        b.complex(root, model, &[("a", text), ("c", text), ("d", text)])
            .unwrap();
        b.root("r", root);
        b.finish().unwrap()
    };
    let source = mk(&mut ab, true);
    let target = mk(&mut ab, false);

    // The compiled type is flagged non-deterministic but fully functional.
    let root_ty = source.type_by_name("Root").unwrap();
    assert!(!source.type_def(root_ty).as_complex().unwrap().deterministic);

    let r = ab.lookup("r").unwrap();
    let a = ab.lookup("a").unwrap();
    let c = ab.lookup("c").unwrap();
    let d = ab.lookup("d").unwrap();
    let build = |labels: &[schemacast::regex::Sym], ab: &Alphabet| {
        let _ = ab;
        let mut doc = Doc::new(r);
        for &l in labels {
            let e = doc.add_element(doc.root(), l);
            doc.add_text(e, "v");
        }
        doc
    };
    let ac = build(&[a, c], &ab);
    let ad = build(&[a, d], &ab);
    assert!(source.accepts_document(&ac));
    assert!(source.accepts_document(&ad));

    let ctx = CastContext::new(&source, &target, &ab);
    assert!(ctx.validate(&ac).is_valid());
    assert!(!ctx.validate(&ad).is_valid());
    // And the decisions agree with ground truth.
    assert!(target.accepts_document(&ac));
    assert!(!target.accepts_document(&ad));
}
