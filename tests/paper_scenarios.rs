//! The paper's §6 experiments as assertions: the *shapes* of Figures 3a/3b
//! and Table 3 hold in this implementation (timings are benchmarked in
//! `schemacast-bench`; here we pin the node-visit behaviour, which is
//! deterministic).

use schemacast::core::{CastContext, CastOptions, FullValidator};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;

const ITEM_COUNTS: [usize; 6] = [2, 50, 100, 200, 500, 1000];

#[test]
fn experiment1_accept_is_constant_in_document_size() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    let mut visits = Vec::new();
    for &n in &ITEM_COUNTS {
        let doc = po::generate_document(&mut session.alphabet, n, true);
        assert!(source.accepts_document(&doc), "precondition at {n}");
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(out.is_valid());
        visits.push(stats.nodes_visited);
    }
    // Figure 3a: flat curve.
    assert!(visits.iter().all(|&v| v == visits[0]), "visits {visits:?}");
    assert!(visits[0] <= 5);
}

#[test]
fn experiment1_reject_is_constant_in_document_size() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    for &n in &ITEM_COUNTS {
        let doc = po::generate_document(&mut session.alphabet, n, false);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(!out.is_valid());
        assert!(
            stats.nodes_visited <= 2,
            "visits {} at {n}",
            stats.nodes_visited
        );
    }
}

#[test]
fn experiment2_visits_scale_linearly_with_constant_savings() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_maxex200_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let full = FullValidator::new(&target);

    let mut rows = Vec::new();
    for &n in &ITEM_COUNTS {
        let doc = po::generate_document(&mut session.alphabet, n, true);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(out.is_valid());
        let (_, full_stats) = full.validate_with_stats(&doc);
        rows.push((n, stats.nodes_visited, full_stats.nodes_visited));
    }
    for &(n, cast, full_v) in &rows {
        // Table 3 shape: the cast visits strictly fewer nodes…
        assert!(cast < full_v, "at {n}: {cast} vs {full_v}");
        // …at a roughly constant fraction on non-trivial documents.
        if n >= 50 {
            let ratio = cast as f64 / full_v as f64;
            assert!((0.5..0.9).contains(&ratio), "ratio {ratio} at {n}");
        }
    }
    // Savings grow linearly: (full - cast) per item is ~constant.
    let (n1, c1, f1) = rows[1];
    let (n2, c2, f2) = rows[5];
    let per_item_1 = (f1 - c1) as f64 / n1 as f64;
    let per_item_2 = (f2 - c2) as f64 / n2 as f64;
    assert!(
        (per_item_1 - per_item_2).abs() < 0.5,
        "savings per item drifted: {per_item_1} vs {per_item_2}"
    );
}

#[test]
fn experiment2_catches_out_of_range_quantities() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_maxex200_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    // Quantities 100..199: valid for the wide source only.
    let doc = session_doc(&mut session, 50, |i| 100 + (i as u32 % 100));
    assert!(source.accepts_document(&doc));
    assert!(!ctx.validate(&doc).is_valid());
    // All below 100: valid for both.
    let doc = session_doc(&mut session, 50, |i| 1 + (i as u32 % 99));
    assert!(ctx.validate(&doc).is_valid());
}

fn session_doc(
    session: &mut Session,
    n: usize,
    qty: impl FnMut(usize) -> u32,
) -> schemacast::tree::Doc {
    po::generate_document_with(&mut session.alphabet, n, true, qty)
}

#[test]
fn paper_prototype_options_match_default_verdicts() {
    // The paper's Xerces prototype (no IDA) and the full algorithm must
    // agree on all experiment documents — they differ only in cost.
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let full_algo = CastContext::new(&source, &target, &session.alphabet);
    let prototype = CastContext::with_options(
        &source,
        &target,
        &session.alphabet,
        CastOptions::paper_prototype(),
    );
    for &n in &[2usize, 100, 500] {
        for with_bill in [true, false] {
            let doc = po::generate_document(&mut session.alphabet, n, with_bill);
            assert_eq!(
                full_algo.validate(&doc),
                prototype.validate(&doc),
                "n={n} bill={with_bill}"
            );
        }
    }
}

#[test]
fn table2_file_sizes_grow_affinely() {
    let mut session = Session::new();
    let sizes: Vec<(usize, usize)> = ITEM_COUNTS
        .iter()
        .map(|&n| (n, po::document_xml(&mut session.alphabet, n).len()))
        .collect();
    // Affine in item count, as in Table 2.
    let (n1, s1) = sizes[1];
    let (n2, s2) = sizes[5];
    let per_item = (s2 - s1) as f64 / (n2 - n1) as f64;
    for &(n, s) in &sizes[1..] {
        let predicted = s1 as f64 + per_item * (n as f64 - n1 as f64);
        let err = (s as f64 - predicted).abs() / s as f64;
        assert!(err < 0.05, "size at {n} deviates {err}");
    }
}
