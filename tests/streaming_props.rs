//! Property test: the streaming validator agrees with the tree validator
//! (and with ground truth) on serialized random documents — connecting the
//! pull parser, the serializer, and the O(depth)-memory cast path.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::core::{CastContext, StreamingCast};
use schemacast::regex::Alphabet;
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::workload::synth::{random_schema, sample_document, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_equals_tree_validation(
        schema_seed in 0u64..4000,
        evolve_steps in 0usize..3,
        doc_seed in 0u64..4000,
    ) {
        let mut rng = SmallRng::seed_from_u64(schema_seed);
        let mut synth = random_schema(&SynthConfig::default(), &mut rng);
        let original = synth.clone();
        for _ in 0..evolve_steps {
            synth.evolve(&mut rng);
        }
        let mut ab = Alphabet::new();
        let source = original.build(&mut ab);
        let target = synth.build(&mut ab);
        let mut doc_rng = SmallRng::seed_from_u64(doc_seed);
        let Some(doc) = sample_document(&source, &mut ab, &mut doc_rng, 5) else {
            return Ok(());
        };

        // Serialize (both compact and pretty — the pretty form adds
        // ignorable whitespace the streaming validator must skip).
        let xml = doc.to_xml(&ab);
        let compact = schemacast::xml::to_string(&xml);
        let pretty = schemacast::xml::to_pretty_string(&xml);

        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let want = target.accepts_document(&doc);

        let (out_compact, _) = sc.validate_str(&compact, &ab).expect("compact well-formed");
        prop_assert_eq!(out_compact.is_valid(), want, "compact form");

        let (out_pretty, _) = sc.validate_str(&pretty, &ab).expect("pretty well-formed");
        prop_assert_eq!(out_pretty.is_valid(), want, "pretty form");

        // And the DOM round trip through the parser agrees too.
        let reparsed = schemacast::xml::parse_document(&compact).expect("parse");
        let doc2 = Doc::from_xml(&reparsed.root, &mut ab, WhitespaceMode::Trim);
        prop_assert_eq!(ctx.validate(&doc2).is_valid(), want, "reparsed tree");
    }
}
