//! Property tests: the schema-cast validators agree with ground truth
//! (full validation per Definition 1) on randomly generated schema pairs,
//! documents, and edit scripts.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::core::{CastContext, CastOptions, DtdCastValidator, LabelIndex, ModsValidator};
use schemacast::regex::Alphabet;
use schemacast::tree::DeltaDoc;
use schemacast::workload::synth::{
    random_edits, random_schema, sample_document, SynthConfig, SynthSchema,
};

/// Builds (source, evolved target, alphabet, source-valid doc) from seeds.
fn scenario(
    schema_seed: u64,
    evolve_steps: usize,
    doc_seed: u64,
) -> Option<(
    schemacast::schema::AbstractSchema,
    schemacast::schema::AbstractSchema,
    Alphabet,
    schemacast::tree::Doc,
)> {
    let mut rng = SmallRng::seed_from_u64(schema_seed);
    let mut synth = random_schema(&SynthConfig::default(), &mut rng);
    let original: SynthSchema = synth.clone();
    for _ in 0..evolve_steps {
        synth.evolve(&mut rng);
    }
    let mut ab = Alphabet::new();
    let source = original.build(&mut ab);
    let target = synth.build(&mut ab);
    let mut doc_rng = SmallRng::seed_from_u64(doc_seed);
    let doc = sample_document(&source, &mut ab, &mut doc_rng, 5)?;
    Some((source, target, ab, doc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §3.2 cast validator agrees with full validation, under every
    /// ablation configuration.
    #[test]
    fn cast_equals_full_validation(
        schema_seed in 0u64..5000,
        evolve_steps in 0usize..4,
        doc_seed in 0u64..5000,
    ) {
        let Some((source, target, ab, doc)) = scenario(schema_seed, evolve_steps, doc_seed)
        else { return Ok(()); };
        prop_assert!(source.accepts_document(&doc));
        let want = target.accepts_document(&doc);
        for opts in [
            CastOptions::default(),
            CastOptions::paper_prototype(),
            CastOptions::baseline(),
        ] {
            let ctx = CastContext::with_options(&source, &target, &ab, opts);
            prop_assert_eq!(
                ctx.validate(&doc).is_valid(),
                want,
                "options {:?}", opts
            );
        }
    }

    /// The §3.3 with-modifications validator agrees with full validation of
    /// the materialized edited tree.
    #[test]
    fn mods_equals_full_validation_of_committed_tree(
        schema_seed in 0u64..5000,
        evolve_steps in 0usize..3,
        doc_seed in 0u64..5000,
        edit_seed in 0u64..5000,
        n_edits in 0usize..8,
    ) {
        let Some((source, target, mut ab, doc)) = scenario(schema_seed, evolve_steps, doc_seed)
        else { return Ok(()); };
        let ctx = CastContext::new(&source, &target, &ab);
        let mv = ModsValidator::new(&ctx);
        let mut dd = DeltaDoc::new(doc);
        let mut rng = SmallRng::seed_from_u64(edit_seed);
        random_edits(&mut dd, &mut ab, &mut rng, n_edits);
        let want = target.accepts_document(&dd.committed());
        prop_assert_eq!(mv.validate(&dd).is_valid(), want);
    }

    /// Subsumption skipping never changes the verdict, only the work:
    /// with skipping on, visits are never more than with skipping off.
    #[test]
    fn skipping_reduces_work_monotonically(
        schema_seed in 0u64..3000,
        doc_seed in 0u64..3000,
    ) {
        let Some((source, target, ab, doc)) = scenario(schema_seed, 1, doc_seed)
        else { return Ok(()); };
        let on = CastContext::new(&source, &target, &ab);
        let off = CastContext::with_options(&source, &target, &ab, CastOptions::baseline());
        let (out_on, stats_on) = on.validate_with_stats(&doc);
        let (out_off, stats_off) = off.validate_with_stats(&doc);
        prop_assert_eq!(out_on, out_off);
        prop_assert!(stats_on.nodes_visited <= stats_off.nodes_visited);
    }
}

/// DTD-style pairs: the label-indexed validator (§3.4) agrees with the
/// top-down one. (Deterministic seeds; DTD-ness requires a dedicated
/// generator, so we use fixed DTDs with varying documents.)
#[test]
fn dtd_cast_agrees_with_tree_cast() {
    let src_dtd = r#"
        <!ELEMENT root (a*, b?)>
        <!ELEMENT a (c, d?)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c (#PCDATA)>
        <!ELEMENT d (#PCDATA)>
    "#;
    let tgt_dtd = r#"
        <!ELEMENT root (a+, b?)>
        <!ELEMENT a (c, d)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c (#PCDATA)>
        <!ELEMENT d (#PCDATA)>
    "#;
    let mut ab = Alphabet::new();
    let source = schemacast::schema::parse_dtd(src_dtd, Some("root"), &mut ab).expect("src");
    let target = schemacast::schema::parse_dtd(tgt_dtd, Some("root"), &mut ab).expect("tgt");
    let ctx = CastContext::new(&source, &target, &ab);
    let dtd = DtdCastValidator::new(&ctx, ab.len()).expect("DTD style");

    for doc_seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(doc_seed);
        // Sample documents from the *source* schema.
        let root = ab.lookup("root").unwrap();
        let Some(doc) = sample_document_rooted(&source, root, &ab, &mut rng) else {
            continue;
        };
        assert!(source.accepts_document(&doc), "seed {doc_seed}");
        let via_tree = ctx.validate(&doc).is_valid();
        let via_index = dtd.validate(&doc, &LabelIndex::build(&doc)).is_valid();
        let truth = target.accepts_document(&doc);
        assert_eq!(via_tree, truth, "tree cast, seed {doc_seed}");
        assert_eq!(via_index, truth, "label index, seed {doc_seed}");
    }
}

/// Root-label-parameterized document sampler (the synth sampler assumes a
/// "root" label; here we pass it explicitly for DTD schemas).
fn sample_document_rooted(
    schema: &schemacast::schema::AbstractSchema,
    root: schemacast::regex::Sym,
    ab: &Alphabet,
    rng: &mut SmallRng,
) -> Option<schemacast::tree::Doc> {
    use schemacast::schema::TypeDef;
    use schemacast::workload::strings::sample_member;
    use schemacast::workload::synth::sample_simple_value;

    fn fill(
        schema: &schemacast::schema::AbstractSchema,
        doc: &mut schemacast::tree::Doc,
        node: schemacast::tree::NodeId,
        t: schemacast::schema::TypeId,
        rng: &mut SmallRng,
    ) -> Option<()> {
        match schema.type_def(t) {
            TypeDef::Simple(s) => {
                let v = sample_simple_value(s, rng)?;
                if !v.is_empty() {
                    doc.add_text(node, v);
                }
                Some(())
            }
            TypeDef::Complex(c) => {
                let labels = sample_member(&c.dfa, rng, 3)?;
                for l in labels {
                    let ct = c.child_type(l)?;
                    let child = doc.add_element(node, l);
                    fill(schema, doc, child, ct, rng)?;
                }
                Some(())
            }
        }
    }
    let t = schema.root_type(root)?;
    let mut doc = schemacast::tree::Doc::new(root);
    let r = doc.root();
    fill(schema, &mut doc, r, t, rng)?;
    let _ = ab;
    Some(doc)
}
