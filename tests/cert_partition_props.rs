//! The partition property behind the certified relations: over random
//! schema evolutions, every type pair classifies as exactly one of
//! subsumed / disjoint / neither, the certified `R_nondis` order is the
//! exact complement of `R_dis`, and the classification agrees with the
//! pair-lint findings (`SC0202` ⟺ reachable disjoint pair, `SC0201` ⟺
//! reachable neither pair) and their witness synthesis.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::analysis::lint_pair;
use schemacast::core::certify::certify_context;
use schemacast::core::{reachable_pairs_with_paths, CastContext};
use schemacast::regex::Alphabet;
use schemacast::workload::synth::{random_schema, SynthConfig};

#[test]
fn classification_is_a_partition_agreeing_with_lint() {
    let mut reachable_neither = 0usize;
    for seed in 0..30u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0DE + seed);
        let original = random_schema(&SynthConfig::default(), &mut rng);
        let mut evolved = original.clone();
        for _ in 0..=(seed % 3) {
            evolved.evolve(&mut rng);
        }
        let mut alphabet = Alphabet::new();
        let source = original.build(&mut alphabet);
        let target = evolved.build(&mut alphabet);
        let ctx = CastContext::new(&source, &target, &alphabet);
        let rel = ctx.relations();

        // The certification layer must agree the fixpoints are justified
        // before we treat them as ground truth for the partition.
        let run = certify_context(&ctx);
        assert!(run.all_certified(), "seed {seed}: {:#?}", run.diagnostics);

        let src_productive = source.productive(&alphabet);
        let tgt_productive = target.productive(&alphabet);
        for s in source.type_ids() {
            for t in target.type_ids() {
                // The certified nondis order is the exact complement of
                // R_dis: every pair is disjoint or non-disjoint, never
                // both, never neither.
                assert_ne!(
                    rel.nondis_order(s, t).is_some(),
                    rel.disjoint(s, t),
                    "seed {seed}: dis/nondis not a partition for \
                     ({}, {})",
                    source.type_name(s),
                    target.type_name(t)
                );
                // Subsumed and disjoint can only coincide vacuously, on a
                // non-productive source type (empty tree language).
                if rel.subsumed(s, t) && rel.disjoint(s, t) {
                    assert!(
                        !src_productive[s.index()] || !tgt_productive[t.index()],
                        "seed {seed}: productive pair ({}, {}) both \
                         subsumed and disjoint",
                        source.type_name(s),
                        target.type_name(t)
                    );
                }
            }
        }

        // Lint agreement: reachable pairs are exactly the non-subsumed
        // ones, and each yields SC0202 iff disjoint, SC0201 iff neither.
        let pairs = reachable_pairs_with_paths(&ctx);
        let report = lint_pair(&ctx, &alphabet, None);
        let sc0201 = report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == "SC0201")
            .count();
        let sc0202 = report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == "SC0202")
            .count();
        let mut disjoint_pairs = 0usize;
        let mut neither_pairs = 0usize;
        for p in &pairs {
            assert!(
                !rel.subsumed(p.source, p.target),
                "seed {seed}: subsumed pair reported reachable"
            );
            if rel.disjoint(p.source, p.target) {
                disjoint_pairs += 1;
            } else {
                neither_pairs += 1;
            }
        }
        assert_eq!(
            sc0202, disjoint_pairs,
            "seed {seed}: SC0202 count disagrees with disjoint \
             classification"
        );
        assert_eq!(
            sc0201, neither_pairs,
            "seed {seed}: SC0201 count disagrees with `neither` \
             classification"
        );
        reachable_neither += neither_pairs;

        // Witness agreement: an attached lint witness is a concrete
        // refutation of subsumption — and for disjoint pairs the checker
        // already validated a product invariant with *no* jointly-final
        // state, so the two certificates can never contradict.
        for d in &report.diagnostics {
            if let Some(w) = &d.witness {
                let xml = schemacast::xml::parse_document(w).expect("witness parses");
                let doc = schemacast::tree::Doc::from_xml(
                    &xml.root,
                    &mut alphabet,
                    schemacast::tree::WhitespaceMode::Trim,
                );
                assert!(source.accepts_document(&doc), "seed {seed}: {w}");
                assert!(!target.accepts_document(&doc), "seed {seed}: {w}");
            }
        }
    }
    // Anti-vacuity: the sweep must exercise the `neither` bucket (random
    // evolutions essentially never make a *reachable* pair disjoint; the
    // deterministic test below covers that bucket).
    assert!(reachable_neither > 0, "no `neither` reachable pairs");
}

#[test]
fn reachable_disjoint_pair_classifies_and_lints_as_sc0202() {
    use schemacast::schema::{SchemaBuilder, SimpleType};
    let mut alphabet = Alphabet::new();
    let mk = |alphabet: &mut Alphabet, model: &str, kid: &str| {
        let mut b = SchemaBuilder::new(alphabet);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, model, &[(kid, text)]).unwrap();
        b.root("r", root);
        b.finish().unwrap()
    };
    let source = mk(&mut alphabet, "(a, a)", "a");
    let target = mk(&mut alphabet, "(b, b)", "b");
    let ctx = CastContext::new(&source, &target, &alphabet);
    let run = certify_context(&ctx);
    assert!(run.all_certified(), "{:#?}", run.diagnostics);

    let pairs = reachable_pairs_with_paths(&ctx);
    let root_pair = pairs
        .iter()
        .find(|p| source.type_name(p.source) == "Root")
        .expect("root pair reachable");
    assert!(ctx.relations().disjoint(root_pair.source, root_pair.target));
    assert!(ctx
        .relations()
        .nondis_order(root_pair.source, root_pair.target)
        .is_none());

    let report = lint_pair(&ctx, &alphabet, None);
    assert!(
        report.diagnostics.iter().any(|d| d.rule_id == "SC0202"),
        "disjoint reachable pair must lint as SC0202: {:?}",
        report.diagnostics
    );
}
