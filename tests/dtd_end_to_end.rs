//! DTD pipeline integration: documents carrying internal DTD subsets are
//! parsed, their DTDs compiled, and schema casts run between DTD versions —
//! including the §3.4 label-indexed path.

use schemacast::core::{CastContext, DtdCastValidator, LabelIndex};
use schemacast::schema::Session;
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::xml::parse_document;

const DOC_V1: &str = r#"<?xml version="1.0"?>
<!DOCTYPE order [
  <!ELEMENT order (customer, line*, note?)>
  <!ELEMENT customer (#PCDATA)>
  <!ELEMENT line (sku, qty)>
  <!ELEMENT sku (#PCDATA)>
  <!ELEMENT qty (#PCDATA)>
  <!ELEMENT note (#PCDATA)>
]>
<order>
  <customer>ACME</customer>
  <line><sku>A-1</sku><qty>2</qty></line>
  <line><sku>B-9</sku><qty>1</qty></line>
</order>"#;

const DTD_V2: &str = r#"
  <!ELEMENT order (customer, line+, note?)>
  <!ELEMENT customer (#PCDATA)>
  <!ELEMENT line (sku, qty)>
  <!ELEMENT sku (#PCDATA)>
  <!ELEMENT qty (#PCDATA)>
  <!ELEMENT note (#PCDATA)>
"#;

#[test]
fn doctype_to_cast_pipeline() {
    let mut session = Session::new();
    let xml = parse_document(DOC_V1).expect("document parses");
    let source = session
        .parse_dtd(
            xml.internal_dtd.as_deref().unwrap(),
            xml.doctype_name.as_deref(),
        )
        .expect("v1 DTD");
    let target = session.parse_dtd(DTD_V2, Some("order")).expect("v2 DTD");

    let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
    assert!(source.accepts_document(&doc));

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    assert!(ctx.validate(&doc).is_valid());

    // Label-indexed path agrees.
    let dtd = DtdCastValidator::new(&ctx, session.alphabet.len()).expect("DTD style");
    let index = LabelIndex::build(&doc);
    assert!(dtd.validate(&doc, &index).is_valid());
}

#[test]
fn empty_line_list_fails_v2() {
    let text = r#"<!DOCTYPE order [
      <!ELEMENT order (customer, line*, note?)>
      <!ELEMENT customer (#PCDATA)>
      <!ELEMENT line (sku, qty)>
      <!ELEMENT sku (#PCDATA)>
      <!ELEMENT qty (#PCDATA)>
      <!ELEMENT note (#PCDATA)>
    ]>
    <order><customer>ACME</customer></order>"#;
    let mut session = Session::new();
    let xml = parse_document(text).expect("parses");
    let source = session
        .parse_dtd(xml.internal_dtd.as_deref().unwrap(), Some("order"))
        .expect("v1");
    let target = session.parse_dtd(DTD_V2, Some("order")).expect("v2");
    let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
    assert!(source.accepts_document(&doc));

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    assert!(!ctx.validate(&doc).is_valid());
    let dtd = DtdCastValidator::new(&ctx, session.alphabet.len()).expect("DTD style");
    assert!(!dtd.validate(&doc, &LabelIndex::build(&doc)).is_valid());
}

#[test]
fn preserve_whitespace_mode_does_not_change_verdicts() {
    let mut session = Session::new();
    let xml = parse_document(DOC_V1).expect("parses");
    let source = session
        .parse_dtd(xml.internal_dtd.as_deref().unwrap(), Some("order"))
        .expect("v1");
    let target = session.parse_dtd(DTD_V2, Some("order")).expect("v2");
    let trimmed = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
    let preserved = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Preserve);
    assert!(preserved.node_count() > trimmed.node_count());

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    assert_eq!(ctx.validate(&trimmed), ctx.validate(&preserved));
    assert_eq!(
        source.accepts_document(&trimmed),
        source.accepts_document(&preserved)
    );
}
