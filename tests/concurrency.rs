//! A preprocessed [`CastContext`] is shareable across threads: the message
//! broker scenario runs one context against many documents concurrently.

use schemacast::core::{CastContext, ModsValidator, StreamingCast};
use schemacast::schema::Session;
use schemacast::workload::purchase_order as po;
use std::thread;

/// Compile-time Send+Sync guarantees.
#[test]
fn context_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CastContext<'static>>();
    assert_send_sync::<ModsValidator<'static, 'static>>();
    assert_send_sync::<StreamingCast<'static, 'static>>();
}

#[test]
fn concurrent_validation_shares_one_context() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();

    // Pre-generate documents (alphabet interning needs &mut).
    let docs: Vec<_> = (0..8)
        .map(|i| {
            let with_bill = i % 2 == 0;
            (
                with_bill,
                po::generate_document(&mut session.alphabet, 50 + i * 10, with_bill),
            )
        })
        .collect();

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    thread::scope(|s| {
        let mut handles = Vec::new();
        for (with_bill, doc) in &docs {
            let ctx = &ctx;
            handles.push(s.spawn(move || {
                // The IDA cache is populated concurrently under the lock.
                let out = ctx.validate(doc);
                assert_eq!(out.is_valid(), *with_bill);
                // Repeat to hit the cached path too.
                for _ in 0..10 {
                    assert_eq!(ctx.validate(doc).is_valid(), *with_bill);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
    });
}

#[test]
fn concurrent_streaming_validation() {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).unwrap();
    let target = session.parse_xsd(&po::target_xsd()).unwrap();
    let texts: Vec<String> = (0..4)
        .map(|_| po::document_xml(&mut session.alphabet, 100))
        .collect();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let alphabet = &session.alphabet;
    thread::scope(|s| {
        for text in &texts {
            let ctx = &ctx;
            s.spawn(move || {
                let sc = StreamingCast::new(ctx);
                let (out, _) = sc.validate_str(text, alphabet).expect("well-formed");
                assert!(out.is_valid());
            });
        }
    });
}
