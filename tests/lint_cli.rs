//! Integration tests for `schemacast lint`: the exit-code contract
//! (0 clean / 1 findings / 2 usage error), the JSON witness guarantee of
//! the acceptance criteria, and the SARIF 2.1.0 required-property set.

use schemacast::core::CastContext;
use schemacast::schema::Session;
use schemacast::tree::{Doc, WhitespaceMode};
use schemacast::xml::parse_document;
use std::process::{Command, Output};

const SOURCE: &str = "tests/fixtures/po_source.xsd";
const TARGET: &str = "tests/fixtures/po_target.xsd";

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_schemacast"))
        .arg("lint")
        .args(args)
        .output()
        .expect("run schemacast")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn clean_schema_exits_zero() {
    let out = lint(&[TARGET]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    // Same schema on both sides: nothing changed, still clean.
    let out = lint(&[TARGET, TARGET, "--fail-on", "warn"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

#[test]
fn incompatible_pair_exits_one() {
    let out = lint(&[SOURCE, TARGET]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SC0201"), "{text}");
    assert!(text.contains("witness:"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    // No schemas at all.
    assert_eq!(exit_code(&lint(&[])), 2);
    // Three positional schemas.
    assert_eq!(exit_code(&lint(&["a.xsd", "b.xsd", "c.xsd"])), 2);
    // Bad --fail-on value.
    assert_eq!(exit_code(&lint(&[TARGET, "--fail-on", "bogus"])), 2);
    // Mutually exclusive output modes.
    assert_eq!(exit_code(&lint(&[SOURCE, TARGET, "--json", "--sarif"])), 2);
    // Unreadable schema file.
    assert_eq!(exit_code(&lint(&["no-such-file.xsd"])), 2);
}

#[test]
fn json_witness_round_trips_against_cast_context() {
    let out = lint(&[SOURCE, TARGET, "--json"]);
    assert_eq!(exit_code(&out), 1);
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"diagnostics\":["), "{json}");
    assert!(json.contains("\"rule\":\"SC0201\""), "{json}");

    // Pull every witness value back out of the JSON (our own encoder is
    // hand-rolled; decode the two escapes the XML can contain).
    let mut witnesses = Vec::new();
    let mut rest = json.as_str();
    while let Some(p) = rest.find("\"witness\":\"") {
        let body = &rest[p + 11..];
        let end = body.find('"').expect("terminated string");
        witnesses.push(body[..end].replace("\\\"", "\"").replace("\\\\", "\\"));
        rest = &body[end..];
    }
    assert!(!witnesses.is_empty(), "at least one witness in {json}");

    let mut session = Session::new();
    let source = session
        .parse_xsd(&std::fs::read_to_string(SOURCE).unwrap())
        .expect("source");
    let target = session
        .parse_xsd(&std::fs::read_to_string(TARGET).unwrap())
        .expect("target");
    for w in &witnesses {
        let xml = parse_document(w).expect("witness parses");
        let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
        assert!(source.accepts_document(&doc), "valid in S: {w}");
        assert!(!target.accepts_document(&doc), "invalid in S': {w}");
    }
    // The CastContext fast path must agree with the reference oracle.
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    for w in &witnesses {
        let xml = parse_document(w).expect("witness parses");
        let doc = Doc::from_xml(&xml.root, &mut session.alphabet, WhitespaceMode::Trim);
        assert!(!ctx.validate(&doc).is_valid(), "cast rejects: {w}");
    }
}

#[test]
fn sarif_output_carries_required_properties() {
    let out = lint(&[SOURCE, TARGET, "--sarif"]);
    assert_eq!(exit_code(&out), 1);
    let sarif = String::from_utf8(out.stdout).expect("utf8");
    for required in [
        "\"version\":\"2.1.0\"",
        "\"runs\":[",
        "\"tool\":{\"driver\":{\"name\":\"schemacast-lint\"",
        "\"rules\":[",
        "\"results\":[",
        "\"ruleId\":\"SC02",
        "\"message\":{\"text\":",
        "\"physicalLocation\":",
        "\"artifactLocation\":{\"uri\":",
    ] {
        assert!(sarif.contains(required), "missing {required} in {sarif}");
    }
}
