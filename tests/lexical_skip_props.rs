//! Property test: the lexical fast path (interned labels + raw-byte
//! subtree skipping) is byte-for-byte equivalent to the generic
//! depth-counting event path on schema-derived documents.
//!
//! `streaming_props.rs` checks the streaming validator against the tree
//! validator; this file checks the two *streaming* implementations against
//! each other — same outcome, same decision counters — with
//! `bytes_skipped` / `events_avoided` as the only permitted difference
//! (the generic path leaves them 0 by construction).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast::core::{CastContext, StreamingCast};
use schemacast::regex::Alphabet;
use schemacast::workload::synth::{random_schema, sample_document, SynthConfig};
use schemacast::xml::PullParser;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexical_fast_path_matches_generic_event_path(
        schema_seed in 0u64..4000,
        evolve_steps in 0usize..3,
        doc_seed in 0u64..4000,
    ) {
        let mut rng = SmallRng::seed_from_u64(schema_seed);
        let mut synth = random_schema(&SynthConfig::default(), &mut rng);
        let original = synth.clone();
        for _ in 0..evolve_steps {
            synth.evolve(&mut rng);
        }
        let mut ab = Alphabet::new();
        let source = original.build(&mut ab);
        let target = synth.build(&mut ab);
        let mut doc_rng = SmallRng::seed_from_u64(doc_seed);
        let Some(doc) = sample_document(&source, &mut ab, &mut doc_rng, 5) else {
            return Ok(());
        };
        let xml = doc.to_xml(&ab);

        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);

        // Exercise both serializations: the pretty form interleaves
        // ignorable whitespace with the tags the raw-byte scanner jumps
        // over, so a skip that lands even one byte off shows up here.
        for text in [
            schemacast::xml::to_string(&xml),
            schemacast::xml::to_pretty_string(&xml),
        ] {
            let (fast_out, fast_stats) =
                sc.validate_str(&text, &ab).expect("well-formed");
            let (oracle_out, oracle_stats) = sc
                .validate_events(PullParser::new(&text), &ab)
                .expect("well-formed");

            prop_assert_eq!(fast_out, oracle_out, "outcomes diverge");

            // Decision counters must be identical; only the lexical-skip
            // and stage-1 tape telemetry may differ (the oracle never
            // skips lexically and builds no tape).
            let mut fast_stats = fast_stats;
            fast_stats.bytes_skipped = 0;
            fast_stats.events_avoided = 0;
            fast_stats.index_build_micros = 0;
            fast_stats.tape_events = 0;
            fast_stats.tape_skip_hops = 0;
            prop_assert_eq!(oracle_stats.bytes_skipped, 0);
            prop_assert_eq!(oracle_stats.events_avoided, 0);
            prop_assert_eq!(oracle_stats.tape_events, 0);
            prop_assert_eq!(oracle_stats.tape_skip_hops, 0);
            prop_assert_eq!(fast_stats, oracle_stats, "decision stats diverge");
        }
    }
}

/// Anti-vacuity: the equivalence property above is meaningless if no
/// document ever triggers the lexical skip path, so this test runs a
/// deterministic slice of the same kind of corpus (identity casts, where
/// every subtree is subsumed) and demands nonzero skip telemetry.
#[test]
fn skip_machinery_is_exercised_by_the_corpus() {
    let mut bytes = 0usize;
    let mut events = 0usize;
    let mut hops = 0usize;
    for schema_seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(schema_seed);
        let synth = random_schema(&SynthConfig::default(), &mut rng);
        let mut ab = Alphabet::new();
        let source = synth.build(&mut ab);
        let target = synth.build(&mut ab);
        let mut doc_rng = SmallRng::seed_from_u64(schema_seed.wrapping_mul(31));
        let Some(doc) = sample_document(&source, &mut ab, &mut doc_rng, 5) else {
            continue;
        };
        let text = schemacast::xml::to_string(&doc.to_xml(&ab));
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (_, stats) = sc.validate_str(&text, &ab).expect("well-formed");
        bytes += stats.bytes_skipped;
        events += stats.events_avoided;
        hops += stats.tape_skip_hops;
    }
    assert!(
        bytes > 0 && events > 0,
        "identity casts over synth documents never skipped a subtree \
         lexically (bytes={bytes}, events={events}) — the oracle property \
         above would be vacuous"
    );
    assert!(
        hops > 0,
        "no skip was served as an O(1) tape hop (hops={hops}) — the \
         tape-fed skip path is not being exercised"
    );
}
