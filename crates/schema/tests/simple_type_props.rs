//! Property tests on the simple-type lattice: the subsumption and
//! disjointness procedures must be *sound* against direct value probing,
//! subsumption must be reflexive and transitive on the tested family, and
//! disjointness symmetric.

use proptest::prelude::*;
use schemacast_schema::{AtomicKind, BoundValue, Decimal, Facets, SimpleType};

/// Strategy over a representative family of simple types.
fn simple_type_strategy() -> impl Strategy<Value = SimpleType> {
    let kind = prop_oneof![
        Just(AtomicKind::String),
        Just(AtomicKind::Boolean),
        Just(AtomicKind::Decimal),
        Just(AtomicKind::Integer),
        Just(AtomicKind::NonNegativeInteger),
        Just(AtomicKind::PositiveInteger),
        Just(AtomicKind::Date),
    ];
    (kind, -50i64..300, 0i64..400, any::<bool>(), any::<bool>()).prop_map(
        |(kind, lo, width, use_lo, use_hi)| {
            let mut facets = Facets::default();
            if kind.is_numeric() {
                if use_lo {
                    facets.min_inclusive = Some(BoundValue::Num(Decimal::from_i64(lo)));
                }
                if use_hi {
                    facets.max_exclusive = Some(BoundValue::Num(Decimal::from_i64(lo + width)));
                }
            }
            SimpleType { kind, facets }
        },
    )
}

const PROBES: &[&str] = &[
    "",
    "0",
    "1",
    "-1",
    "-50",
    "7",
    "42",
    "99",
    "100",
    "150",
    "249",
    "250",
    "299",
    "300",
    "12.5",
    "-3.25",
    "0.0",
    "true",
    "false",
    "hello",
    "2004-02-29",
    "1999-12-31",
    "0099",
    "+5",
    " 5 ",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: a positive subsumption/disjointness answer is never
    /// contradicted by a probe value.
    #[test]
    fn decisions_are_sound(a in simple_type_strategy(), b in simple_type_strategy()) {
        if a.subsumed_by(&b) {
            for p in PROBES {
                prop_assert!(
                    !a.validate(p) || b.validate(p),
                    "{a:?} ≤ {b:?} contradicted by {p:?}"
                );
            }
        }
        if a.disjoint_from(&b) {
            for p in PROBES {
                prop_assert!(
                    !(a.validate(p) && b.validate(p)),
                    "{a:?} ⊘ {b:?} contradicted by {p:?}"
                );
            }
        }
    }

    /// Reflexivity of subsumption (a type subsumes itself).
    #[test]
    fn subsumption_is_reflexive(a in simple_type_strategy()) {
        prop_assert!(a.subsumed_by(&a));
    }

    /// Transitivity on the tested family.
    #[test]
    fn subsumption_is_transitive(
        a in simple_type_strategy(),
        b in simple_type_strategy(),
        c in simple_type_strategy(),
    ) {
        if a.subsumed_by(&b) && b.subsumed_by(&c) {
            prop_assert!(a.subsumed_by(&c), "{a:?} ≤ {b:?} ≤ {c:?} but not {a:?} ≤ {c:?}");
        }
    }

    /// Symmetry of disjointness.
    #[test]
    fn disjointness_is_symmetric(a in simple_type_strategy(), b in simple_type_strategy()) {
        prop_assert_eq!(a.disjoint_from(&b), b.disjoint_from(&a));
    }

    /// A type is never disjoint from itself unless its value space is empty.
    #[test]
    fn self_disjointness_means_empty(a in simple_type_strategy()) {
        if a.disjoint_from(&a) {
            for p in PROBES {
                prop_assert!(!a.validate(p), "self-disjoint type accepts {p:?}");
            }
        }
    }

    /// Example values satisfy their own type.
    #[test]
    fn examples_validate(a in simple_type_strategy()) {
        if let Some(v) = a.example_value() {
            prop_assert!(a.validate(&v), "{a:?} rejects its example {v:?}");
        } else {
            // No example found ⇒ the probe battery finds nothing either
            // (the example prober is at least as thorough as PROBES for
            // numeric ranges).
            if a.kind.is_numeric() {
                for p in PROBES {
                    prop_assert!(!a.validate(p), "example missing but {p:?} validates for {a:?}");
                }
            }
        }
    }
}
