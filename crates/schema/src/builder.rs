//! Programmatic construction of abstract XML Schemas.
//!
//! The builder supports forward references (declare first, define later),
//! parses content models with the DTD-style syntax of `schemacast-regex`,
//! compiles every content model to a complete DFA at [`SchemaBuilder::finish`]
//! time (when the alphabet is fully known), and checks the structural
//! consistency rules of the formalism: every type defined exactly once,
//! every label of a content model mapped by `types_τ`, roots defined.

use crate::abstract_schema::{AbstractSchema, ComplexType, TypeDef, TypeId};
use crate::simple::SimpleType;
use schemacast_automata::Dfa;
use schemacast_regex::glushkov::is_one_unambiguous;
use schemacast_regex::{parse_regex, Alphabet, Regex};
use std::collections::HashMap;
use std::fmt;

/// An error constructing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A type name was declared twice.
    DuplicateType(String),
    /// A declared type was never defined.
    UndefinedType(String),
    /// A type was defined twice.
    Redefined(String),
    /// A content model failed to parse.
    BadContentModel {
        /// The type being defined.
        type_name: String,
        /// Parser error text.
        message: String,
    },
    /// A label used in a content model has no entry in `types_τ`.
    MissingChildType {
        /// The type being defined.
        type_name: String,
        /// The unmapped label.
        label: String,
    },
    /// A bounded repetition was too large to expand.
    RepeatTooLarge(String),
    /// A root label was bound to two different types.
    ConflictingRoot(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateType(n) => write!(f, "type {n:?} declared twice"),
            BuildError::UndefinedType(n) => write!(f, "type {n:?} was declared but never defined"),
            BuildError::Redefined(n) => write!(f, "type {n:?} defined twice"),
            BuildError::BadContentModel { type_name, message } => {
                write!(f, "content model of {type_name:?}: {message}")
            }
            BuildError::MissingChildType { type_name, label } => write!(
                f,
                "content model of {type_name:?} uses label {label:?} with no child type assigned"
            ),
            BuildError::RepeatTooLarge(n) => {
                write!(
                    f,
                    "content model of {n:?} has a repetition too large to expand"
                )
            }
            BuildError::ConflictingRoot(n) => {
                write!(f, "root label {n:?} bound to two different types")
            }
        }
    }
}

impl std::error::Error for BuildError {}

enum Pending {
    Declared,
    Simple(Box<SimpleType>),
    Complex {
        regex: Regex,
        child_types: HashMap<String, TypeId>,
    },
}

/// Builder for [`AbstractSchema`] values.
///
/// # Examples
/// ```
/// use schemacast_schema::{SchemaBuilder, SimpleType};
/// use schemacast_regex::Alphabet;
///
/// let mut alphabet = Alphabet::new();
/// let mut b = SchemaBuilder::new(&mut alphabet);
/// let text = b.simple("Text", SimpleType::string()).unwrap();
/// let addr = b.declare("USAddress").unwrap();
/// b.complex(addr, "(name, street, city, state, zip, country)",
///           &[("name", text), ("street", text), ("city", text),
///             ("state", text), ("zip", text), ("country", text)]).unwrap();
/// let po = b.declare("POType").unwrap();
/// b.complex(po, "(shipTo, billTo?, items)",
///           &[("shipTo", addr), ("billTo", addr), ("items", text)]).unwrap();
/// b.root("purchaseOrder", po);
/// let schema = b.finish().unwrap();
/// assert_eq!(schema.type_count(), 3);
/// ```
pub struct SchemaBuilder<'a> {
    alphabet: &'a mut Alphabet,
    names: Vec<String>,
    pending: Vec<Pending>,
    index: HashMap<String, TypeId>,
    roots: Vec<(String, TypeId)>,
}

impl<'a> SchemaBuilder<'a> {
    /// Starts a builder over a shared alphabet.
    pub fn new(alphabet: &'a mut Alphabet) -> SchemaBuilder<'a> {
        SchemaBuilder {
            alphabet,
            names: Vec::new(),
            pending: Vec::new(),
            index: HashMap::new(),
            roots: Vec::new(),
        }
    }

    /// Access to the underlying alphabet (front-ends intern labels through
    /// the builder while constructing content models).
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        self.alphabet
    }

    /// Declares a type name for forward reference; define it later with
    /// [`SchemaBuilder::complex`] or [`SchemaBuilder::define_simple`].
    pub fn declare(&mut self, name: &str) -> Result<TypeId, BuildError> {
        if self.index.contains_key(name) {
            return Err(BuildError::DuplicateType(name.to_owned()));
        }
        let id = TypeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.pending.push(Pending::Declared);
        self.index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares and defines a simple type in one step.
    pub fn simple(&mut self, name: &str, ty: SimpleType) -> Result<TypeId, BuildError> {
        let id = self.declare(name)?;
        self.define_simple(id, ty)?;
        Ok(id)
    }

    /// Defines a previously declared type as simple.
    pub fn define_simple(&mut self, id: TypeId, ty: SimpleType) -> Result<(), BuildError> {
        match &self.pending[id.index()] {
            Pending::Declared => {
                self.pending[id.index()] = Pending::Simple(Box::new(ty));
                Ok(())
            }
            _ => Err(BuildError::Redefined(self.names[id.index()].clone())),
        }
    }

    /// Defines a previously declared type as complex, parsing `model` with
    /// the DTD-style regex syntax and assigning `child_types` by label name.
    pub fn complex(
        &mut self,
        id: TypeId,
        model: &str,
        child_types: &[(&str, TypeId)],
    ) -> Result<(), BuildError> {
        let regex = parse_regex(model, self.alphabet).map_err(|e| BuildError::BadContentModel {
            type_name: self.names[id.index()].clone(),
            message: e.to_string(),
        })?;
        self.complex_regex(
            id,
            regex,
            child_types
                .iter()
                .map(|(n, t)| ((*n).to_owned(), *t))
                .collect(),
        )
    }

    /// Defines a complex type from a pre-built [`Regex`].
    pub fn complex_regex(
        &mut self,
        id: TypeId,
        regex: Regex,
        child_types: HashMap<String, TypeId>,
    ) -> Result<(), BuildError> {
        match &self.pending[id.index()] {
            Pending::Declared => {}
            _ => return Err(BuildError::Redefined(self.names[id.index()].clone())),
        }
        self.pending[id.index()] = Pending::Complex { regex, child_types };
        Ok(())
    }

    /// Registers a root declaration `ℛ(label) = id`.
    pub fn root(&mut self, label: &str, id: TypeId) {
        self.roots.push((label.to_owned(), id));
    }

    /// Compiles content models and assembles the schema.
    ///
    /// # Errors
    /// Fails if any declared type is undefined, a content model uses an
    /// unmapped label, a repetition is too large, or a root label is bound
    /// to two different types.
    pub fn finish(self) -> Result<AbstractSchema, BuildError> {
        let alphabet_len = self.alphabet.len();
        let mut types = Vec::with_capacity(self.pending.len());
        for (i, p) in self.pending.into_iter().enumerate() {
            let name = &self.names[i];
            match p {
                Pending::Declared => return Err(BuildError::UndefinedType(name.clone())),
                Pending::Simple(s) => types.push(TypeDef::Simple(*s)),
                Pending::Complex { regex, child_types } => {
                    let mut mapped = HashMap::with_capacity(child_types.len());
                    for (label, t) in &child_types {
                        let sym = self.alphabet.intern(label);
                        mapped.insert(sym, *t);
                    }
                    for sym in regex.symbols() {
                        if !mapped.contains_key(&sym) {
                            return Err(BuildError::MissingChildType {
                                type_name: name.clone(),
                                label: self.alphabet.name(sym).to_owned(),
                            });
                        }
                    }
                    let dfa = Dfa::from_regex(&regex, alphabet_len.max(self.alphabet.len()))
                        .map_err(|_| BuildError::RepeatTooLarge(name.clone()))?;
                    let deterministic = is_one_unambiguous(&regex)
                        .map_err(|_| BuildError::RepeatTooLarge(name.clone()))?;
                    types.push(TypeDef::Complex(ComplexType::new(
                        regex,
                        dfa,
                        mapped,
                        deterministic,
                    )));
                }
            }
        }
        let mut roots = HashMap::new();
        for (label, t) in self.roots {
            let sym = self.alphabet.intern(&label);
            if let Some(prev) = roots.insert(sym, t) {
                if prev != t {
                    return Err(BuildError::ConflictingRoot(label));
                }
            }
        }
        Ok(AbstractSchema::from_parts(types, self.names, roots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::AtomicKind;
    use schemacast_tree::Doc;

    fn address_schema(alphabet: &mut Alphabet) -> AbstractSchema {
        let mut b = SchemaBuilder::new(alphabet);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let qty = b
            .simple("Qty", SimpleType::of(AtomicKind::PositiveInteger))
            .unwrap();
        let item = b.declare("Item").unwrap();
        b.complex(item, "(sku, qty)", &[("sku", text), ("qty", qty)])
            .unwrap();
        let items = b.declare("Items").unwrap();
        b.complex(items, "item*", &[("item", item)]).unwrap();
        b.root("items", items);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_validates_a_document() {
        let mut ab = Alphabet::new();
        let schema = address_schema(&mut ab);
        assert!(schema.is_dtd_style());
        assert!(schema.assert_productive(&ab).is_ok());

        let items = ab.lookup("items").unwrap();
        let item = ab.lookup("item").unwrap();
        let sku = ab.lookup("sku").unwrap();
        let qty = ab.lookup("qty").unwrap();

        let mut doc = Doc::new(items);
        let i = doc.add_element(doc.root(), item);
        let s = doc.add_element(i, sku);
        doc.add_text(s, "ABC-1");
        let q = doc.add_element(i, qty);
        doc.add_text(q, "4");
        assert!(schema.accepts_document(&doc));

        // Wrong order of children → invalid.
        let mut bad = Doc::new(items);
        let i = bad.add_element(bad.root(), item);
        let q = bad.add_element(i, qty);
        bad.add_text(q, "4");
        let s = bad.add_element(i, sku);
        bad.add_text(s, "ABC-1");
        assert!(!schema.accepts_document(&bad));

        // Facet violation: qty "0" is not a positiveInteger.
        let mut bad2 = Doc::new(items);
        let i = bad2.add_element(bad2.root(), item);
        let s = bad2.add_element(i, sku);
        bad2.add_text(s, "ABC-1");
        let q = bad2.add_element(i, qty);
        bad2.add_text(q, "0");
        assert!(!schema.accepts_document(&bad2));
    }

    #[test]
    fn empty_content_model_accepts_leaf() {
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let empty = b.declare("EmptyType").unwrap();
        b.complex(empty, "()", &[]).unwrap();
        b.root("nothing", empty);
        let schema = b.finish().unwrap();
        let nothing = ab.lookup("nothing").unwrap();
        let doc = Doc::new(nothing);
        assert!(schema.accepts_document(&doc));
    }

    #[test]
    fn builder_errors() {
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let t = b.declare("T").unwrap();
        assert_eq!(b.declare("T"), Err(BuildError::DuplicateType("T".into())));
        // Undefined type at finish.
        b.root("t", t);
        assert!(matches!(b.finish(), Err(BuildError::UndefinedType(_))));

        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let t = b.declare("T").unwrap();
        assert!(matches!(
            b.complex(t, "(a,", &[]),
            Err(BuildError::BadContentModel { .. })
        ));
        // Missing child type mapping.
        b.complex(t, "(a, b)", &[("a", t)]).unwrap();
        assert!(matches!(
            b.finish(),
            Err(BuildError::MissingChildType { .. })
        ));
    }

    #[test]
    fn productivity_detects_unsatisfiable_recursion() {
        // T → (t, T) … a type that requires itself forever is unproductive.
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let t = b.declare("Loop").unwrap();
        b.complex(t, "(x)", &[("x", t)]).unwrap();
        b.root("x", t);
        let schema = b.finish().unwrap();
        let err = schema.assert_productive(&ab).unwrap_err();
        assert_eq!(err.types, vec![t]);

        // Adding an escape hatch (optional content) makes it productive.
        let mut ab2 = Alphabet::new();
        let mut b2 = SchemaBuilder::new(&mut ab2);
        let t2 = b2.declare("Loop").unwrap();
        b2.complex(t2, "(x?)", &[("x", t2)]).unwrap();
        b2.root("x", t2);
        let schema2 = b2.finish().unwrap();
        assert!(schema2.assert_productive(&ab2).is_ok());
    }

    #[test]
    fn non_dtd_style_detected() {
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let s1 = b.simple("S1", SimpleType::string()).unwrap();
        let s2 = b.simple("S2", SimpleType::of(AtomicKind::Integer)).unwrap();
        let c1 = b.declare("C1").unwrap();
        // "x" has type S1 under C1 …
        b.complex(c1, "(x)", &[("x", s1)]).unwrap();
        let c2 = b.declare("C2").unwrap();
        // … but type S2 under C2: legal XML Schema, not DTD-expressible.
        b.complex(c2, "(x)", &[("x", s2)]).unwrap();
        b.root("c1", c1);
        b.root("c2", c2);
        let schema = b.finish().unwrap();
        assert!(!schema.is_dtd_style());
    }

    #[test]
    fn reference_validator_rejects_text_in_element_content() {
        let mut ab = Alphabet::new();
        let schema = address_schema(&mut ab);
        let items = ab.lookup("items").unwrap();
        let mut doc = Doc::new(items);
        doc.add_text(doc.root(), "stray");
        assert!(!schema.accepts_document(&doc));
    }
}
