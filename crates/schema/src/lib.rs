#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Abstract XML Schemas: the paper's `(Σ, 𝒯, ρ, ℛ)` formalism, with DTD and
//! XSD front-ends and a simple-type system with facets.
//!
//! * [`abstract_schema`] — types, content-model DFAs, `types_τ`, the root
//!   map ℛ, productivity analysis, and a reference executable of
//!   Definition 1.
//! * [`simple`] — atomic kinds, facets, and sound value-space subsumption /
//!   disjointness (needed for the paper's Experiment 2).
//! * [`builder`] — programmatic schema construction.
//! * [`dtd`] — `<!ELEMENT …>` parser (DTDs are the single-type-per-label
//!   special case, §3.4).
//! * [`xsd`] — an XSD-subset compiler (sequence/choice/all, occurs bounds,
//!   named/anonymous types, restriction facets, element refs).

pub mod abstract_schema;
pub mod builder;
pub mod dtd;
pub mod prune;
pub mod simple;
pub mod spans;
pub mod xsd;

pub use abstract_schema::{AbstractSchema, ComplexType, TypeDef, TypeId, UnproductiveTypes};
pub use builder::{BuildError, SchemaBuilder};
pub use dtd::{parse_dtd, DtdError};
pub use prune::prune_nonproductive;
pub use simple::{AtomicKind, BoundValue, Date, Decimal, Facets, SimpleType};
pub use spans::SchemaSpans;
pub use xsd::XsdError;

use schemacast_regex::Alphabet;

/// A revalidation session: the shared alphabet that all schemas and
/// documents of one schema-cast computation are interned into.
///
/// The paper assumes the source and target schemas share Σ; a `Session`
/// realizes that assumption.
#[derive(Debug, Default, Clone)]
pub struct Session {
    /// The shared element-label alphabet.
    pub alphabet: Alphabet,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Parses XSD text into a schema over this session's alphabet.
    pub fn parse_xsd(&mut self, text: &str) -> Result<AbstractSchema, XsdError> {
        xsd::parse_xsd(text, &mut self.alphabet)
    }

    /// Parses DTD text into a schema over this session's alphabet.
    pub fn parse_dtd(
        &mut self,
        text: &str,
        root: Option<&str>,
    ) -> Result<AbstractSchema, DtdError> {
        dtd::parse_dtd(text, root, &mut self.alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_shares_alphabet_between_schemas() {
        let mut s = Session::new();
        let xsd1 = r#"<xsd:schema xmlns:xsd="x">
            <xsd:element name="a" type="T"/>
            <xsd:complexType name="T"><xsd:sequence>
              <xsd:element name="b" type="xsd:string"/>
            </xsd:sequence></xsd:complexType></xsd:schema>"#;
        let xsd2 = r#"<xsd:schema xmlns:xsd="x">
            <xsd:element name="a" type="T"/>
            <xsd:complexType name="T"><xsd:sequence>
              <xsd:element name="b" type="xsd:string"/>
              <xsd:element name="c" type="xsd:string" minOccurs="0"/>
            </xsd:sequence></xsd:complexType></xsd:schema>"#;
        let s1 = s.parse_xsd(xsd1).expect("s1");
        let s2 = s.parse_xsd(xsd2).expect("s2");
        let a = s.alphabet.lookup("a").expect("shared label");
        assert!(s1.root_type(a).is_some());
        assert!(s2.root_type(a).is_some());
        // Same symbol resolves in both schemas.
        let b = s.alphabet.lookup("b").unwrap();
        let t1 = s1.type_def(s1.root_type(a).unwrap()).as_complex().unwrap();
        let t2 = s2.type_def(s2.root_type(a).unwrap()).as_complex().unwrap();
        assert!(t1.child_type(b).is_some());
        assert!(t2.child_type(b).is_some());
    }
}
