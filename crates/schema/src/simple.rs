//! Simple (atomic) types with facets, and value-space reasoning.
//!
//! The paper merges all simple types into one χ type "for simplicity of
//! exposition" and notes that handling the real XML Schema atomic types,
//! their restrictions, and the relationships between their value spaces "is
//! a straightforward extension". Experiment 2 *requires* that extension: the
//! source schema's `quantity` has `maxExclusive=200` and the target's has
//! `maxExclusive=100`, so the two simple types are neither subsumed nor
//! disjoint and every quantity value must be checked.
//!
//! Soundness contract (what the cast validator relies on):
//!
//! * [`SimpleType::subsumed_by`] returns `true` only if **every** lexical
//!   value accepted by `self` is accepted by `other`.
//! * [`SimpleType::disjoint_from`] returns `true` only if **no** lexical
//!   value is accepted by both.
//!
//! Both are conservative (may return `false` when the property actually
//! holds); a `false` merely means the validator checks values explicitly.

use std::cmp::Ordering;
use std::fmt;

/// Built-in atomic kinds (the subset exercised by the paper's schemas, plus
/// the obvious neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicKind {
    /// `xsd:string` — accepts any character data.
    String,
    /// `xsd:boolean` — `true`, `false`, `1`, `0`.
    Boolean,
    /// `xsd:decimal`.
    Decimal,
    /// `xsd:integer`.
    Integer,
    /// `xsd:nonNegativeInteger`.
    NonNegativeInteger,
    /// `xsd:positiveInteger`.
    PositiveInteger,
    /// `xsd:date` — `YYYY-MM-DD`.
    Date,
    /// `xsd:anySimpleType` — the top of the simple-type hierarchy.
    AnySimple,
}

impl AtomicKind {
    /// Resolves a built-in XSD type name (local part, prefix stripped).
    pub fn from_xsd_name(name: &str) -> Option<AtomicKind> {
        Some(match name {
            "string" | "normalizedString" | "token" | "NMTOKEN" | "Name" | "NCName" | "ID"
            | "IDREF" | "anyURI" | "language" => AtomicKind::String,
            "boolean" => AtomicKind::Boolean,
            "decimal" | "float" | "double" => AtomicKind::Decimal,
            "integer" | "long" | "int" | "short" | "byte" => AtomicKind::Integer,
            "nonNegativeInteger" | "unsignedLong" | "unsignedInt" | "unsignedShort"
            | "unsignedByte" => AtomicKind::NonNegativeInteger,
            "positiveInteger" => AtomicKind::PositiveInteger,
            "date" => AtomicKind::Date,
            "anySimpleType" | "anyType" => AtomicKind::AnySimple,
            _ => return None,
        })
    }

    /// Whether the kind is in the decimal family.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            AtomicKind::Decimal
                | AtomicKind::Integer
                | AtomicKind::NonNegativeInteger
                | AtomicKind::PositiveInteger
        )
    }

    /// Whether every lexical value of `self` is a lexical value of `other`
    /// (facet-free kind-level subsumption).
    pub fn value_subset_of(self, other: AtomicKind) -> bool {
        use AtomicKind::*;
        if self == other || matches!(other, String | AnySimple) {
            return true;
        }
        matches!(
            (self, other),
            (PositiveInteger, NonNegativeInteger)
                | (PositiveInteger, Integer)
                | (PositiveInteger, Decimal)
                | (NonNegativeInteger, Integer)
                | (NonNegativeInteger, Decimal)
                | (Integer, Decimal)
        )
    }

    /// Whether the *lexical* spaces of the two kinds are provably disjoint
    /// (no string parses as both).
    pub fn lexically_disjoint(self, other: AtomicKind) -> bool {
        use AtomicKind::*;
        if self == other {
            return false;
        }
        match (self, other) {
            // String / AnySimple overlap everything.
            (String | AnySimple, _) | (_, String | AnySimple) => false,
            // The numeric family overlaps itself.
            (a, b) if a.is_numeric() && b.is_numeric() => false,
            // "1"/"0" are both boolean and numeric.
            (Boolean, b) if b.is_numeric() => false,
            (a, Boolean) if a.is_numeric() => false,
            // Dates never parse as numbers or booleans.
            (Date, _) | (_, Date) => true,
            _ => false,
        }
    }
}

/// An exact decimal: `units · 10^{-scale}`.
///
/// Scale and magnitude are bounded at parse time (≤ 18 fraction digits,
/// ≤ 18 integer digits) so comparisons never overflow `i128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decimal {
    units: i128,
    scale: u8,
}

impl Decimal {
    /// Parses an XSD decimal (`-12.50`, `+3`, `.5`, `7.`).
    pub fn parse(text: &str) -> Option<Decimal> {
        let t = text.trim();
        let (neg, rest) = match t.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return None;
        }
        if int_part.len() > 18 || frac_part.len() > 18 {
            return None;
        }
        let frac_trimmed = frac_part.trim_end_matches('0');
        let mut units: i128 = 0;
        for b in int_part.bytes().chain(frac_trimmed.bytes()) {
            units = units * 10 + i128::from(b - b'0');
        }
        if neg {
            units = -units;
        }
        Some(Decimal {
            units,
            scale: frac_trimmed.len() as u8,
        })
    }

    /// Parses an XSD integer (no fractional part allowed).
    pub fn parse_integer(text: &str) -> Option<Decimal> {
        let d = Decimal::parse(text)?;
        if d.scale == 0 {
            Some(d)
        } else {
            None
        }
    }

    /// A decimal from an `i64`.
    pub fn from_i64(v: i64) -> Decimal {
        Decimal {
            units: v as i128,
            scale: 0,
        }
    }

    /// Whether the value is a whole number.
    pub fn is_integer(&self) -> bool {
        self.scale == 0
    }

    /// The constant zero.
    pub fn zero() -> Decimal {
        Decimal::from_i64(0)
    }

    /// The constant one.
    pub fn one() -> Decimal {
        Decimal::from_i64(1)
    }

    /// The value one unit greater (`self + 1`).
    pub fn succ_unit(&self) -> Decimal {
        Decimal {
            units: self.units + 10i128.pow(u32::from(self.scale)),
            scale: self.scale,
        }
    }

    /// The value one unit smaller (`self - 1`).
    pub fn pred_unit(&self) -> Decimal {
        Decimal {
            units: self.units - 10i128.pow(u32::from(self.scale)),
            scale: self.scale,
        }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        // Bring both to the larger scale; bounded digits keep this in i128.
        let (a, b) = (self, other);
        let max_scale = a.scale.max(b.scale);
        let ax = a.units * 10i128.pow(u32::from(max_scale - a.scale));
        let bx = b.units * 10i128.pow(u32::from(max_scale - b.scale));
        ax.cmp(&bx)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.units);
        }
        let neg = self.units < 0;
        let abs = self.units.unsigned_abs().to_string();
        let scale = self.scale as usize;
        let (int, frac) = if abs.len() > scale {
            (
                abs[..abs.len() - scale].to_string(),
                abs[abs.len() - scale..].to_string(),
            )
        } else {
            ("0".to_string(), format!("{abs:0>scale$}"))
        };
        write!(f, "{}{}.{}", if neg { "-" } else { "" }, int, frac)
    }
}

/// A calendar date (proleptic Gregorian, enough for `xsd:date` lexicals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    /// Year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day, 1–31 (validated against the month).
    pub day: u8,
}

impl Date {
    /// Parses `YYYY-MM-DD` (optionally negative year).
    pub fn parse(text: &str) -> Option<Date> {
        let t = text.trim();
        let (neg, rest) = match t.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, t),
        };
        let mut parts = rest.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u8 = parts.next()?.parse().ok()?;
        let d: u8 = parts.next()?.parse().ok()?;
        let year = if neg { -y } else { y };
        if !(1..=12).contains(&m) {
            return None;
        }
        let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
        let max_day = match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if leap => 29,
            2 => 28,
            _ => unreachable!(),
        };
        if d == 0 || d > max_day {
            return None;
        }
        Some(Date {
            year,
            month: m,
            day: d,
        })
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A parsed facet bound value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundValue {
    /// A numeric bound (decimal family).
    Num(Decimal),
    /// A date bound.
    Date(Date),
}

/// Restriction facets. Range facets are parsed against the base kind when
/// the [`SimpleType`] is constructed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Facets {
    /// `xsd:minInclusive`.
    pub min_inclusive: Option<BoundValue>,
    /// `xsd:maxInclusive`.
    pub max_inclusive: Option<BoundValue>,
    /// `xsd:minExclusive`.
    pub min_exclusive: Option<BoundValue>,
    /// `xsd:maxExclusive`.
    pub max_exclusive: Option<BoundValue>,
    /// `xsd:enumeration` values (lexical forms).
    pub enumeration: Option<Vec<String>>,
    /// `xsd:length` (string kinds, in characters).
    pub length: Option<usize>,
    /// `xsd:minLength`.
    pub min_length: Option<usize>,
    /// `xsd:maxLength`.
    pub max_length: Option<usize>,
}

impl Facets {
    /// Whether no facet is set.
    pub fn is_unconstrained(&self) -> bool {
        self == &Facets::default()
    }
}

/// An interval over decimals with half-open/closed ends, used for
/// subsumption/disjointness reasoning over numeric kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: Option<(Decimal, bool)>, // (bound, inclusive)
    hi: Option<(Decimal, bool)>,
}

impl Interval {
    fn unbounded() -> Interval {
        Interval { lo: None, hi: None }
    }

    fn contains_interval(&self, inner: &Interval) -> bool {
        let lo_ok = match (&self.lo, &inner.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, ai)), Some((b, bi))) => match a.cmp(b) {
                Ordering::Less => true,
                Ordering::Equal => *ai || !*bi,
                Ordering::Greater => false,
            },
        };
        let hi_ok = match (&self.hi, &inner.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, ai)), Some((b, bi))) => match a.cmp(b) {
                Ordering::Greater => true,
                Ordering::Equal => *ai || !*bi,
                Ordering::Less => false,
            },
        };
        lo_ok && hi_ok
    }

    fn disjoint_with(&self, other: &Interval) -> bool {
        // self entirely below other, or other entirely below self.
        let below = |hi: &Option<(Decimal, bool)>, lo: &Option<(Decimal, bool)>| match (hi, lo) {
            (Some((h, hi_inc)), Some((l, lo_inc))) => match h.cmp(l) {
                Ordering::Less => true,
                Ordering::Equal => !(*hi_inc && *lo_inc),
                Ordering::Greater => false,
            },
            _ => false,
        };
        below(&self.hi, &other.lo) || below(&other.hi, &self.lo)
    }

    fn contains_value(&self, v: &Decimal) -> bool {
        let lo_ok = match &self.lo {
            None => true,
            Some((b, inc)) => match v.cmp(b) {
                Ordering::Greater => true,
                Ordering::Equal => *inc,
                Ordering::Less => false,
            },
        };
        let hi_ok = match &self.hi {
            None => true,
            Some((b, inc)) => match v.cmp(b) {
                Ordering::Less => true,
                Ordering::Equal => *inc,
                Ordering::Greater => false,
            },
        };
        lo_ok && hi_ok
    }

    fn is_empty_for_integers(&self) -> bool {
        // Conservative emptiness: only detect when bounds pin an empty set
        // of integers or an empty real interval.
        if let (Some((l, li)), Some((h, hi))) = (&self.lo, &self.hi) {
            match l.cmp(h) {
                Ordering::Greater => return true,
                Ordering::Equal => return !(*li && *hi),
                Ordering::Less => {}
            }
        }
        false
    }
}

/// A simple type: an atomic kind plus restriction facets.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleType {
    /// Base atomic kind.
    pub kind: AtomicKind,
    /// Facets (already parsed against the kind).
    pub facets: Facets,
}

impl SimpleType {
    /// An unrestricted type of the given kind.
    pub fn of(kind: AtomicKind) -> SimpleType {
        SimpleType {
            kind,
            facets: Facets::default(),
        }
    }

    /// Unrestricted `xsd:string`.
    pub fn string() -> SimpleType {
        SimpleType::of(AtomicKind::String)
    }

    /// The effective numeric interval: facets intersected with the kind's
    /// intrinsic bounds. `None` for non-numeric kinds.
    fn numeric_interval(&self) -> Option<Interval> {
        if !self.kind.is_numeric() {
            return None;
        }
        let mut iv = Interval::unbounded();
        match self.kind {
            AtomicKind::NonNegativeInteger => iv.lo = Some((Decimal::zero(), true)),
            AtomicKind::PositiveInteger => iv.lo = Some((Decimal::one(), true)),
            _ => {}
        }
        let tighten_lo = |iv: &mut Interval, b: Decimal, inc: bool| {
            let better = match &iv.lo {
                None => true,
                Some((cur, cur_inc)) => match b.cmp(cur) {
                    Ordering::Greater => true,
                    Ordering::Equal => *cur_inc && !inc,
                    Ordering::Less => false,
                },
            };
            if better {
                iv.lo = Some((b, inc));
            }
        };
        let tighten_hi = |iv: &mut Interval, b: Decimal, inc: bool| {
            let better = match &iv.hi {
                None => true,
                Some((cur, cur_inc)) => match b.cmp(cur) {
                    Ordering::Less => true,
                    Ordering::Equal => *cur_inc && !inc,
                    Ordering::Greater => false,
                },
            };
            if better {
                iv.hi = Some((b, inc));
            }
        };
        if let Some(BoundValue::Num(b)) = self.facets.min_inclusive {
            tighten_lo(&mut iv, b, true);
        }
        if let Some(BoundValue::Num(b)) = self.facets.min_exclusive {
            tighten_lo(&mut iv, b, false);
        }
        if let Some(BoundValue::Num(b)) = self.facets.max_inclusive {
            tighten_hi(&mut iv, b, true);
        }
        if let Some(BoundValue::Num(b)) = self.facets.max_exclusive {
            tighten_hi(&mut iv, b, false);
        }
        Some(iv)
    }

    /// Validates a lexical value against kind and facets.
    pub fn validate(&self, text: &str) -> bool {
        if let Some(enumeration) = &self.facets.enumeration {
            if !self.enum_match(enumeration, text) {
                return false;
            }
        }
        match self.kind {
            AtomicKind::String | AtomicKind::AnySimple => {
                let chars = text.chars().count();
                if let Some(l) = self.facets.length {
                    if chars != l {
                        return false;
                    }
                }
                if let Some(l) = self.facets.min_length {
                    if chars < l {
                        return false;
                    }
                }
                if let Some(l) = self.facets.max_length {
                    if chars > l {
                        return false;
                    }
                }
                true
            }
            AtomicKind::Boolean => matches!(text.trim(), "true" | "false" | "1" | "0"),
            AtomicKind::Decimal
            | AtomicKind::Integer
            | AtomicKind::NonNegativeInteger
            | AtomicKind::PositiveInteger => {
                let Some(v) = Decimal::parse(text) else {
                    return false;
                };
                if self.kind != AtomicKind::Decimal && !v.is_integer() {
                    return false;
                }
                self.numeric_interval()
                    .expect("numeric kind")
                    .contains_value(&v)
            }
            AtomicKind::Date => {
                let Some(d) = Date::parse(text) else {
                    return false;
                };
                let in_lo = match (self.facets.min_inclusive, self.facets.min_exclusive) {
                    (Some(BoundValue::Date(b)), _) => d >= b,
                    (_, Some(BoundValue::Date(b))) => d > b,
                    _ => true,
                };
                let in_hi = match (self.facets.max_inclusive, self.facets.max_exclusive) {
                    (Some(BoundValue::Date(b)), _) => d <= b,
                    (_, Some(BoundValue::Date(b))) => d < b,
                    _ => true,
                };
                in_lo && in_hi
            }
        }
    }

    fn enum_match(&self, enumeration: &[String], text: &str) -> bool {
        if self.kind.is_numeric() {
            let Some(v) = Decimal::parse(text) else {
                return false;
            };
            enumeration
                .iter()
                .any(|e| Decimal::parse(e).is_some_and(|ev| ev == v))
        } else {
            enumeration.iter().any(|e| e == text)
        }
    }

    /// Whether `valid(self) = ∅` (detected conservatively).
    pub fn is_empty(&self) -> bool {
        if let Some(e) = &self.facets.enumeration {
            if e.iter().all(|v| {
                let mut probe = self.clone();
                probe.facets.enumeration = None;
                !probe.validate(v)
            }) {
                return true;
            }
        }
        if let Some(iv) = self.numeric_interval() {
            if iv.is_empty_for_integers() {
                return true;
            }
        }
        if let (Some(mn), Some(mx)) = (self.facets.min_length, self.facets.max_length) {
            if mn > mx {
                return true;
            }
        }
        false
    }

    /// A deterministic example of a valid lexical value, if one can be
    /// found by probing — used by document repair to synthesize required
    /// simple content. Returns `None` for (detectably) empty value spaces
    /// or exotic facet combinations the probe set misses.
    pub fn example_value(&self) -> Option<String> {
        if let Some(e) = &self.facets.enumeration {
            return e.iter().find(|v| self.validate(v)).cloned();
        }
        let candidates: &[&str] = match self.kind {
            AtomicKind::String | AtomicKind::AnySimple => {
                &["value", "", "x", "xxxxx", "xxxxxxxxxx"]
            }
            AtomicKind::Boolean => &["true", "false"],
            AtomicKind::Date => &["2004-03-14", "1970-01-01", "2099-12-31"],
            _ => &[
                "1", "0", "2", "5", "10", "42", "50", "99", "100", "-1", "1000", "0.5",
            ],
        };
        candidates
            .iter()
            .find(|v| self.validate(v))
            .map(|v| (*v).to_owned())
            .or_else(|| {
                // Numeric/date ranges the fixed probes miss: derive
                // candidates from every facet bound (the bound itself, and
                // one unit inside it for exclusive bounds).
                let mut candidates: Vec<String> = Vec::new();
                for facet in [
                    self.facets.min_inclusive,
                    self.facets.max_inclusive,
                    self.facets.min_exclusive,
                    self.facets.max_exclusive,
                ]
                .into_iter()
                .flatten()
                {
                    match facet {
                        BoundValue::Num(b) => {
                            candidates.push(b.to_string());
                            candidates.push(b.succ_unit().to_string());
                            candidates.push(b.pred_unit().to_string());
                        }
                        BoundValue::Date(d) => candidates.push(d.to_string()),
                    }
                }
                candidates.into_iter().find(|v| self.validate(v))
            })
    }

    /// Sound subsumption: `true` ⇒ every value of `self` is a value of
    /// `other` (condition i of Definition 4, refined with value spaces).
    pub fn subsumed_by(&self, other: &SimpleType) -> bool {
        if self.is_empty() {
            return true;
        }
        // Target unconstrained string/anySimple accepts everything.
        if matches!(other.kind, AtomicKind::String | AtomicKind::AnySimple)
            && other.facets.is_unconstrained()
        {
            return true;
        }
        // Enumerated source: check each enumerated (and self-valid) value.
        if let Some(e) = &self.facets.enumeration {
            return e
                .iter()
                .filter(|v| self.validate(v))
                .all(|v| other.validate(v));
        }
        if !self.kind.value_subset_of(other.kind) {
            return false;
        }
        if other.facets.enumeration.is_some() {
            return false; // non-enumerated source can't fit a finite target
        }
        match (self.numeric_interval(), other.numeric_interval()) {
            (Some(a), Some(b)) => b.contains_interval(&a),
            _ => {
                // Same-family non-numeric kinds: require target facets no
                // tighter than source's (conservative: target unconstrained,
                // or string-length windows nest).
                if other.facets.is_unconstrained() {
                    return true;
                }
                if matches!(self.kind, AtomicKind::String | AtomicKind::AnySimple) {
                    let src_min = self.facets.length.or(self.facets.min_length).unwrap_or(0);
                    let src_max = self.facets.length.or(self.facets.max_length);
                    let dst_min = other.facets.length.or(other.facets.min_length).unwrap_or(0);
                    let dst_max = other.facets.length.or(other.facets.max_length);
                    let max_ok = match (src_max, dst_max) {
                        (_, None) => true,
                        (None, Some(_)) => false,
                        (Some(s), Some(d)) => s <= d,
                    };
                    return dst_min <= src_min
                        && max_ok
                        && other.facets.enumeration.is_none()
                        && other.facets.min_inclusive.is_none()
                        && other.facets.max_inclusive.is_none()
                        && other.facets.min_exclusive.is_none()
                        && other.facets.max_exclusive.is_none();
                }
                false
            }
        }
    }

    /// Sound disjointness: `true` ⇒ no lexical value is accepted by both.
    pub fn disjoint_from(&self, other: &SimpleType) -> bool {
        if self.is_empty() || other.is_empty() {
            return true;
        }
        // Enumerations: disjoint iff no shared accepted value.
        if let Some(e) = &self.facets.enumeration {
            return e
                .iter()
                .filter(|v| self.validate(v))
                .all(|v| !other.validate(v));
        }
        if let Some(e) = &other.facets.enumeration {
            return e
                .iter()
                .filter(|v| other.validate(v))
                .all(|v| !self.validate(v));
        }
        if self.kind.lexically_disjoint(other.kind) {
            return true;
        }
        // Numeric family: disjoint intervals.
        if let (Some(a), Some(b)) = (self.numeric_interval(), other.numeric_interval()) {
            return a.disjoint_with(&b);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(kind: AtomicKind, max_exclusive: i64) -> SimpleType {
        SimpleType {
            kind,
            facets: Facets {
                max_exclusive: Some(BoundValue::Num(Decimal::from_i64(max_exclusive))),
                ..Default::default()
            },
        }
    }

    #[test]
    fn decimal_parsing_and_ordering() {
        let a = Decimal::parse("12.50").unwrap();
        let b = Decimal::parse("12.5").unwrap();
        assert_eq!(a, b);
        assert!(Decimal::parse("-3").unwrap() < Decimal::zero());
        assert!(Decimal::parse("0.999").unwrap() < Decimal::one());
        assert!(Decimal::parse("100").unwrap() > Decimal::parse("99.99").unwrap());
        assert!(Decimal::parse("abc").is_none());
        assert!(Decimal::parse("").is_none());
        assert!(Decimal::parse("1.2.3").is_none());
        assert!(Decimal::parse_integer("5").is_some());
        assert!(Decimal::parse_integer("5.1").is_none());
        assert_eq!(Decimal::parse("12.50").unwrap().to_string(), "12.5");
        assert_eq!(Decimal::parse("-0.05").unwrap().to_string(), "-0.05");
    }

    #[test]
    fn date_parsing() {
        assert!(Date::parse("2004-03-14").is_some());
        assert!(Date::parse("2004-02-29").is_some()); // leap year
        assert!(Date::parse("2003-02-29").is_none());
        assert!(Date::parse("2004-13-01").is_none());
        assert!(Date::parse("2004-04-31").is_none());
        assert!(Date::parse("2004-03-14").unwrap() < Date::parse("2004-03-15").unwrap());
    }

    #[test]
    fn experiment2_quantity_types() {
        // Source: positiveInteger maxExclusive 200; target: maxExclusive 100.
        let source = num(AtomicKind::PositiveInteger, 200);
        let target = num(AtomicKind::PositiveInteger, 100);
        // Neither subsumed (199 valid in source, not target)…
        assert!(!source.subsumed_by(&target));
        // …nor disjoint (50 valid in both)…
        assert!(!source.disjoint_from(&target));
        // …and the reverse direction *is* subsumed.
        assert!(target.subsumed_by(&source));
        // Value checks behave per facets:
        assert!(target.validate("99"));
        assert!(!target.validate("100"));
        assert!(!target.validate("0"));
        assert!(!target.validate("12.5"));
        assert!(source.validate("150"));
    }

    #[test]
    fn kind_hierarchy_subsumption() {
        let pos = SimpleType::of(AtomicKind::PositiveInteger);
        let int = SimpleType::of(AtomicKind::Integer);
        let dec = SimpleType::of(AtomicKind::Decimal);
        let s = SimpleType::string();
        assert!(pos.subsumed_by(&int));
        assert!(int.subsumed_by(&dec));
        assert!(pos.subsumed_by(&dec));
        assert!(dec.subsumed_by(&s)); // every decimal lexical is a string
        assert!(!int.subsumed_by(&pos));
        assert!(!dec.subsumed_by(&int));
        assert!(!s.subsumed_by(&dec));
    }

    #[test]
    fn disjointness_cases() {
        let date = SimpleType::of(AtomicKind::Date);
        let int = SimpleType::of(AtomicKind::Integer);
        let b = SimpleType::of(AtomicKind::Boolean);
        let s = SimpleType::string();
        assert!(date.disjoint_from(&int));
        assert!(!b.disjoint_from(&int)); // "1" is both
        assert!(!s.disjoint_from(&int));
        // Non-overlapping numeric intervals:
        let lo = SimpleType {
            kind: AtomicKind::Integer,
            facets: Facets {
                max_inclusive: Some(BoundValue::Num(Decimal::from_i64(10))),
                ..Default::default()
            },
        };
        let hi = SimpleType {
            kind: AtomicKind::Integer,
            facets: Facets {
                min_exclusive: Some(BoundValue::Num(Decimal::from_i64(10))),
                ..Default::default()
            },
        };
        assert!(lo.disjoint_from(&hi));
        assert!(!lo.disjoint_from(&int));
    }

    #[test]
    fn enumeration_facets() {
        let color = SimpleType {
            kind: AtomicKind::String,
            facets: Facets {
                enumeration: Some(vec!["red".into(), "green".into()]),
                ..Default::default()
            },
        };
        let wide = SimpleType {
            kind: AtomicKind::String,
            facets: Facets {
                enumeration: Some(vec!["red".into(), "green".into(), "blue".into()]),
                ..Default::default()
            },
        };
        assert!(color.validate("red"));
        assert!(!color.validate("blue"));
        assert!(color.subsumed_by(&wide));
        assert!(!wide.subsumed_by(&color));
        assert!(color.subsumed_by(&SimpleType::string()));
        let other = SimpleType {
            kind: AtomicKind::String,
            facets: Facets {
                enumeration: Some(vec!["cyan".into()]),
                ..Default::default()
            },
        };
        assert!(color.disjoint_from(&other));
        // Numeric enumeration compares by value.
        let qty = SimpleType {
            kind: AtomicKind::Integer,
            facets: Facets {
                enumeration: Some(vec!["10".into(), "20".into()]),
                ..Default::default()
            },
        };
        assert!(qty.validate("10"));
        assert!(qty.validate("010")); // same value
        assert!(!qty.validate("15"));
    }

    #[test]
    fn string_length_facets() {
        let zip = SimpleType {
            kind: AtomicKind::String,
            facets: Facets {
                length: Some(5),
                ..Default::default()
            },
        };
        assert!(zip.validate("90210"));
        assert!(!zip.validate("9021"));
        let short = SimpleType {
            kind: AtomicKind::String,
            facets: Facets {
                max_length: Some(10),
                ..Default::default()
            },
        };
        assert!(zip.subsumed_by(&short));
        assert!(!short.subsumed_by(&zip));
    }

    #[test]
    fn empty_types() {
        let empty = SimpleType {
            kind: AtomicKind::Integer,
            facets: Facets {
                min_inclusive: Some(BoundValue::Num(Decimal::from_i64(10))),
                max_inclusive: Some(BoundValue::Num(Decimal::from_i64(5))),
                ..Default::default()
            },
        };
        assert!(empty.is_empty());
        assert!(empty.subsumed_by(&SimpleType::of(AtomicKind::Date)));
        assert!(empty.disjoint_from(&SimpleType::string()));
        assert!(!empty.validate("7"));
    }

    #[test]
    fn example_values_are_valid() {
        let types = vec![
            SimpleType::string(),
            SimpleType::of(AtomicKind::Boolean),
            SimpleType::of(AtomicKind::Date),
            num(AtomicKind::PositiveInteger, 100),
            SimpleType {
                kind: AtomicKind::Integer,
                facets: Facets {
                    min_inclusive: Some(BoundValue::Num(Decimal::from_i64(5000))),
                    ..Default::default()
                },
            },
            SimpleType {
                kind: AtomicKind::String,
                facets: Facets {
                    enumeration: Some(vec!["red".into(), "green".into()]),
                    ..Default::default()
                },
            },
            SimpleType {
                kind: AtomicKind::String,
                facets: Facets {
                    length: Some(5),
                    ..Default::default()
                },
            },
        ];
        for t in &types {
            let v = t
                .example_value()
                .unwrap_or_else(|| panic!("no example for {t:?}"));
            assert!(t.validate(&v), "{t:?} rejects its own example {v:?}");
        }
        // Empty value space yields no example.
        let empty = SimpleType {
            kind: AtomicKind::Integer,
            facets: Facets {
                min_inclusive: Some(BoundValue::Num(Decimal::from_i64(10))),
                max_inclusive: Some(BoundValue::Num(Decimal::from_i64(5))),
                ..Default::default()
            },
        };
        assert!(empty.example_value().is_none());
    }

    #[test]
    fn boolean_validation() {
        let b = SimpleType::of(AtomicKind::Boolean);
        for ok in ["true", "false", "1", "0"] {
            assert!(b.validate(ok));
        }
        assert!(!b.validate("yes"));
        assert!(b.subsumed_by(&SimpleType::string()));
    }

    #[test]
    fn subsumption_is_sound_on_probes() {
        // For a grid of types, whenever subsumed_by returns true, check a
        // battery of lexical probes never violates the inclusion.
        let types = vec![
            SimpleType::string(),
            SimpleType::of(AtomicKind::Integer),
            SimpleType::of(AtomicKind::PositiveInteger),
            SimpleType::of(AtomicKind::Decimal),
            SimpleType::of(AtomicKind::Boolean),
            SimpleType::of(AtomicKind::Date),
            num(AtomicKind::PositiveInteger, 100),
            num(AtomicKind::PositiveInteger, 200),
            num(AtomicKind::Integer, 0),
        ];
        let probes = [
            "",
            "0",
            "1",
            "-1",
            "42",
            "99",
            "100",
            "150",
            "199",
            "200",
            "12.5",
            "-3.25",
            "true",
            "false",
            "hello",
            "2004-02-29",
            "0099",
        ];
        for a in &types {
            for b in &types {
                if a.subsumed_by(b) {
                    for p in probes {
                        assert!(
                            !a.validate(p) || b.validate(p),
                            "{a:?} ≤ {b:?} violated by {p:?}"
                        );
                    }
                }
                if a.disjoint_from(b) {
                    for p in probes {
                        assert!(
                            !(a.validate(p) && b.validate(p)),
                            "{a:?} ⊘ {b:?} violated by {p:?}"
                        );
                    }
                }
            }
        }
    }
}
