//! Abstract XML Schemas — the paper's `(Σ, 𝒯, ρ, ℛ)` formalism.
//!
//! A schema is a set of named types. Each type is either *simple* (an
//! atomic kind with facets — the paper's χ types) or *complex*: a content
//! model `regexp_τ` over Σ (kept both as a [`Regex`] and as a compiled
//! [`Dfa`]) plus the `types_τ : Σ_τ → 𝒯` child-type assignment. `ℛ` maps
//! permissible root labels to their types.
//!
//! The module also implements the paper's productivity analysis (§3) and a
//! reference executable of Definition 1 ([`AbstractSchema::accepts_tree`])
//! used as the ground truth oracle by validator property tests.

use crate::simple::SimpleType;
use schemacast_automata::{nonempty_restricted, BitSet, Dfa, HotDfa};
use schemacast_regex::{Alphabet, Regex, Sym};
use schemacast_tree::{Doc, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a type within an [`AbstractSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Dense index of the type.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A complex type: content model + child-type assignment.
#[derive(Debug, Clone)]
pub struct ComplexType {
    /// The content model `regexp_τ`.
    pub regex: Regex,
    /// The compiled, complete DFA of `regexp_τ`.
    pub dfa: Dfa,
    /// `types_τ`: the type assigned to each child label used in the model.
    pub child_types: HashMap<Sym, TypeId>,
    /// Whether `regexp_τ` is one-unambiguous (true for all well-formed DTD
    /// and XSD content models; the DFA is correct either way).
    pub deterministic: bool,
    /// Branchless hot table of `dfa` (derived; see [`HotDfa`]). Used by
    /// the streaming validator's inner loop.
    pub hot: HotDfa,
    /// Dense mirror of `child_types`, indexed by `Sym::index()` with
    /// `u32::MAX` marking absent labels — an O(1) array load where the
    /// map would hash. Derived; kept in sync by [`ComplexType::new`].
    pub child_index: Vec<u32>,
}

impl ComplexType {
    /// Assembles a complex type, deriving the hot transition table and the
    /// dense child-type index from the authoritative fields.
    pub fn new(
        regex: Regex,
        dfa: Dfa,
        child_types: HashMap<Sym, TypeId>,
        deterministic: bool,
    ) -> ComplexType {
        let hot = HotDfa::from_dfa(&dfa);
        let width = child_types
            .keys()
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0)
            .max(dfa.alphabet_len());
        let mut child_index = vec![u32::MAX; width];
        for (&label, &t) in &child_types {
            child_index[label.index()] = t.0;
        }
        ComplexType {
            regex,
            dfa,
            child_types,
            deterministic,
            hot,
            child_index,
        }
    }

    /// The child type for label `σ` (`types_τ(σ)`).
    pub fn child_type(&self, label: Sym) -> Option<TypeId> {
        self.child_types.get(&label).copied()
    }

    /// [`child_type`](Self::child_type) through the dense index: one array
    /// load, no hashing. Labels past the index (interned after this type
    /// was built) are absent by construction.
    #[inline]
    pub fn child_type_dense(&self, label: Sym) -> Option<TypeId> {
        match self.child_index.get(label.index()) {
            Some(&t) if t != u32::MAX => Some(TypeId(t)),
            _ => None,
        }
    }
}

/// A type declaration: simple or complex.
#[derive(Debug, Clone)]
pub enum TypeDef {
    /// A simple type (the χ leaf types).
    Simple(SimpleType),
    /// A complex type.
    Complex(ComplexType),
}

impl TypeDef {
    /// Whether this is a simple type.
    pub fn is_simple(&self) -> bool {
        matches!(self, TypeDef::Simple(_))
    }

    /// The complex payload, if complex.
    pub fn as_complex(&self) -> Option<&ComplexType> {
        match self {
            TypeDef::Complex(c) => Some(c),
            TypeDef::Simple(_) => None,
        }
    }

    /// The simple payload, if simple.
    pub fn as_simple(&self) -> Option<&SimpleType> {
        match self {
            TypeDef::Simple(s) => Some(s),
            TypeDef::Complex(_) => None,
        }
    }
}

/// An abstract XML Schema `(Σ, 𝒯, ρ, ℛ)` over a shared [`Alphabet`].
#[derive(Debug, Clone)]
pub struct AbstractSchema {
    types: Vec<TypeDef>,
    names: Vec<String>,
    roots: HashMap<Sym, TypeId>,
}

impl AbstractSchema {
    /// Assembles a schema from parts (used by the builder and front-ends).
    pub(crate) fn from_parts(
        types: Vec<TypeDef>,
        names: Vec<String>,
        roots: HashMap<Sym, TypeId>,
    ) -> AbstractSchema {
        debug_assert_eq!(types.len(), names.len());
        AbstractSchema {
            types,
            names,
            roots,
        }
    }

    /// Number of declared types (|𝒯|).
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// The declaration of `t`.
    pub fn type_def(&self, t: TypeId) -> &TypeDef {
        &self.types[t.index()]
    }

    /// The (diagnostic) name of `t`.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.names[t.index()]
    }

    /// Looks up a type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| TypeId(i as u32))
    }

    /// `ℛ(σ)`: the type assigned to a root with label `σ`.
    pub fn root_type(&self, label: Sym) -> Option<TypeId> {
        self.roots.get(&label).copied()
    }

    /// All `(label, type)` root declarations.
    pub fn roots(&self) -> impl Iterator<Item = (Sym, TypeId)> + '_ {
        self.roots.iter().map(|(&s, &t)| (s, t))
    }

    /// Iterates over all type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// Whether this schema is DTD-style: every label is assigned the same
    /// type wherever it appears (including as a root). DTD-specific
    /// optimizations (§3.4) apply only then.
    pub fn is_dtd_style(&self) -> bool {
        let mut assigned: HashMap<Sym, TypeId> = HashMap::new();
        let mut consistent = |label: Sym, t: TypeId| -> bool {
            match assigned.insert(label, t) {
                Some(prev) => prev == t,
                None => true,
            }
        };
        for def in &self.types {
            if let TypeDef::Complex(c) = def {
                for (&label, &t) in &c.child_types {
                    if !consistent(label, t) {
                        return false;
                    }
                }
            }
        }
        for (&label, &t) in &self.roots {
            if !consistent(label, t) {
                return false;
            }
        }
        true
    }

    /// The unique type of a label in a DTD-style schema (searching roots and
    /// all child-type maps).
    pub fn label_type(&self, label: Sym) -> Option<TypeId> {
        if let Some(&t) = self.roots.get(&label) {
            return Some(t);
        }
        for def in &self.types {
            if let TypeDef::Complex(c) = def {
                if let Some(&t) = c.child_types.get(&label) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// The paper's productivity marking (§3): `productive[t]` iff
    /// `valid(t) ≠ ∅`.
    ///
    /// Simple types are productive unless their value space is empty;
    /// a complex type is productive iff its content model accepts a string
    /// over its productive child labels.
    pub fn productive(&self, alphabet: &Alphabet) -> Vec<bool> {
        let mut productive = vec![false; self.types.len()];
        for (i, def) in self.types.iter().enumerate() {
            if let TypeDef::Simple(s) = def {
                productive[i] = !s.is_empty();
            }
        }
        loop {
            let mut changed = false;
            for (i, def) in self.types.iter().enumerate() {
                if productive[i] {
                    continue;
                }
                let TypeDef::Complex(c) = def else { continue };
                let mut allowed = BitSet::new(alphabet.len().max(c.dfa.alphabet_len()));
                for (&label, &t) in &c.child_types {
                    if productive[t.index()] && label.index() < allowed.capacity() {
                        allowed.insert(label.index());
                    }
                }
                if nonempty_restricted(&c.dfa, &allowed) {
                    productive[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        productive
    }

    /// Checks that every declared type is productive (the paper assumes
    /// this of its input schemas).
    ///
    /// # Errors
    /// Returns the list of non-productive type ids.
    pub fn assert_productive(&self, alphabet: &Alphabet) -> Result<(), UnproductiveTypes> {
        let p = self.productive(alphabet);
        let bad: Vec<TypeId> = self.type_ids().filter(|t| !p[t.index()]).collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(UnproductiveTypes { types: bad })
        }
    }

    /// Reference executable of Definition 1: whether the subtree rooted at
    /// `node` is in `valid(t)`. Used as the oracle in validator tests;
    /// the production validators live in `schemacast-core`.
    pub fn accepts_tree(&self, doc: &Doc, node: NodeId, t: TypeId) -> bool {
        match &self.types[t.index()] {
            TypeDef::Simple(s) => {
                if doc.label(node).is_none() {
                    return false; // χ node cannot itself have a simple type
                }
                let children: Vec<NodeId> = doc.validation_children(node).collect();
                match children.as_slice() {
                    [] => s.validate(""),
                    [only] => match doc.kind(*only) {
                        NodeKind::Text(text) => s.validate(text),
                        NodeKind::Element(_) => false,
                    },
                    _ => false,
                }
            }
            TypeDef::Complex(c) => {
                let mut labels: Vec<Sym> = Vec::new();
                for child in doc.validation_children(node) {
                    match doc.label(child) {
                        Some(l) => labels.push(l),
                        None => return false, // character data in element content
                    }
                }
                if !c.dfa.accepts(&labels) {
                    return false;
                }
                doc.validation_children(node)
                    .zip(labels.iter())
                    .all(|(child, &label)| match c.child_type(label) {
                        Some(ct) => self.accepts_tree(doc, child, ct),
                        None => false,
                    })
            }
        }
    }

    /// Whether `doc` is valid with respect to this schema: `ℛ(λ(root))` is
    /// defined and the tree is in its `valid` set (reference semantics).
    pub fn accepts_document(&self, doc: &Doc) -> bool {
        let Some(label) = doc.label(doc.root()) else {
            return false;
        };
        match self.root_type(label) {
            Some(t) => self.accepts_tree(doc, doc.root(), t),
            None => false,
        }
    }
}

/// Error listing the non-productive types of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnproductiveTypes {
    /// The offending types.
    pub types: Vec<TypeId>,
}

impl fmt::Display for UnproductiveTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} type(s) are non-productive (valid(τ) = ∅)",
            self.types.len()
        )
    }
}

impl std::error::Error for UnproductiveTypes {}
