//! Conversion of schemas with non-productive types into equivalent schemas
//! with only productive types — the procedure sketched at the end of §3's
//! productivity discussion: "modify `regexp_τ` for each productive `τ` so
//! that the language of the new regular expression is
//! `L(regexp_τ) ∩ ProdLabels_τ*`".
//!
//! The intersection is computed at the AST level: substituting ∅ for every
//! occurrence of a label whose child type is non-productive yields exactly
//! the restricted language (a standard identity for regular expressions),
//! after which the smart constructors simplify and the DFA is recompiled.

use crate::abstract_schema::{AbstractSchema, ComplexType, TypeDef, TypeId};
use schemacast_automata::Dfa;
use schemacast_regex::glushkov::is_one_unambiguous;
use schemacast_regex::{Alphabet, Regex, Sym};
use std::collections::HashMap;

/// Substitutes `Empty` for every symbol in `dead`, restricting the language
/// to words avoiding those symbols.
fn restrict(r: &Regex, dead: &dyn Fn(Sym) -> bool) -> Regex {
    match r {
        Regex::Empty => Regex::Empty,
        Regex::Epsilon => Regex::Epsilon,
        Regex::Sym(s) => {
            if dead(*s) {
                Regex::Empty
            } else {
                Regex::Sym(*s)
            }
        }
        Regex::Concat(ps) => Regex::concat(ps.iter().map(|p| restrict(p, dead)).collect()),
        Regex::Alt(ps) => Regex::alt(ps.iter().map(|p| restrict(p, dead)).collect()),
        Regex::Star(p) => Regex::star(restrict(p, dead)),
        Regex::Plus(p) => Regex::plus(restrict(p, dead)),
        Regex::Opt(p) => Regex::opt(restrict(p, dead)),
        Regex::Repeat { inner, min, max } => Regex::repeat(restrict(inner, dead), *min, *max),
    }
}

/// Returns an equivalent schema containing only productive types.
///
/// * Non-productive types are dropped (together with root declarations
///   pointing at them).
/// * Every remaining content model is restricted to its productive labels.
///
/// The result accepts exactly the same set of documents (non-productive
/// types accept nothing, so removing the possibility of reaching them does
/// not change any `valid(τ)`).
pub fn prune_nonproductive(schema: &AbstractSchema, alphabet: &Alphabet) -> AbstractSchema {
    let productive = schema.productive(alphabet);
    // Dense remap of surviving type ids.
    let mut remap: HashMap<TypeId, TypeId> = HashMap::new();
    let mut types: Vec<TypeDef> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for t in schema.type_ids() {
        if !productive[t.index()] {
            continue;
        }
        remap.insert(t, TypeId(types.len() as u32));
        names.push(schema.type_name(t).to_owned());
        types.push(schema.type_def(t).clone()); // fixed up below
    }
    for def in &mut types {
        if let TypeDef::Complex(c) = def {
            let dead_labels: Vec<Sym> = c
                .child_types
                .iter()
                .filter(|(_, t)| !productive[t.index()])
                .map(|(&l, _)| l)
                .collect();
            let regex = restrict(&c.regex, &|s| dead_labels.contains(&s));
            let dfa = Dfa::from_regex(&regex, alphabet.len())
                .expect("restriction never introduces repeats");
            let deterministic = is_one_unambiguous(&regex).unwrap_or(false);
            let child_types = c
                .child_types
                .iter()
                .filter(|(_, t)| productive[t.index()])
                .map(|(&l, t)| (l, remap[t]))
                .collect();
            *def = TypeDef::Complex(ComplexType::new(regex, dfa, child_types, deterministic));
        }
    }
    let roots = schema
        .roots()
        .filter(|(_, t)| productive[t.index()])
        .map(|(l, t)| (l, remap[&t]))
        .collect();
    AbstractSchema::from_parts(types, names, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::simple::SimpleType;
    use schemacast_tree::Doc;

    #[test]
    fn prunes_unproductive_branch() {
        // Root: (good | bad); bad's type requires itself forever.
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let bad = b.declare("BadLoop").unwrap();
        b.complex(bad, "(x)", &[("x", bad)]).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, "good | bad", &[("good", text), ("bad", bad)])
            .unwrap();
        b.root("r", root);
        let schema = b.finish().unwrap();
        assert!(schema.assert_productive(&ab).is_err());

        let pruned = prune_nonproductive(&schema, &ab);
        assert!(pruned.assert_productive(&ab).is_ok());
        assert_eq!(pruned.type_count(), 2); // Text + Root

        // Semantics preserved: <r><good>v</good></r> valid in both,
        // and nothing involving <bad> ever was valid.
        let r = ab.lookup("r").unwrap();
        let good = ab.lookup("good").unwrap();
        let bad_l = ab.lookup("bad").unwrap();
        let mut doc = Doc::new(r);
        let g = doc.add_element(doc.root(), good);
        doc.add_text(g, "v");
        assert!(schema.accepts_document(&doc));
        assert!(pruned.accepts_document(&doc));

        let mut doc2 = Doc::new(r);
        doc2.add_element(doc2.root(), bad_l);
        assert!(!schema.accepts_document(&doc2));
        assert!(!pruned.accepts_document(&doc2));
    }

    #[test]
    fn fully_productive_schema_is_unchanged_in_size() {
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, "x*", &[("x", text)]).unwrap();
        b.root("r", root);
        let schema = b.finish().unwrap();
        let pruned = prune_nonproductive(&schema, &ab);
        assert_eq!(pruned.type_count(), schema.type_count());
        assert_eq!(pruned.roots().count(), 1);
    }

    #[test]
    fn root_pointing_at_unproductive_type_is_dropped() {
        let mut ab = Alphabet::new();
        let mut b = SchemaBuilder::new(&mut ab);
        let bad = b.declare("Bad").unwrap();
        b.complex(bad, "(x)", &[("x", bad)]).unwrap();
        let text = b.simple("Text", SimpleType::string()).unwrap();
        b.root("bad", bad);
        b.root("ok", text);
        let schema = b.finish().unwrap();
        let pruned = prune_nonproductive(&schema, &ab);
        assert_eq!(pruned.roots().count(), 1);
        let ok = ab.lookup("ok").unwrap();
        assert!(pruned.root_type(ok).is_some());
    }

    #[test]
    fn restriction_identity_holds() {
        // L(r[σ→∅]) = L(r) ∩ (Σ∖σ)* — probe-based check.
        let mut ab = Alphabet::new();
        let r = schemacast_regex::parse_regex("(a, b?) | (c, a*)", &mut ab).unwrap();
        let c = ab.lookup("c").unwrap();
        let restricted = restrict(&r, &|s| s == c);
        let a = ab.lookup("a").unwrap();
        let b_sym = ab.lookup("b").unwrap();
        for probe in [
            vec![a],
            vec![a, b_sym],
            vec![c],
            vec![c, a],
            vec![c, a, a],
            vec![],
        ] {
            let expected = r.matches(&probe) && !probe.contains(&c);
            assert_eq!(restricted.matches(&probe), expected, "probe {probe:?}");
        }
    }
}
