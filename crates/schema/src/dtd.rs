//! DTD front-end: parses `<!ELEMENT …>` declarations into an abstract
//! schema.
//!
//! A DTD is the special case of an abstract XML Schema where every element
//! label has a single type regardless of context (§3 of the paper). The
//! parser accepts element declarations with `EMPTY`, `ANY`, `(#PCDATA)`, and
//! children content models (the `,`/`|`/`?`/`*`/`+` syntax, which is exactly
//! the expression syntax of `schemacast-regex`). `<!ATTLIST>` and
//! `<!ENTITY>` declarations are skipped (validation here is structural, as
//! in the paper). Mixed content models with element names are not in the
//! paper's tree model and are rejected.

use crate::abstract_schema::{AbstractSchema, TypeId};
use crate::builder::{BuildError, SchemaBuilder};
use crate::simple::SimpleType;
use schemacast_regex::Alphabet;
use std::collections::HashMap;
use std::fmt;

/// An error parsing a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// Syntax error with a description.
    Syntax(String),
    /// An element was declared twice.
    DuplicateElement(String),
    /// A content model references an undeclared element.
    UndeclaredElement {
        /// The declaring element.
        element: String,
        /// The missing reference.
        referenced: String,
    },
    /// Mixed content with child elements (`(#PCDATA | a)*`) is outside the
    /// paper's tree model.
    UnsupportedMixedContent(String),
    /// The requested root element is not declared.
    UnknownRoot(String),
    /// Schema assembly failed.
    Build(BuildError),
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::Syntax(m) => write!(f, "DTD syntax error: {m}"),
            DtdError::DuplicateElement(e) => write!(f, "element {e:?} declared twice"),
            DtdError::UndeclaredElement {
                element,
                referenced,
            } => write!(
                f,
                "content model of {element:?} references undeclared element {referenced:?}"
            ),
            DtdError::UnsupportedMixedContent(e) => {
                write!(
                    f,
                    "element {e:?} has mixed content with child elements (unsupported)"
                )
            }
            DtdError::UnknownRoot(r) => write!(f, "root element {r:?} is not declared"),
            DtdError::Build(b) => write!(f, "schema assembly failed: {b}"),
        }
    }
}

impl std::error::Error for DtdError {}

impl From<BuildError> for DtdError {
    fn from(b: BuildError) -> DtdError {
        DtdError::Build(b)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ContentSpec {
    Empty,
    Any,
    Pcdata,
    Children(String),
}

/// Parses DTD text (e.g. a `DOCTYPE` internal subset) into an abstract
/// schema over `alphabet`.
///
/// `root`: the document-type name (from `<!DOCTYPE root …>`); pass `None`
/// to allow every declared element as a root.
///
/// # Examples
/// ```
/// use schemacast_schema::dtd::parse_dtd;
/// use schemacast_regex::Alphabet;
/// let mut ab = Alphabet::new();
/// let schema = parse_dtd(r#"
///   <!ELEMENT po (item*, total)>
///   <!ELEMENT item (#PCDATA)>
///   <!ELEMENT total (#PCDATA)>
///   <!ATTLIST po id CDATA #IMPLIED>
/// "#, Some("po"), &mut ab).unwrap();
/// assert!(schema.is_dtd_style());
/// assert_eq!(schema.roots().count(), 1);
/// ```
pub fn parse_dtd(
    text: &str,
    root: Option<&str>,
    alphabet: &mut Alphabet,
) -> Result<AbstractSchema, DtdError> {
    let decls = scan_declarations(text)?;
    let mut elements: Vec<(String, ContentSpec)> = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    for (name, spec) in decls {
        if seen.insert(name.clone(), ()).is_some() {
            return Err(DtdError::DuplicateElement(name));
        }
        elements.push((name, spec));
    }

    if let Some(r) = root {
        if !elements.iter().any(|(n, _)| n == r) {
            return Err(DtdError::UnknownRoot(r.to_owned()));
        }
    }

    let mut b = SchemaBuilder::new(alphabet);
    let mut ids: HashMap<String, TypeId> = HashMap::new();
    for (name, _) in &elements {
        let id = b.declare(&format!("E_{name}")).map_err(DtdError::from)?;
        ids.insert(name.clone(), id);
    }

    let all_names: Vec<String> = elements.iter().map(|(n, _)| n.clone()).collect();
    for (name, spec) in &elements {
        let id = ids[name];
        match spec {
            ContentSpec::Pcdata => b.define_simple(id, SimpleType::string())?,
            ContentSpec::Empty => b.complex(id, "()", &[])?,
            ContentSpec::Any => {
                // ANY: any sequence of declared elements (or text-free leaf).
                let model = if all_names.is_empty() {
                    "()".to_owned()
                } else {
                    format!("({})*", all_names.join(" | "))
                };
                let child_types: Vec<(&str, TypeId)> =
                    all_names.iter().map(|n| (n.as_str(), ids[n])).collect();
                b.complex(id, &model, &child_types)?;
            }
            ContentSpec::Children(model) => {
                // Child types: every name referenced must be declared.
                let refs = referenced_names(model);
                let mut child_types: Vec<(&str, TypeId)> = Vec::with_capacity(refs.len());
                for r in &refs {
                    match ids.get(r.as_str()) {
                        Some(&t) => child_types.push((r.as_str(), t)),
                        None => {
                            return Err(DtdError::UndeclaredElement {
                                element: name.clone(),
                                referenced: r.clone(),
                            })
                        }
                    }
                }
                b.complex(id, model, &child_types)?;
            }
        }
    }

    match root {
        Some(r) => b.root(r, ids[r]),
        None => {
            for (name, _) in &elements {
                b.root(name, ids[name]);
            }
        }
    }
    b.finish().map_err(DtdError::from)
}

/// Extracts the element names used in a children content model.
fn referenced_names(model: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let bytes = model.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' || b == b':' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || matches!(bytes[i], b'_' | b':' | b'.' | b'-'))
            {
                i += 1;
            }
            let name = &model[start..i];
            if !out.iter().any(|n| n == name) {
                out.push(name.to_owned());
            }
        } else {
            i += 1;
        }
    }
    out
}

fn scan_declarations(text: &str) -> Result<Vec<(String, ContentSpec)>, DtdError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if text[i..].starts_with("<!--") {
            match text[i + 4..].find("-->") {
                Some(j) => {
                    i += 4 + j + 3;
                    continue;
                }
                None => return Err(DtdError::Syntax("unterminated comment".into())),
            }
        }
        if text[i..].starts_with("<!ELEMENT") {
            let end = text[i..]
                .find('>')
                .map(|j| i + j)
                .ok_or_else(|| DtdError::Syntax("unterminated <!ELEMENT".into()))?;
            let body = text[i + "<!ELEMENT".len()..end].trim();
            let (name, spec_text) = body
                .split_once(|c: char| c.is_whitespace())
                .ok_or_else(|| DtdError::Syntax(format!("malformed declaration: {body:?}")))?;
            let spec_text = spec_text.trim();
            let spec = parse_spec(name, spec_text)?;
            out.push((name.to_owned(), spec));
            i = end + 1;
            continue;
        }
        if text[i..].starts_with("<!ATTLIST")
            || text[i..].starts_with("<!ENTITY")
            || text[i..].starts_with("<!NOTATION")
            || text[i..].starts_with("<?")
        {
            let end = text[i..]
                .find('>')
                .map(|j| i + j)
                .ok_or_else(|| DtdError::Syntax("unterminated declaration".into()))?;
            i = end + 1;
            continue;
        }
        return Err(DtdError::Syntax(format!(
            "unexpected content at byte {i}: {:?}",
            &text[i..(i + 20).min(text.len())]
        )));
    }
    Ok(out)
}

fn parse_spec(name: &str, spec: &str) -> Result<ContentSpec, DtdError> {
    match spec {
        "EMPTY" => Ok(ContentSpec::Empty),
        "ANY" => Ok(ContentSpec::Any),
        _ => {
            let squeezed: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
            if squeezed == "(#PCDATA)" || squeezed == "(#PCDATA)*" {
                Ok(ContentSpec::Pcdata)
            } else if squeezed.contains("#PCDATA") {
                Err(DtdError::UnsupportedMixedContent(name.to_owned()))
            } else {
                Ok(ContentSpec::Children(spec.to_owned()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_tree::Doc;

    const PO_DTD: &str = r#"
        <!-- purchase orders -->
        <!ELEMENT purchaseOrder (shipTo, billTo?, items)>
        <!ELEMENT shipTo (name, street, city)>
        <!ELEMENT billTo (name, street, city)>
        <!ELEMENT items (item*)>
        <!ELEMENT item (productName, quantity)>
        <!ELEMENT productName (#PCDATA)>
        <!ELEMENT quantity (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT street (#PCDATA)>
        <!ELEMENT city (#PCDATA)>
        <!ATTLIST item partNum CDATA #REQUIRED>
    "#;

    #[test]
    fn parses_purchase_order_dtd() {
        let mut ab = Alphabet::new();
        let schema = parse_dtd(PO_DTD, Some("purchaseOrder"), &mut ab).expect("parse");
        assert_eq!(schema.type_count(), 10);
        assert!(schema.is_dtd_style());
        assert!(schema.assert_productive(&ab).is_ok());
        assert_eq!(schema.roots().count(), 1);

        // Build and check a small document against the reference semantics.
        let po = ab.lookup("purchaseOrder").unwrap();
        let ship = ab.lookup("shipTo").unwrap();
        let items = ab.lookup("items").unwrap();
        let name = ab.lookup("name").unwrap();
        let street = ab.lookup("street").unwrap();
        let city = ab.lookup("city").unwrap();

        let mut doc = Doc::new(po);
        let s = doc.add_element(doc.root(), ship);
        for (label, value) in [(name, "Ada"), (street, "1 Main St"), (city, "Springfield")] {
            let e = doc.add_element(s, label);
            doc.add_text(e, value);
        }
        doc.add_element(doc.root(), items);
        assert!(schema.accepts_document(&doc));

        // billTo omitted is fine; items must still follow shipTo.
        let mut bad = Doc::new(po);
        bad.add_element(bad.root(), items);
        assert!(!schema.accepts_document(&bad));
    }

    #[test]
    fn empty_and_any() {
        let mut ab = Alphabet::new();
        let schema = parse_dtd(
            "<!ELEMENT a ANY> <!ELEMENT b EMPTY> <!ELEMENT c (#PCDATA)>",
            None,
            &mut ab,
        )
        .expect("parse");
        let a = ab.lookup("a").unwrap();
        let b_sym = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();

        // ANY accepts any mix of declared children.
        let mut doc = Doc::new(a);
        doc.add_element(doc.root(), b_sym);
        let ce = doc.add_element(doc.root(), c);
        doc.add_text(ce, "hi");
        doc.add_element(doc.root(), a);
        assert!(schema.accepts_document(&doc));

        // EMPTY rejects children.
        let mut bad = Doc::new(b_sym);
        bad.add_element(bad.root(), c);
        assert!(!schema.accepts_document(&bad));
    }

    #[test]
    fn error_cases() {
        let mut ab = Alphabet::new();
        assert!(matches!(
            parse_dtd("<!ELEMENT a (b)>", None, &mut ab),
            Err(DtdError::UndeclaredElement { .. })
        ));
        assert!(matches!(
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>", None, &mut ab),
            Err(DtdError::DuplicateElement(_))
        ));
        assert!(matches!(
            parse_dtd(
                "<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>",
                None,
                &mut ab
            ),
            Err(DtdError::UnsupportedMixedContent(_))
        ));
        assert!(matches!(
            parse_dtd("<!ELEMENT a EMPTY>", Some("missing"), &mut ab),
            Err(DtdError::UnknownRoot(_))
        ));
        assert!(matches!(
            parse_dtd("garbage", None, &mut ab),
            Err(DtdError::Syntax(_))
        ));
    }

    #[test]
    fn doctype_subset_round_trip() {
        // The XML parser captures the internal subset; we parse it here.
        let xml = schemacast_xml::parse_document(
            "<!DOCTYPE po [<!ELEMENT po (item*)> <!ELEMENT item (#PCDATA)>]><po><item>x</item></po>",
        )
        .expect("xml");
        let mut ab = Alphabet::new();
        let schema = parse_dtd(
            xml.internal_dtd.as_deref().unwrap(),
            xml.doctype_name.as_deref(),
            &mut ab,
        )
        .expect("dtd");
        let doc = schemacast_tree::Doc::from_xml(
            &xml.root,
            &mut ab,
            schemacast_tree::WhitespaceMode::Trim,
        );
        assert!(schema.accepts_document(&doc));
    }
}
