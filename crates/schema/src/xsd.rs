//! XSD front-end: compiles a subset of XML Schema into abstract schemas.
//!
//! The subset covers the constructs that the paper's formalism models (and
//! its Figures 1–2 exercise):
//!
//! * global `xsd:element` declarations (→ the root map ℛ),
//! * named and anonymous `xsd:complexType` with `xsd:sequence`,
//!   `xsd:choice`, `xsd:all` (≤ 5 members, expanded to permutations),
//!   nested groups, and `minOccurs`/`maxOccurs`,
//! * local elements by `name`+`type`, inline type, or `ref` to a global
//!   element,
//! * named and anonymous `xsd:simpleType` restrictions of built-in atomic
//!   types with range, length, and enumeration facets,
//! * the built-in types mapped by [`AtomicKind::from_xsd_name`].
//!
//! Attributes, identity constraints (`key`/`keyref`), substitution groups,
//! wildcards, and mixed content are outside the paper's structural model
//! and are rejected or ignored as documented per construct (attribute
//! declarations are ignored; the rest are errors).

use crate::abstract_schema::{AbstractSchema, TypeId};
use crate::builder::{BuildError, SchemaBuilder};
use crate::simple::{AtomicKind, BoundValue, Date, Decimal, SimpleType};
use schemacast_regex::{Alphabet, Regex};
use schemacast_xml::{parse_document, XmlElement, XmlError};
use std::collections::HashMap;
use std::fmt;

/// An error compiling an XSD document.
#[derive(Debug, Clone, PartialEq)]
pub enum XsdError {
    /// The input is not well-formed XML.
    Xml(XmlError),
    /// The document element is not `xsd:schema`.
    NotASchema(String),
    /// A type reference could not be resolved.
    UnknownType(String),
    /// A referenced global element does not exist.
    UnknownElementRef(String),
    /// An element declaration carries neither `type` nor an inline type.
    ElementWithoutType(String),
    /// A construct outside the supported subset.
    Unsupported(String),
    /// The same label is used with two different types in one content model
    /// (violates XML Schema's Element Declarations Consistent rule).
    InconsistentElement(String),
    /// A facet value failed to parse against its base kind.
    BadFacet {
        /// Facet name.
        facet: String,
        /// Offending value.
        value: String,
    },
    /// A named simple type restricts itself (directly or indirectly).
    CyclicSimpleType(String),
    /// `xsd:all` with more than 5 members (permutation expansion bound).
    AllTooLarge(usize),
    /// Schema assembly failed.
    Build(BuildError),
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdError::Xml(e) => write!(f, "XSD is not well-formed XML: {e}"),
            XsdError::NotASchema(n) => write!(f, "document element {n:?} is not xsd:schema"),
            XsdError::UnknownType(t) => write!(f, "unknown type reference {t:?}"),
            XsdError::UnknownElementRef(e) => write!(f, "unknown element ref {e:?}"),
            XsdError::ElementWithoutType(e) => {
                write!(
                    f,
                    "element {e:?} has neither a type attribute nor an inline type"
                )
            }
            XsdError::Unsupported(c) => write!(f, "unsupported XSD construct: {c}"),
            XsdError::InconsistentElement(l) => write!(
                f,
                "label {l:?} appears with two different types in one content model"
            ),
            XsdError::BadFacet { facet, value } => {
                write!(f, "facet {facet:?} has malformed value {value:?}")
            }
            XsdError::CyclicSimpleType(t) => write!(f, "simple type {t:?} restricts itself"),
            XsdError::AllTooLarge(n) => {
                write!(
                    f,
                    "xsd:all with {n} members exceeds the expansion bound of 5"
                )
            }
            XsdError::Build(b) => write!(f, "schema assembly failed: {b}"),
        }
    }
}

impl std::error::Error for XsdError {}

impl From<XmlError> for XsdError {
    fn from(e: XmlError) -> Self {
        XsdError::Xml(e)
    }
}

impl From<BuildError> for XsdError {
    fn from(e: BuildError) -> Self {
        XsdError::Build(e)
    }
}

/// Strips a namespace prefix (`xsd:element` → `element`).
fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Parses XSD text into an [`AbstractSchema`] over `alphabet`.
///
/// # Errors
/// See [`XsdError`].
pub fn parse_xsd(text: &str, alphabet: &mut Alphabet) -> Result<AbstractSchema, XsdError> {
    let doc = parse_document(text)?;
    if local(&doc.root.name) != "schema" {
        return Err(XsdError::NotASchema(doc.root.name.clone()));
    }
    Compiler::new(alphabet).compile(&doc.root)
}

struct Compiler<'a, 'b> {
    builder: SchemaBuilder<'a>,
    /// Named user types (complex and simple) → declared id.
    named: HashMap<String, TypeId>,
    /// Raw bodies of named simple types, for on-demand facet resolution.
    simple_bodies: HashMap<String, &'b XmlElement>,
    /// Memoized compiled named simple types.
    simple_compiled: HashMap<String, SimpleType>,
    /// Built-in simple types materialized as schema types.
    builtins: HashMap<&'static str, TypeId>,
    /// Global element name → its type.
    globals: HashMap<String, TypeId>,
    anon_counter: u32,
}

impl<'a, 'b> Compiler<'a, 'b> {
    fn new(alphabet: &'a mut Alphabet) -> Self {
        Compiler {
            builder: SchemaBuilder::new(alphabet),
            named: HashMap::new(),
            simple_bodies: HashMap::new(),
            simple_compiled: HashMap::new(),
            builtins: HashMap::new(),
            globals: HashMap::new(),
            anon_counter: 0,
        }
    }

    fn compile(mut self, schema: &'b XmlElement) -> Result<AbstractSchema, XsdError> {
        // Sweep A: declare named types.
        for child in schema.child_elements() {
            match local(&child.name) {
                "complexType" | "simpleType" => {
                    let name = child
                        .attr("name")
                        .ok_or_else(|| XsdError::Unsupported("unnamed top-level type".into()))?;
                    let id = self.builder.declare(name)?;
                    self.named.insert(name.to_owned(), id);
                    if local(&child.name) == "simpleType" {
                        self.simple_bodies.insert(name.to_owned(), child);
                    }
                }
                "element" | "annotation" | "attribute" | "attributeGroup" | "import"
                | "include" | "notation" => {}
                other => {
                    return Err(XsdError::Unsupported(format!("top-level xsd:{other}")));
                }
            }
        }

        // Sweep B: global elements → roots. Inline anonymous types are
        // declared now and defined in sweep C order (inline definitions are
        // self-contained, so they are defined immediately).
        let mut pending_complex: Vec<(TypeId, &'b XmlElement)> = Vec::new();
        for child in schema.child_elements() {
            if local(&child.name) != "element" {
                continue;
            }
            let name = child
                .attr("name")
                .ok_or_else(|| XsdError::Unsupported("global element without name".into()))?
                .to_owned();
            let tid = self.element_type(child, &name, &mut pending_complex)?;
            self.globals.insert(name.clone(), tid);
            self.builder.root(&name, tid);
        }

        // Sweep C: define named complex types and queued inline complex
        // bodies (inline bodies may themselves queue more).
        for child in schema.child_elements() {
            if local(&child.name) == "complexType" {
                let name = child.attr("name").expect("checked in sweep A");
                let id = self.named[name];
                pending_complex.push((id, child));
            } else if local(&child.name) == "simpleType" {
                let name = child.attr("name").expect("checked in sweep A").to_owned();
                let st = self.resolve_named_simple(&name, &mut Vec::new())?;
                let id = self.named[&name];
                self.builder.define_simple(id, st)?;
            }
        }
        while let Some((id, body)) = pending_complex.pop() {
            self.define_complex_body(id, body, &mut pending_complex)?;
        }

        self.builder.finish().map_err(XsdError::from)
    }

    /// The type of an element declaration: `type=`, inline type, or error.
    fn element_type(
        &mut self,
        element: &'b XmlElement,
        diag_name: &str,
        pending: &mut Vec<(TypeId, &'b XmlElement)>,
    ) -> Result<TypeId, XsdError> {
        if let Some(tref) = element.attr("type") {
            return self.resolve_type_ref(tref);
        }
        for child in element.child_elements() {
            match local(&child.name) {
                "complexType" => {
                    let id = self.fresh_anon(diag_name)?;
                    pending.push((id, child));
                    return Ok(id);
                }
                "simpleType" => {
                    let st = self.compile_simple_body(child, &mut Vec::new())?;
                    let id = self.fresh_anon(diag_name)?;
                    self.builder.define_simple(id, st)?;
                    return Ok(id);
                }
                "annotation" | "key" | "keyref" | "unique" => {}
                other => return Err(XsdError::Unsupported(format!("xsd:{other} in element"))),
            }
        }
        Err(XsdError::ElementWithoutType(diag_name.to_owned()))
    }

    fn fresh_anon(&mut self, hint: &str) -> Result<TypeId, XsdError> {
        self.anon_counter += 1;
        let name = format!("__anon_{}_{}", hint, self.anon_counter);
        Ok(self.builder.declare(&name)?)
    }

    /// Resolves a `type="…"` reference: user-named type first, then the
    /// built-in table.
    fn resolve_type_ref(&mut self, tref: &str) -> Result<TypeId, XsdError> {
        if let Some(&id) = self.named.get(tref) {
            return Ok(id);
        }
        let loc = local(tref);
        if let Some(&id) = self.named.get(loc) {
            return Ok(id);
        }
        if let Some(kind) = AtomicKind::from_xsd_name(loc) {
            return self.builtin_id(kind, loc);
        }
        Err(XsdError::UnknownType(tref.to_owned()))
    }

    fn builtin_id(&mut self, kind: AtomicKind, loc: &str) -> Result<TypeId, XsdError> {
        // Canonical key per kind so xsd:int and xsd:integer share a TypeId.
        let key: &'static str = match kind {
            AtomicKind::String => "xsd:string",
            AtomicKind::Boolean => "xsd:boolean",
            AtomicKind::Decimal => "xsd:decimal",
            AtomicKind::Integer => "xsd:integer",
            AtomicKind::NonNegativeInteger => "xsd:nonNegativeInteger",
            AtomicKind::PositiveInteger => "xsd:positiveInteger",
            AtomicKind::Date => "xsd:date",
            AtomicKind::AnySimple => "xsd:anySimpleType",
        };
        if let Some(&id) = self.builtins.get(key) {
            return Ok(id);
        }
        let _ = loc;
        let id = self.builder.simple(key, SimpleType::of(kind))?;
        self.builtins.insert(key, id);
        Ok(id)
    }

    /// Compiles a named simple type on demand, with cycle detection.
    fn resolve_named_simple(
        &mut self,
        name: &str,
        in_progress: &mut Vec<String>,
    ) -> Result<SimpleType, XsdError> {
        if let Some(st) = self.simple_compiled.get(name) {
            return Ok(st.clone());
        }
        if in_progress.iter().any(|n| n == name) {
            return Err(XsdError::CyclicSimpleType(name.to_owned()));
        }
        let body = *self
            .simple_bodies
            .get(name)
            .ok_or_else(|| XsdError::UnknownType(name.to_owned()))?;
        in_progress.push(name.to_owned());
        let st = self.compile_simple_body(body, in_progress)?;
        in_progress.pop();
        self.simple_compiled.insert(name.to_owned(), st.clone());
        Ok(st)
    }

    /// Compiles a `<simpleType>` body (restriction of a base).
    fn compile_simple_body(
        &mut self,
        body: &'b XmlElement,
        in_progress: &mut Vec<String>,
    ) -> Result<SimpleType, XsdError> {
        let restriction = body
            .child_elements()
            .find(|c| local(&c.name) == "restriction")
            .ok_or_else(|| {
                XsdError::Unsupported(
                    "simpleType without restriction (list/union unsupported)".into(),
                )
            })?;
        let base_ref = restriction
            .attr("base")
            .ok_or_else(|| XsdError::Unsupported("restriction without base".into()))?;
        let base = if let Some(kind) = AtomicKind::from_xsd_name(local(base_ref)) {
            if self.simple_bodies.contains_key(base_ref)
                || self.simple_bodies.contains_key(local(base_ref))
            {
                // User type shadowing a built-in name: prefer the user type.
                let key = if self.simple_bodies.contains_key(base_ref) {
                    base_ref
                } else {
                    local(base_ref)
                };
                self.resolve_named_simple(key, in_progress)?
            } else {
                SimpleType::of(kind)
            }
        } else if self.simple_bodies.contains_key(base_ref) {
            self.resolve_named_simple(base_ref, in_progress)?
        } else if self.simple_bodies.contains_key(local(base_ref)) {
            self.resolve_named_simple(local(base_ref), in_progress)?
        } else {
            return Err(XsdError::UnknownType(base_ref.to_owned()));
        };

        let mut st = base;
        let mut enumeration: Vec<String> = Vec::new();
        for facet in restriction.child_elements() {
            let fname = local(&facet.name);
            if fname == "annotation" {
                continue;
            }
            let value = facet
                .attr("value")
                .ok_or_else(|| XsdError::BadFacet {
                    facet: fname.to_owned(),
                    value: String::new(),
                })?
                .to_owned();
            match fname {
                "minInclusive" | "maxInclusive" | "minExclusive" | "maxExclusive" => {
                    let bound = self.parse_bound(st.kind, fname, &value)?;
                    let slot = match fname {
                        "minInclusive" => &mut st.facets.min_inclusive,
                        "maxInclusive" => &mut st.facets.max_inclusive,
                        "minExclusive" => &mut st.facets.min_exclusive,
                        _ => &mut st.facets.max_exclusive,
                    };
                    *slot = Some(bound);
                }
                "enumeration" => enumeration.push(value),
                "length" => st.facets.length = Some(parse_len(fname, &value)?),
                "minLength" => st.facets.min_length = Some(parse_len(fname, &value)?),
                "maxLength" => st.facets.max_length = Some(parse_len(fname, &value)?),
                "pattern" | "whiteSpace" | "fractionDigits" | "totalDigits" => {
                    // Accepted and ignored: outside the value-space
                    // reasoning this reproduction models (documented).
                }
                other => {
                    return Err(XsdError::Unsupported(format!("facet xsd:{other}")));
                }
            }
        }
        if !enumeration.is_empty() {
            st.facets.enumeration = Some(enumeration);
        }
        Ok(st)
    }

    fn parse_bound(
        &self,
        kind: AtomicKind,
        facet: &str,
        value: &str,
    ) -> Result<BoundValue, XsdError> {
        let bad = || XsdError::BadFacet {
            facet: facet.to_owned(),
            value: value.to_owned(),
        };
        match kind {
            k if k.is_numeric() => Decimal::parse(value).map(BoundValue::Num).ok_or_else(bad),
            AtomicKind::Date => Date::parse(value).map(BoundValue::Date).ok_or_else(bad),
            _ => Err(XsdError::Unsupported(format!(
                "range facet {facet} on non-ordered kind {kind:?}"
            ))),
        }
    }

    /// Defines a complex type body: finds the particle group, compiles it to
    /// a regex + child-type map.
    fn define_complex_body(
        &mut self,
        id: TypeId,
        body: &'b XmlElement,
        pending: &mut Vec<(TypeId, &'b XmlElement)>,
    ) -> Result<(), XsdError> {
        if body.attr("mixed").is_some_and(|m| m == "true") {
            return Err(XsdError::Unsupported("mixed content".into()));
        }
        let mut particle: Option<&XmlElement> = None;
        for child in body.child_elements() {
            match local(&child.name) {
                "sequence" | "choice" | "all" => {
                    if particle.is_some() {
                        return Err(XsdError::Unsupported(
                            "multiple particle groups in complexType".into(),
                        ));
                    }
                    particle = Some(child);
                }
                "annotation" | "attribute" | "attributeGroup" | "anyAttribute" => {}
                other => {
                    return Err(XsdError::Unsupported(format!("xsd:{other} in complexType")));
                }
            }
        }
        let (regex, children) = match particle {
            None => (Regex::Epsilon, Vec::new()),
            Some(p) => self.compile_particle(p, pending)?,
        };
        let mut child_map: HashMap<String, TypeId> = HashMap::new();
        for (label, tid) in children {
            if let Some(prev) = child_map.insert(label.clone(), tid) {
                if prev != tid {
                    return Err(XsdError::InconsistentElement(label));
                }
            }
        }
        self.builder.complex_regex(id, regex, child_map)?;
        Ok(())
    }

    /// Compiles a particle (sequence / choice / all / element) into a regex
    /// plus the `(label, type)` pairs it mentions.
    fn compile_particle(
        &mut self,
        p: &'b XmlElement,
        pending: &mut Vec<(TypeId, &'b XmlElement)>,
    ) -> Result<(Regex, Vec<(String, TypeId)>), XsdError> {
        let (min, max) = occurs(p)?;
        let (inner, children) = match local(&p.name) {
            "sequence" => {
                let mut parts = Vec::new();
                let mut children = Vec::new();
                for c in self.group_members(p)? {
                    let (r, cs) = self.compile_particle(c, pending)?;
                    parts.push(r);
                    children.extend(cs);
                }
                (Regex::concat(parts), children)
            }
            "choice" => {
                let mut parts = Vec::new();
                let mut children = Vec::new();
                for c in self.group_members(p)? {
                    let (r, cs) = self.compile_particle(c, pending)?;
                    parts.push(r);
                    children.extend(cs);
                }
                (Regex::alt(parts), children)
            }
            "all" => {
                let members = self.group_members(p)?;
                if members.len() > 5 {
                    return Err(XsdError::AllTooLarge(members.len()));
                }
                let mut compiled = Vec::new();
                let mut children = Vec::new();
                for c in &members {
                    if local(&c.name) != "element" {
                        return Err(XsdError::Unsupported(
                            "non-element particle inside xsd:all".into(),
                        ));
                    }
                    let (r, cs) = self.compile_particle(c, pending)?;
                    compiled.push(r);
                    children.extend(cs);
                }
                // Language of `all`: every permutation (members may be
                // optional — their `?` is already inside each compiled part).
                let mut alts = Vec::new();
                permute(
                    &compiled,
                    &mut Vec::new(),
                    &mut vec![false; compiled.len()],
                    &mut alts,
                );
                (Regex::alt(alts), children)
            }
            "element" => {
                if let Some(r) = p.attr("ref") {
                    let label = local(r).to_owned();
                    let tid = *self
                        .globals
                        .get(&label)
                        .ok_or_else(|| XsdError::UnknownElementRef(label.clone()))?;
                    (
                        Regex::sym(self.builder_alphabet().intern(&label)),
                        vec![(label, tid)],
                    )
                } else {
                    let name = p
                        .attr("name")
                        .ok_or_else(|| {
                            XsdError::Unsupported("element with neither name nor ref".into())
                        })?
                        .to_owned();
                    let tid = self.element_type(p, &name, pending)?;
                    (
                        Regex::sym(self.builder_alphabet().intern(&name)),
                        vec![(name, tid)],
                    )
                }
            }
            "any" => return Err(XsdError::Unsupported("xsd:any wildcard".into())),
            other => return Err(XsdError::Unsupported(format!("particle xsd:{other}"))),
        };
        Ok((Regex::repeat(inner, min, max), children))
    }

    fn group_members(&self, group: &'b XmlElement) -> Result<Vec<&'b XmlElement>, XsdError> {
        let mut out = Vec::new();
        for c in group.child_elements() {
            match local(&c.name) {
                "annotation" => {}
                _ => out.push(c),
            }
        }
        Ok(out)
    }

    fn builder_alphabet(&mut self) -> &mut Alphabet {
        // SchemaBuilder owns a &mut Alphabet; expose interning through it.
        self.builder.alphabet_mut()
    }
}

/// Enumerates permutations of `parts` as concatenations (helper for
/// `xsd:all`).
fn permute(parts: &[Regex], current: &mut Vec<Regex>, used: &mut Vec<bool>, out: &mut Vec<Regex>) {
    if current.len() == parts.len() {
        out.push(Regex::concat(current.clone()));
        return;
    }
    for i in 0..parts.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        current.push(parts[i].clone());
        permute(parts, current, used, out);
        current.pop();
        used[i] = false;
    }
}

fn occurs(p: &XmlElement) -> Result<(u32, Option<u32>), XsdError> {
    let min = match p.attr("minOccurs") {
        None => 1,
        Some(v) => v.parse().map_err(|_| XsdError::BadFacet {
            facet: "minOccurs".into(),
            value: v.to_owned(),
        })?,
    };
    let max = match p.attr("maxOccurs") {
        None => Some(1),
        Some("unbounded") => None,
        Some(v) => Some(v.parse().map_err(|_| XsdError::BadFacet {
            facet: "maxOccurs".into(),
            value: v.to_owned(),
        })?),
    };
    Ok((min, max))
}

fn parse_len(facet: &str, value: &str) -> Result<usize, XsdError> {
    value.parse().map_err(|_| XsdError::BadFacet {
        facet: facet.to_owned(),
        value: value.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Sym;
    use schemacast_tree::{Doc, WhitespaceMode};

    const FIGURE2_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType2"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType2">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="100"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;

    #[test]
    fn compiles_figure2() {
        let mut ab = Alphabet::new();
        let schema = parse_xsd(FIGURE2_XSD, &mut ab).expect("compile");
        assert!(schema.assert_productive(&ab).is_ok());
        assert_eq!(schema.roots().count(), 2); // purchaseOrder, comment
        let po = ab.lookup("purchaseOrder").unwrap();
        let po_type = schema.root_type(po).unwrap();
        assert_eq!(schema.type_name(po_type), "POType2");
        // The quantity type captured its facet.
        let item = schema.type_by_name("Item").unwrap();
        let item_c = schema.type_def(item).as_complex().unwrap();
        let qty_sym = ab.lookup("quantity").unwrap();
        let qty_type = item_c.child_type(qty_sym).unwrap();
        let qty_simple = schema.type_def(qty_type).as_simple().unwrap();
        assert!(qty_simple.validate("99"));
        assert!(!qty_simple.validate("100"));
        assert!(!qty_simple.validate("0"));
    }

    #[test]
    fn validates_a_purchase_order_document() {
        let mut ab = Alphabet::new();
        let schema = parse_xsd(FIGURE2_XSD, &mut ab).expect("compile");
        let doc_xml = schemacast_xml::parse_document(
            r#"<purchaseOrder>
  <shipTo><name>A</name><street>S</street><city>C</city><state>ST</state><zip>90210</zip><country>US</country></shipTo>
  <billTo><name>B</name><street>S</street><city>C</city><state>ST</state><zip>90210</zip><country>US</country></billTo>
  <items>
    <item><productName>Widget</productName><quantity>5</quantity><USPrice>9.99</USPrice></item>
    <item><productName>Gadget</productName><quantity>99</quantity><USPrice>1.50</USPrice><shipDate>2004-03-14</shipDate></item>
  </items>
</purchaseOrder>"#,
        )
        .expect("xml");
        let doc = Doc::from_xml(&doc_xml.root, &mut ab, WhitespaceMode::Trim);
        assert!(schema.accepts_document(&doc));

        // quantity=100 violates maxExclusive.
        let bad_xml = schemacast_xml::parse_document(
            r#"<purchaseOrder>
  <shipTo><name>A</name><street>S</street><city>C</city><state>ST</state><zip>1</zip><country>US</country></shipTo>
  <billTo><name>B</name><street>S</street><city>C</city><state>ST</state><zip>1</zip><country>US</country></billTo>
  <items><item><productName>W</productName><quantity>100</quantity><USPrice>1</USPrice></item></items>
</purchaseOrder>"#,
        )
        .expect("xml");
        let bad = Doc::from_xml(&bad_xml.root, &mut ab, WhitespaceMode::Trim);
        assert!(!schema.accepts_document(&bad));
    }

    #[test]
    fn element_ref_and_choice() {
        let xsd = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="note" type="xsd:string"/>
  <xsd:element name="log" type="Log"/>
  <xsd:complexType name="Log">
    <xsd:choice minOccurs="0" maxOccurs="unbounded">
      <xsd:element ref="note"/>
      <xsd:element name="entry" type="xsd:string"/>
    </xsd:choice>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("compile");
        let log = ab.lookup("log").unwrap();
        let note = ab.lookup("note").unwrap();
        let entry = ab.lookup("entry").unwrap();
        let mut doc = Doc::new(log);
        let n = doc.add_element(doc.root(), note);
        doc.add_text(n, "hello");
        let e = doc.add_element(doc.root(), entry);
        doc.add_text(e, "world");
        doc.add_element(doc.root(), note);
        assert!(schema.accepts_document(&doc));
        assert_eq!(
            schema.root_type(log).map(|t| schema.type_name(t)),
            Some("Log")
        );
        let _ = schema.root_type(note).expect("note is global");
    }

    #[test]
    fn all_group_permutations() {
        let xsd = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="cfg" type="Cfg"/>
  <xsd:complexType name="Cfg">
    <xsd:all>
      <xsd:element name="host" type="xsd:string"/>
      <xsd:element name="port" type="xsd:integer"/>
      <xsd:element name="debug" type="xsd:boolean" minOccurs="0"/>
    </xsd:all>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("compile");
        let cfg = ab.lookup("cfg").unwrap();
        let host = ab.lookup("host").unwrap();
        let port = ab.lookup("port").unwrap();
        let debug = ab.lookup("debug").unwrap();

        let build = |labels: &[schemacast_regex::Sym]| {
            let mut doc = Doc::new(cfg);
            for &l in labels {
                let e = doc.add_element(doc.root(), l);
                doc.add_text(e, if l == host { "h" } else { "1" });
            }
            doc
        };
        assert!(schema.accepts_document(&build(&[host, port])));
        assert!(schema.accepts_document(&build(&[port, host])));
        assert!(schema.accepts_document(&build(&[debug, port, host])));
        assert!(!schema.accepts_document(&build(&[host])));
        assert!(!schema.accepts_document(&build(&[host, port, port])));
    }

    #[test]
    fn named_simple_type_chain() {
        let xsd = r#"
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Small">
    <xsd:restriction base="xsd:positiveInteger">
      <xsd:maxInclusive value="1000"/>
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="Tiny">
    <xsd:restriction base="Small">
      <xsd:maxExclusive value="10"/>
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:element name="n" type="Tiny"/>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("compile");
        let tiny = schema.type_by_name("Tiny").unwrap();
        let st = schema.type_def(tiny).as_simple().unwrap();
        assert!(st.validate("9"));
        assert!(!st.validate("10"));
        assert!(!st.validate("0"));
    }

    #[test]
    fn error_cases() {
        let mut ab = Alphabet::new();
        assert!(matches!(
            parse_xsd("<notschema/>", &mut ab),
            Err(XsdError::NotASchema(_))
        ));
        assert!(matches!(
            parse_xsd(
                r#"<xsd:schema xmlns:xsd="x"><xsd:element name="e" type="Missing"/></xsd:schema>"#,
                &mut ab
            ),
            Err(XsdError::UnknownType(_))
        ));
        assert!(matches!(
            parse_xsd(
                r#"<xsd:schema xmlns:xsd="x"><xsd:element name="e"/></xsd:schema>"#,
                &mut ab
            ),
            Err(XsdError::ElementWithoutType(_))
        ));
        assert!(matches!(
            parse_xsd("not xml <", &mut ab),
            Err(XsdError::Xml(_))
        ));
        // Inconsistent element declarations: same label, two types.
        let bad = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:element name="r" type="T"/>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="x" type="xsd:string"/>
      <xsd:element name="x" type="xsd:integer"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;
        assert!(matches!(
            parse_xsd(bad, &mut ab),
            Err(XsdError::InconsistentElement(_))
        ));
    }

    #[test]
    fn all_group_size_limit() {
        let mut members = String::new();
        for i in 0..6 {
            members.push_str(&format!(r#"<xsd:element name="m{i}" type="xsd:string"/>"#));
        }
        let xsd = format!(
            r#"<xsd:schema xmlns:xsd="x">
                 <xsd:element name="r" type="T"/>
                 <xsd:complexType name="T"><xsd:all>{members}</xsd:all></xsd:complexType>
               </xsd:schema>"#
        );
        let mut ab = Alphabet::new();
        assert!(matches!(
            parse_xsd(&xsd, &mut ab),
            Err(XsdError::AllTooLarge(6))
        ));
    }

    #[test]
    fn cyclic_simple_type_detected() {
        let xsd = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:simpleType name="A">
    <xsd:restriction base="B"><xsd:maxInclusive value="5"/></xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="B">
    <xsd:restriction base="A"><xsd:minInclusive value="1"/></xsd:restriction>
  </xsd:simpleType>
  <xsd:element name="n" type="A"/>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        assert!(matches!(
            parse_xsd(xsd, &mut ab),
            Err(XsdError::CyclicSimpleType(_))
        ));
    }

    #[test]
    fn mixed_content_rejected() {
        let xsd = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:element name="r" type="T"/>
  <xsd:complexType name="T" mixed="true">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        assert!(matches!(
            parse_xsd(xsd, &mut ab),
            Err(XsdError::Unsupported(_))
        ));
    }

    #[test]
    fn annotations_and_attributes_are_tolerated() {
        let xsd = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:annotation><xsd:documentation>top</xsd:documentation></xsd:annotation>
  <xsd:element name="r" type="T"/>
  <xsd:complexType name="T">
    <xsd:annotation><xsd:documentation>ct</xsd:documentation></xsd:annotation>
    <xsd:sequence>
      <xsd:annotation><xsd:documentation>seq</xsd:documentation></xsd:annotation>
      <xsd:element name="x" type="xsd:string"/>
    </xsd:sequence>
    <xsd:attribute name="id" type="xsd:string"/>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("annotations ignored");
        let r = ab.lookup("r").unwrap();
        let x = ab.lookup("x").unwrap();
        let mut doc = Doc::new(r);
        let e = doc.add_element(doc.root(), x);
        doc.add_text(e, "v");
        assert!(schema.accepts_document(&doc));
    }

    #[test]
    fn nested_groups_with_occurs() {
        let xsd = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:element name="r" type="T"/>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string"/>
      <xsd:choice minOccurs="0" maxOccurs="unbounded">
        <xsd:sequence>
          <xsd:element name="k" type="xsd:string"/>
          <xsd:element name="v" type="xsd:string"/>
        </xsd:sequence>
        <xsd:element name="flag" type="xsd:boolean"/>
      </xsd:choice>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("compiles");
        let r = ab.lookup("r").unwrap();
        let head = ab.lookup("head").unwrap();
        let k = ab.lookup("k").unwrap();
        let v = ab.lookup("v").unwrap();
        let flag = ab.lookup("flag").unwrap();
        let build = |labels: &[(Sym, &str)]| {
            let mut doc = Doc::new(r);
            for (l, t) in labels {
                let e = doc.add_element(doc.root(), *l);
                doc.add_text(e, *t);
            }
            doc
        };
        assert!(schema.accepts_document(&build(&[(head, "h")])));
        assert!(schema.accepts_document(&build(&[
            (head, "h"),
            (k, "a"),
            (v, "1"),
            (flag, "true"),
            (k, "b"),
            (v, "2")
        ])));
        // k without v breaks the inner sequence.
        assert!(!schema.accepts_document(&build(&[(head, "h"), (k, "a"), (flag, "true")])));
    }

    #[test]
    fn bounded_occurs() {
        let xsd = r#"
<xsd:schema xmlns:xsd="x">
  <xsd:element name="r" type="T"/>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="x" type="xsd:string" minOccurs="2" maxOccurs="3"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#;
        let mut ab = Alphabet::new();
        let schema = parse_xsd(xsd, &mut ab).expect("compile");
        let r = ab.lookup("r").unwrap();
        let x = ab.lookup("x").unwrap();
        let build = |n: usize| {
            let mut doc = Doc::new(r);
            for _ in 0..n {
                let e = doc.add_element(doc.root(), x);
                doc.add_text(e, "v");
            }
            doc
        };
        assert!(!schema.accepts_document(&build(1)));
        assert!(schema.accepts_document(&build(2)));
        assert!(schema.accepts_document(&build(3)));
        assert!(!schema.accepts_document(&build(4)));
    }
}
