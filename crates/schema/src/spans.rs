//! Source positions for XSD constructs, for diagnostics.
//!
//! The abstract schema deliberately forgets where its types came from; lint
//! diagnostics want to annotate the *schema file*. [`SchemaSpans`] is a
//! lightweight lexical pass over the XSD text — independent of the real
//! parser, tolerant of anything it does not recognize — that records the
//! line/column of:
//!
//! * each **named type** declaration (`<xsd:complexType name="T">`,
//!   `<xsd:simpleType name="T">`),
//! * each **particle** (an `<xsd:element>` with a `name` or `ref` inside a
//!   named type), keyed by `(type name, element label)`,
//! * each **global element** declaration (the ℛ roots).
//!
//! Positions are 1-based; a missing entry simply leaves the diagnostic
//! without a file anchor.

use std::collections::HashMap;

/// Line/column positions of XSD constructs, keyed by name.
#[derive(Debug, Default, Clone)]
pub struct SchemaSpans {
    types: HashMap<String, (u32, u32)>,
    particles: HashMap<(String, String), (u32, u32)>,
    roots: HashMap<String, (u32, u32)>,
}

impl SchemaSpans {
    /// Scans XSD text. Never fails: malformed input yields fewer spans.
    pub fn scan(text: &str) -> SchemaSpans {
        let mut spans = SchemaSpans::default();
        let line_starts = line_starts(text);
        // Stack of open elements: (local tag name, name attr of named types).
        let mut stack: Vec<(String, Option<String>)> = Vec::new();
        let bytes = text.as_bytes();
        let mut i = 0;
        while let Some(off) = find(bytes, i, b'<') {
            // Skip comments, processing instructions, and doctype-ish tags.
            if text[off..].starts_with("<!--") {
                i = match text[off..].find("-->") {
                    Some(e) => off + e + 3,
                    None => break,
                };
                continue;
            }
            if text[off..].starts_with("<?") || text[off..].starts_with("<!") {
                i = match find(bytes, off, b'>') {
                    Some(e) => e + 1,
                    None => break,
                };
                continue;
            }
            let Some(end) = find(bytes, off, b'>') else {
                break;
            };
            let tag = &text[off + 1..end];
            i = end + 1;
            if let Some(rest) = tag.strip_prefix('/') {
                let closed = local_name(rest.trim());
                if stack.last().is_some_and(|(t, _)| t == &closed) {
                    stack.pop();
                }
                continue;
            }
            let self_closing = tag.ends_with('/');
            let tag = tag.trim_end_matches('/');
            let name = local_name(tag);
            let pos = position(&line_starts, off);
            match name.as_str() {
                "complexType" | "simpleType" => {
                    let type_name = attr(tag, "name");
                    if let Some(n) = &type_name {
                        spans.types.entry(n.clone()).or_insert(pos);
                    }
                    if !self_closing {
                        stack.push((name, type_name));
                    }
                }
                "element" => {
                    let label = attr(tag, "name").or_else(|| attr(tag, "ref"));
                    if let Some(label) = label {
                        match enclosing_type(&stack) {
                            Some(t) => {
                                spans
                                    .particles
                                    .entry((t.to_owned(), label.clone()))
                                    .or_insert(pos);
                            }
                            None => {
                                // Only a truly top-level element is a root:
                                // elements inside *anonymous* types have no
                                // named home but are not roots either.
                                let nested = stack.iter().any(|(t, _)| {
                                    matches!(
                                        t.as_str(),
                                        "complexType" | "simpleType" | "element" | "group"
                                    )
                                });
                                if !nested {
                                    spans.roots.entry(label.clone()).or_insert(pos);
                                }
                            }
                        }
                    }
                    if !self_closing {
                        stack.push((name, None));
                    }
                }
                _ => {
                    if !self_closing {
                        stack.push((name, None));
                    }
                }
            }
        }
        spans
    }

    /// Position of the declaration of named type `name`.
    pub fn type_pos(&self, name: &str) -> Option<(u32, u32)> {
        self.types.get(name).copied()
    }

    /// Position of the `label` particle inside named type `type_name`.
    pub fn particle_pos(&self, type_name: &str, label: &str) -> Option<(u32, u32)> {
        self.particles
            .get(&(type_name.to_owned(), label.to_owned()))
            .copied()
    }

    /// Position of the global element declaration for `label`.
    pub fn root_pos(&self, label: &str) -> Option<(u32, u32)> {
        self.roots.get(label).copied()
    }

    /// Best anchor for a diagnostic about `type_name`, optionally at the
    /// `particle` label inside it: the particle position when known, else
    /// the type position, else the root declaration of `particle`.
    pub fn anchor(&self, type_name: &str, particle: Option<&str>) -> Option<(u32, u32)> {
        if let Some(label) = particle {
            if let Some(p) = self.particle_pos(type_name, label) {
                return Some(p);
            }
        }
        self.type_pos(type_name)
            .or_else(|| particle.and_then(|l| self.root_pos(l)))
    }
}

/// The innermost enclosing *named* type on the open-element stack.
fn enclosing_type(stack: &[(String, Option<String>)]) -> Option<&str> {
    stack.iter().rev().find_map(|(_, name)| name.as_deref())
}

fn find(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| from + p)
}

/// Byte offsets at which each line starts.
fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based (line, column) of a byte offset.
fn position(line_starts: &[usize], off: usize) -> (u32, u32) {
    let line = line_starts.partition_point(|&s| s <= off);
    let col = off - line_starts[line - 1] + 1;
    (line as u32, col as u32)
}

/// The tag name with any namespace prefix stripped.
fn local_name(tag: &str) -> String {
    let name = tag.split_whitespace().next().unwrap_or("");
    name.rsplit(':').next().unwrap_or(name).to_owned()
}

/// The value of attribute `key` in raw tag text, if present.
fn attr(tag: &str, key: &str) -> Option<String> {
    let mut rest = tag;
    while let Some(p) = rest.find(key) {
        let before_ok = p == 0 || rest.as_bytes()[p - 1].is_ascii_whitespace();
        let after = &rest[p + key.len()..];
        let after_trim = after.trim_start();
        if before_ok && after_trim.starts_with('=') {
            let v = after_trim[1..].trim_start();
            let quote = v.chars().next()?;
            if quote == '"' || quote == '\'' {
                let body = &v[1..];
                let end = body.find(quote)?;
                return Some(body[..end].to_owned());
            }
        }
        rest = &rest[p + key.len()..];
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const XSD: &str = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress" minOccurs="0"/>
      <xsd:element ref="items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:simpleType name="Qty">
    <xsd:restriction base="xsd:positiveInteger">
      <xsd:maxExclusive value="100"/>
    </xsd:restriction>
  </xsd:simpleType>
</xsd:schema>"#;

    #[test]
    fn finds_types_particles_and_roots() {
        let spans = SchemaSpans::scan(XSD);
        assert_eq!(spans.type_pos("POType"), Some((3, 3)));
        assert_eq!(spans.type_pos("Qty"), Some((10, 3)));
        assert_eq!(spans.particle_pos("POType", "billTo"), Some((6, 7)));
        assert_eq!(spans.particle_pos("POType", "items"), Some((7, 7)));
        assert_eq!(spans.root_pos("purchaseOrder"), Some((2, 3)));
        assert_eq!(spans.particle_pos("POType", "nope"), None);
    }

    #[test]
    fn anchor_prefers_particle_then_type_then_root() {
        let spans = SchemaSpans::scan(XSD);
        assert_eq!(spans.anchor("POType", Some("billTo")), Some((6, 7)));
        assert_eq!(spans.anchor("POType", Some("zzz")), Some((3, 3)));
        assert_eq!(spans.anchor("Missing", Some("purchaseOrder")), Some((2, 3)));
        assert_eq!(spans.anchor("Missing", None), None);
    }

    #[test]
    fn tolerates_anonymous_types_and_comments() {
        let text = r#"<schema>
  <!-- a comment with <element name="fake"/> inside -->
  <element name="root">
    <complexType><sequence>
      <element name="child" type="string"/>
    </sequence></complexType>
  </element>
</schema>"#;
        let spans = SchemaSpans::scan(text);
        // Anonymous complexType has no name: child has no named-type home,
        // and must NOT be misfiled as a root.
        assert_eq!(spans.root_pos("root"), Some((3, 3)));
        assert_eq!(spans.root_pos("fake"), None);
        assert_eq!(spans.root_pos("child"), None);
    }
}
