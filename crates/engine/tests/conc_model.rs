//! Model-checked concurrency suites over the engine's real structures.
//!
//! Every test body runs through `loomlite::model`. In a normal build that
//! is a single smoke execution over plain `std::sync` primitives; under
//! `RUSTFLAGS="--cfg loomlite"` the same closure is re-executed across
//! every bounded interleaving of its lock, channel, and atomic operations
//! (preemption bound 2), and any failing schedule panics with a seed that
//! `loomlite::replay` / `LOOMLITE_REPLAY` reproduces deterministically.
//!
//! The four tentpole invariant suites and where they live:
//!
//! * publish-once wins exactly once — `schemacast-core`,
//!   `idacache::tests::model_publish_once_under_every_interleaving`
//!   (the cache type is crate-private there);
//! * `collect_indexed_with` loses no item and preserves order —
//!   `pool::tests::model_collect_indexed_loses_nothing_in_any_schedule`
//!   (same reason);
//! * the producer/worker channel neither deadlocks nor drops work on
//!   early termination — here, over the exact pipeline shape
//!   `validate_corpus` builds (bounded `sync_channel`, shared
//!   `Mutex<Receiver>`, scoped workers);
//! * concurrent verdict-cache saves never publish a torn file — here,
//!   against the real [`VerdictCache`].

use schemacast_engine::{CacheEntry, CacheLoad, ItemOutcome, VerdictCache};

/// The corpus pipeline in miniature: one producer feeding a bounded
/// queue, workers pulling through a shared `Mutex<Receiver>` until
/// disconnect. Every schedule must deliver every item exactly once and
/// terminate — a lost wakeup or an unbalanced lock/recv pairing would
/// surface as a deadlock failure from the model scheduler.
#[test]
fn corpus_pipeline_drains_every_item_in_every_schedule() {
    loomlite::model(|| {
        const ITEMS: usize = 3;
        let (tx, rx) = loomlite::sync::mpsc::sync_channel::<usize>(1);
        let rx = loomlite::sync::Mutex::new(rx);
        let mut seen: Vec<usize> = loomlite::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..ITEMS {
                    if tx.send(i).is_err() {
                        break;
                    }
                }
            });
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let rx = &rx;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let item = match rx.lock() {
                                Ok(guard) => guard.recv(),
                                Err(_) => break,
                            };
                            let Ok(item) = item else { break };
                            got.push(item);
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "an item was lost or duplicated");
    });
}

/// Early termination: one worker stops after at most one item (the hole
/// a dying worker leaves in the pool). The surviving worker must drain
/// the rest and the producer must never wedge on the bounded queue — the
/// union of what both workers saw is still every item exactly once.
#[test]
fn corpus_pipeline_survives_a_worker_quitting_early() {
    loomlite::model(|| {
        const ITEMS: usize = 3;
        let (tx, rx) = loomlite::sync::mpsc::sync_channel::<usize>(1);
        let rx = loomlite::sync::Mutex::new(rx);
        let mut seen: Vec<usize> = loomlite::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..ITEMS {
                    if tx.send(i).is_err() {
                        break;
                    }
                }
            });
            let quitter = {
                let rx = &rx;
                scope.spawn(move || match rx.lock().map(|g| g.recv()) {
                    Ok(Ok(item)) => vec![item],
                    _ => Vec::new(),
                })
            };
            let survivor = {
                let rx = &rx;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let item = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        let Ok(item) = item else { break };
                        got.push(item);
                    }
                    got
                })
            };
            let mut all = quitter.join().unwrap();
            all.extend(survivor.join().unwrap());
            all
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "work was dropped after the quit");
    });
}

/// Two threads save different generations of the same cache to the same
/// path concurrently. Whatever the schedule, the published file must be
/// one *complete* save — it always loads warm, with the entry count of
/// one of the two writers, never a torn or partial mix. This is the
/// invariant the fixed-temp-name bug broke (see
/// `VerdictCache::save`); `unique_tmp_path` restores it.
#[test]
fn concurrent_cache_saves_never_publish_a_torn_file() {
    const FP: u64 = 0x5eed;
    let dir = std::env::temp_dir().join(format!("schemacast-conc-model-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("verdicts.scvc");

    let entry = |visits: usize| {
        let stats = schemacast_core::ValidationStats {
            nodes_visited: visits,
            ..Default::default()
        };
        CacheEntry::from_outcome(&ItemOutcome::Valid, stats).expect("cacheable")
    };
    loomlite::model(|| {
        let _ = std::fs::remove_file(&path);
        let mut a = VerdictCache::empty(FP, 0);
        a.insert((1, 1), entry(1));
        let mut b = VerdictCache::empty(FP, 0);
        b.insert((2, 2), entry(2));
        b.insert((3, 3), entry(3));
        loomlite::thread::scope(|scope| {
            scope.spawn(|| a.save(&path).expect("save a"));
            scope.spawn(|| b.save(&path).expect("save b"));
        });
        let loaded = VerdictCache::load(&path, FP, 0);
        match loaded.load_status() {
            CacheLoad::Warm { entries } => assert!(
                *entries == 1 || *entries == 2,
                "file is a mix of both saves ({entries} entries)"
            ),
            cold @ CacheLoad::Cold(_) => {
                panic!("torn or unreadable cache after concurrent saves: {cold:?}")
            }
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}
