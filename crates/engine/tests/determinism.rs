//! The engine's core guarantee: scheduling never leaks into results.
//!
//! The same batch must produce identical outcomes, identical per-item
//! stats, and identical totals at every worker count — plus a stress shape
//! (many small documents over many type pairs) that hammers the sharded
//! IDA cache from all workers at once.

use schemacast_core::{CastContext, CastOptions};
use schemacast_engine::{BatchEngine, BatchItem, ItemOutcome};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, SchemaBuilder, Session, SimpleType};
use schemacast_tree::Doc;
use schemacast_workload::purchase_order as po;

/// Purchase-order schema pair plus a mixed batch of documents and XML.
fn po_fixture() -> (
    Session,
    AbstractSchema,
    AbstractSchema,
    Vec<Doc>,
    Vec<String>,
) {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    let docs: Vec<Doc> = (0..40)
        .map(|i| po::generate_document(&mut session.alphabet, 1 + i % 17, i % 3 != 2))
        .collect();
    let mut texts: Vec<String> = (0..20)
        .map(|i| po::document_xml(&mut session.alphabet, 1 + i % 9))
        .collect();
    texts.push("<purchaseOrder><shipTo></purchaseOrder>".to_string()); // malformed
    texts.push("not xml at all".to_string());
    (session, source, target, docs, texts)
}

#[test]
fn identical_reports_across_worker_counts() {
    let (session, source, target, docs, texts) = po_fixture();
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    let items: Vec<BatchItem<'_>> = docs
        .iter()
        .map(BatchItem::Doc)
        .chain(texts.iter().map(|t| BatchItem::Xml(t)))
        .collect();

    let baseline = BatchEngine::with_workers(&ctx, 1).validate_items(&items, &session.alphabet);
    assert_eq!(baseline.items.len(), items.len());
    // The fixture mixes valid, invalid, and malformed inputs.
    assert!(baseline.valid > 0 && baseline.invalid > 0);
    assert_eq!(baseline.malformed, 2);

    for workers in [2, 3, 4, 8, 16] {
        let run =
            BatchEngine::with_workers(&ctx, workers).validate_items(&items, &session.alphabet);
        assert_eq!(
            run.deterministic_view(),
            baseline.deterministic_view(),
            "results differ between 1 and {workers} workers"
        );
    }

    // Determinism also holds run-to-run at a fixed worker count.
    let again = BatchEngine::with_workers(&ctx, 4).validate_items(&items, &session.alphabet);
    let once = BatchEngine::with_workers(&ctx, 4).validate_items(&items, &session.alphabet);
    assert_eq!(again.deterministic_view(), once.deterministic_view());
}

#[test]
fn per_item_verdicts_match_direct_validation() {
    let (session, source, target, docs, _) = po_fixture();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let report = BatchEngine::new(&ctx).validate_docs(&docs);
    for (doc, item) in docs.iter().zip(&report.items) {
        assert_eq!(item.outcome.is_valid(), ctx.validate(doc).is_valid());
        assert_eq!(item.outcome.is_valid(), target.accepts_document(doc));
    }
}

/// Builds a schema with `n` distinct complex record types (each rooted at
/// its own label). With `wide = true` every record's `extra` child is
/// optional; the target requires it — so no record pair is subsumed or
/// disjoint and every pair needs its own product IDA.
fn many_type_schema(ab: &mut Alphabet, n: usize, wide: bool) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).expect("simple");
    for i in 0..n {
        let rec = b.declare(&format!("Rec{i}")).expect("declare");
        let model = if wide {
            "(key, extra?)"
        } else {
            "(key, extra)"
        };
        b.complex(rec, model, &[("key", text), ("extra", text)])
            .expect("complex");
        b.root(&format!("rec{i}"), rec);
    }
    b.finish().expect("schema")
}

#[test]
fn stress_many_small_docs_many_type_pairs() {
    const TYPES: usize = 24;
    const DOCS: usize = 600;

    let mut ab = Alphabet::new();
    let source = many_type_schema(&mut ab, TYPES, true);
    let target = many_type_schema(&mut ab, TYPES, false);
    let key = ab.lookup("key").expect("key");
    let extra = ab.lookup("extra").expect("extra");

    // Half the documents carry the `extra` child (target-valid), half do
    // not (target-invalid); they cycle through every record type so all
    // worker threads demand-build IDAs for all pairs concurrently.
    let docs: Vec<Doc> = (0..DOCS)
        .map(|i| {
            let label = ab.lookup(&format!("rec{}", i % TYPES)).expect("root label");
            let mut doc = Doc::new(label);
            let k = doc.add_element(doc.root(), key);
            doc.add_text(k, "v");
            if i % 2 == 0 {
                let e = doc.add_element(doc.root(), extra);
                doc.add_text(e, "w");
            }
            doc
        })
        .collect();

    let ctx = CastContext::new(&source, &target, &ab);
    let report = BatchEngine::with_workers(&ctx, 16).validate_docs(&docs);
    for (i, item) in report.items.iter().enumerate() {
        let expect = i % 2 == 0;
        assert_eq!(
            item.outcome.is_valid(),
            expect,
            "doc {i} (rec{}, extra={})",
            i % TYPES,
            expect
        );
    }
    assert_eq!(report.valid, DOCS / 2);
    assert_eq!(report.invalid, DOCS / 2);

    // Every record pair was demand-built under contention — exactly once
    // per pair observable (the cache never republishes).
    assert_eq!(ctx.cached_ida_count(), TYPES);

    // A single-threaded rerun agrees bit for bit.
    let single = BatchEngine::with_workers(&ctx, 1).validate_docs(&docs);
    assert_eq!(single.deterministic_view(), report.deterministic_view());
}

#[test]
fn warm_up_precomputes_reachable_pairs_in_parallel() {
    const TYPES: usize = 24;
    let mut ab = Alphabet::new();
    let source = many_type_schema(&mut ab, TYPES, true);
    let target = many_type_schema(&mut ab, TYPES, false);
    let ctx = CastContext::new(&source, &target, &ab);
    let engine = BatchEngine::with_workers(&ctx, 8);

    assert_eq!(ctx.cached_ida_count(), 0);
    let built = engine.warm_up();
    assert_eq!(built, TYPES);
    assert_eq!(ctx.cached_ida_count(), TYPES);
    // Idempotent, and cheap the second time (all hits).
    assert_eq!(engine.warm_up(), built);
    assert_eq!(ctx.cached_ida_count(), TYPES);

    // Warm-up is disabled along with the IDA option.
    let cold = CastContext::with_options(
        &source,
        &target,
        &ab,
        CastOptions {
            use_ida: false,
            ..Default::default()
        },
    );
    assert_eq!(BatchEngine::new(&cold).warm_up(), 0);
    assert_eq!(cold.cached_ida_count(), 0);
}

#[test]
fn streaming_and_tree_agree_in_batch() {
    let (session, source, target, _, texts) = po_fixture();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let report = BatchEngine::with_workers(&ctx, 4).validate_xml(&texts, &session.alphabet);
    for (text, item) in texts.iter().zip(&report.items) {
        match &item.outcome {
            ItemOutcome::MalformedXml(_) => {
                assert!(schemacast_xml::parse_document(text).is_err());
            }
            outcome => {
                let xml = schemacast_xml::parse_document(text).expect("well-formed");
                let mut ab = session.alphabet.clone();
                let doc = Doc::from_xml(&xml.root, &mut ab, schemacast_tree::WhitespaceMode::Trim);
                assert_eq!(outcome.is_valid(), target.accepts_document(&doc));
            }
        }
    }
}

#[test]
fn certify_validates_the_preprocessing() {
    let (session, source, target, _, _) = po_fixture();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 4);
    let run = engine.certify();
    assert!(run.all_certified(), "diagnostics: {:#?}", run.diagnostics);
    assert!(run.report.all_valid());
    assert!(run.certs_emitted > 0);
    // The counters fold into batch-style stats totals.
    let mut totals = schemacast_core::ValidationStats::default();
    totals += run.stats();
    assert_eq!(totals.certs_emitted, run.certs_emitted);
    assert_eq!(totals.certs_checked, run.certs_checked);
    // Certification and warm-up share the IDA cache: re-certifying after
    // warm-up gives the same bundle.
    engine.warm_up();
    let rerun = engine.certify();
    assert_eq!(rerun.bundle, run.bundle);
}
