//! Edited-batch revalidation: the static update-safety fast path must be
//! invisible in verdicts (identical to the dynamic path and to a
//! full-revalidation oracle) and visible in stats (`static_skips` /
//! `static_rejects` > 0 on workloads it can decide).

use schemacast_core::CastContext;
use schemacast_engine::{BatchEngine, ItemOutcome};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, SchemaBuilder, SimpleType};
use schemacast_tree::{DeltaDoc, Doc, Edit};

/// Root "feed" with `(entry | note)*`; entry requires a title, note is
/// simple text. With `allow_note = false` the model is `entry*`.
fn feed_schema(ab: &mut Alphabet, allow_note: bool) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).expect("simple");
    let entry = b.declare("Entry").expect("declare");
    b.complex(entry, "(title)", &[("title", text)])
        .expect("entry model");
    let feed = b.declare("Feed").expect("declare");
    if allow_note {
        b.complex(feed, "(entry | note)*", &[("entry", entry), ("note", text)])
            .expect("feed model");
    } else {
        b.complex(feed, "entry*", &[("entry", entry)])
            .expect("feed model");
    }
    b.root("feed", feed);
    b.finish().expect("schema")
}

fn feed_doc(ab: &mut Alphabet, entries: usize) -> Doc {
    let feed = ab.intern("feed");
    let entry = ab.intern("entry");
    let title = ab.intern("title");
    let mut doc = Doc::new(feed);
    for _ in 0..entries {
        let e = doc.add_element(doc.root(), entry);
        let t = doc.add_element(e, title);
        doc.add_text(t, "hello");
    }
    doc
}

/// A batch of note insert/delete scripts, all statically decidable when
/// source and target both allow notes.
fn note_batch(ab: &mut Alphabet, n: usize) -> Vec<(Doc, Vec<Edit>)> {
    let note = ab.intern("note");
    (0..n)
        .map(|i| {
            let doc = feed_doc(ab, 1 + i % 5);
            let edits = vec![Edit::InsertElement {
                parent: doc.root(),
                position: i % 2,
                label: note,
            }];
            (doc, edits)
        })
        .collect()
}

/// Ground truth: apply the script and fully validate against the target.
fn oracle(target: &AbstractSchema, doc: &Doc, edits: &[Edit]) -> Option<bool> {
    let mut dd = DeltaDoc::new(doc.clone());
    dd.apply_all(edits).ok()?;
    Some(target.accepts_document(&dd.committed()))
}

#[test]
fn safe_scripts_skip_statically_and_match_oracle() {
    let mut ab = Alphabet::new();
    let source = feed_schema(&mut ab, true);
    let target = feed_schema(&mut ab, true);
    let items = note_batch(&mut ab, 24);
    let ctx = CastContext::new(&source, &target, &ab);

    let fast = BatchEngine::with_workers(&ctx, 4).validate_edited(&items);
    assert_eq!(fast.totals.static_skips, items.len());
    assert_eq!(fast.totals.static_rejects, 0);
    assert!(fast.all_valid());

    let slow = BatchEngine::with_workers(&ctx, 4)
        .with_static_fastpath(false)
        .validate_edited(&items);
    assert_eq!(slow.totals.static_skips, 0);
    for ((doc, edits), (f, s)) in items.iter().zip(fast.items.iter().zip(&slow.items)) {
        assert_eq!(f.outcome, s.outcome, "fast path changed a verdict");
        assert_eq!(
            Some(f.outcome.is_valid()),
            oracle(&target, doc, edits),
            "fast path disagrees with apply-and-revalidate"
        );
    }
}

#[test]
fn unsafe_scripts_reject_statically() {
    let mut ab = Alphabet::new();
    let source = feed_schema(&mut ab, true);
    let target = feed_schema(&mut ab, false); // note dropped from target
    let items = note_batch(&mut ab, 12);
    let ctx = CastContext::new(&source, &target, &ab);

    let report = BatchEngine::with_workers(&ctx, 2).validate_edited(&items);
    assert_eq!(report.totals.static_rejects, items.len());
    assert_eq!(report.invalid, items.len());
    for (doc, edits) in &items {
        assert_eq!(oracle(&target, doc, edits), Some(false));
    }
}

#[test]
fn undecidable_scripts_fall_back_to_dynamic_path() {
    // billTo optional in the source, required in the target: inserting
    // billTo is position-dependent, so the analyzer must defer.
    let mut ab = Alphabet::new();
    let mk = |ab: &mut Alphabet, optional: bool| {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).expect("simple");
        let po = b.declare("PO").expect("declare");
        let model = if optional {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", text), ("billTo", text), ("items", text)],
        )
        .expect("model");
        b.root("po", po);
        b.finish().expect("schema")
    };
    let source = mk(&mut ab, true);
    let target = mk(&mut ab, false);
    let po = ab.intern("po");
    let ship = ab.intern("shipTo");
    let bill = ab.intern("billTo");
    let items_l = ab.intern("items");

    let mut items: Vec<(Doc, Vec<Edit>)> = Vec::new();
    for good_position in [true, false] {
        let mut doc = Doc::new(po);
        for l in [ship, items_l] {
            let e = doc.add_element(doc.root(), l);
            doc.add_text(e, "v");
        }
        let position = if good_position { 1 } else { 0 };
        let edits = vec![Edit::InsertElement {
            parent: doc.root(),
            position,
            label: bill,
        }];
        items.push((doc, edits));
    }
    let ctx = CastContext::new(&source, &target, &ab);
    let report = BatchEngine::with_workers(&ctx, 2).validate_edited(&items);
    assert_eq!(report.totals.static_skips, 0);
    assert_eq!(report.totals.static_rejects, 0);
    assert_eq!(report.valid, 1);
    assert_eq!(report.invalid, 1);
    for ((doc, edits), item) in items.iter().zip(&report.items) {
        assert_eq!(Some(item.outcome.is_valid()), oracle(&target, doc, edits));
    }
}

#[test]
fn failing_scripts_become_edit_failed_items() {
    let mut ab = Alphabet::new();
    let source = feed_schema(&mut ab, true);
    let target = feed_schema(&mut ab, true);
    let doc = feed_doc(&mut ab, 2);
    // SetText on an element node fails at apply time; the shape extractor
    // refuses text edits, so the dynamic path reports the error.
    let root = doc.root();
    let items = vec![(
        doc,
        vec![Edit::SetText {
            node: root,
            text: "oops".into(),
        }],
    )];
    let ctx = CastContext::new(&source, &target, &ab);
    let report = BatchEngine::new(&ctx).validate_edited(&items);
    assert_eq!(report.edit_failed, 1);
    assert!(matches!(
        report.items[0].outcome,
        ItemOutcome::EditFailed(_)
    ));
}

#[test]
fn edited_reports_are_deterministic_across_worker_counts() {
    let mut ab = Alphabet::new();
    let source = feed_schema(&mut ab, true);
    let target = feed_schema(&mut ab, false);
    let items = note_batch(&mut ab, 30);
    let ctx = CastContext::new(&source, &target, &ab);
    let baseline = BatchEngine::with_workers(&ctx, 1).validate_edited(&items);
    for workers in [2, 4, 8] {
        let run = BatchEngine::with_workers(&ctx, workers).validate_edited(&items);
        assert_eq!(
            run.deterministic_view(),
            baseline.deterministic_view(),
            "results differ between 1 and {workers} workers"
        );
    }
}
