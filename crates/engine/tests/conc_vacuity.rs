//! Anti-vacuity: prove the model checker actually *finds* concurrency
//! bugs in these structures, not just that the real code passes.
//!
//! Each test seeds a known bug into a mutated copy of a real workspace
//! structure — the sharded publish-once cache, the pool's claim counter,
//! the pipeline's ready-gate — and asserts that loomlite (a) detects it,
//! (b) prints a schedule seed, and (c) deterministically reproduces the
//! same failure when that seed is replayed. If a refactor ever blinds
//! the checker (a shim op that stops yielding, a scheduler that stops
//! exploring), these tests go red before the real suites go vacuous.
//!
//! Compiled only under `RUSTFLAGS="--cfg loomlite"`: in a normal build
//! `loomlite::model` runs a single schedule, which has no obligation to
//! hit a seeded race.
#![cfg(loomlite)]

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::thread;
use std::collections::HashMap;

/// Runs `f` under the model checker expecting a failure containing
/// `needle`, extracts the printed schedule seed, and replays it —
/// asserting the replay reproduces the same failure deterministically.
fn expect_found_and_replayable<F>(f: F, needle: &str)
where
    F: Fn() + Copy + std::panic::RefUnwindSafe + 'static,
{
    let err = std::panic::catch_unwind(|| loomlite::model(f))
        .expect_err("the model checker missed the seeded bug (vacuous suite!)");
    let msg = panic_text(err.as_ref());
    assert!(
        msg.contains(needle),
        "model failed for the wrong reason: {msg}"
    );
    let seed = loomlite::seed_from_failure(&msg)
        .unwrap_or_else(|| panic!("no replayable seed in failure: {msg}"));
    let err = std::panic::catch_unwind(|| loomlite::replay(&seed, f))
        .expect_err("the recorded seed did not reproduce the failure");
    let msg = panic_text(err.as_ref());
    assert!(
        msg.contains(needle),
        "replay failed for a different reason: {msg}"
    );
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// `idacache::ShardedCache` with the publish-once `entry().or_insert`
/// replaced by a check-then-act `insert` — the exact bug the real
/// structure's design rules out. Two racing builders can now both
/// publish, and callers observe two different `Arc`s for one key.
struct RacyPublishCache {
    shard: Mutex<HashMap<u32, Arc<usize>>>,
}

impl RacyPublishCache {
    fn get_or_insert_with(&self, key: u32, build: impl FnOnce() -> usize) -> Arc<usize> {
        if let Some(v) = self.shard.lock().unwrap().get(&key) {
            return Arc::clone(v);
        }
        let built = Arc::new(build());
        // Seeded bug: last writer wins instead of first publication.
        self.shard.lock().unwrap().insert(key, Arc::clone(&built));
        built
    }
}

#[test]
fn finds_double_publish_in_mutated_cache() {
    expect_found_and_replayable(
        || {
            let cache = RacyPublishCache {
                shard: Mutex::new(HashMap::new()),
            };
            let published: Vec<Arc<usize>> = thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|id| {
                        let cache = &cache;
                        s.spawn(move || cache.get_or_insert_with(7, move || id))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!(
                Arc::ptr_eq(&published[0], &published[1]),
                "two values observable for one key"
            );
        },
        "two values observable",
    );
}

/// The pool's claim counter with its `fetch_add` torn into a separate
/// load and store — the lost-update mutation. Two workers can claim the
/// same index, so some index is produced twice and another never.
#[test]
fn finds_lost_update_in_mutated_claim_counter() {
    expect_found_and_replayable(
        || {
            const N: usize = 2;
            let next = AtomicUsize::new(0);
            let parts: Vec<Vec<usize>> = thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let next = &next;
                        s.spawn(move || {
                            let mut claimed = Vec::new();
                            loop {
                                // Seeded bug: non-atomic claim (the real
                                // pool uses one fetch_add RMW).
                                let i = next.load(Ordering::SeqCst);
                                if i >= N {
                                    break;
                                }
                                next.store(i + 1, Ordering::SeqCst);
                                claimed.push(i);
                            }
                            claimed
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut seen = vec![0usize; N];
            for i in parts.into_iter().flatten() {
                seen[i] += 1;
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "an index was lost or claimed twice: {seen:?}"
            );
        },
        "lost or claimed twice",
    );
}

/// The pipeline's ready-gate with the predicate check moved outside the
/// condvar's mutex: the producer's notify can land in the gap between
/// the worker's check and its wait, and the wait never wakes. The model
/// scheduler reports this as a deadlock.
#[test]
fn finds_lost_wakeup_in_mutated_ready_gate() {
    expect_found_and_replayable(
        || {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let worker = {
                let gate = Arc::clone(&gate);
                thread::spawn(move || {
                    let (ready, cv) = &*gate;
                    // Seeded bug: check, drop the lock, then re-lock to
                    // wait. The real pattern holds one guard across the
                    // `while !*ready` loop.
                    if !*ready.lock().unwrap() {
                        let guard = ready.lock().unwrap();
                        let _unused = cv.wait(guard).unwrap();
                    }
                })
            };
            {
                let (ready, cv) = &*gate;
                *ready.lock().unwrap() = true;
                cv.notify_all();
            }
            worker.join().unwrap();
        },
        "deadlock",
    );
}
