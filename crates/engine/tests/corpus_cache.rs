//! Corpus pipeline + verdict cache integration: incremental re-runs touch
//! exactly the edited files, every invalidation path goes cold, and the
//! streamed report is deterministic across worker counts and sources.

use schemacast_core::{certification_digest, CastContext, CastOptions};
use schemacast_engine::{
    BatchEngine, CacheLoad, ColdReason, CorpusOptions, CorpusSource, ItemOutcome, VerdictCache,
};
use schemacast_schema::{AbstractSchema, Session};
use schemacast_workload::purchase_order as po;
use std::path::{Path, PathBuf};

fn fixture() -> (Session, AbstractSchema, AbstractSchema) {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source");
    let target = session.parse_xsd(&po::target_xsd()).expect("target");
    (session, source, target)
}

/// A fresh scratch directory under the system temp dir (the workspace has
/// no tempfile dependency; names carry the pid + test name so concurrent
/// test binaries never collide).
fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("schemacast-corpus-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes `n` purchase-order documents with pairwise-distinct bytes (a
/// trailing comment embeds the index, so equal-shaped documents still get
/// distinct content hashes).
fn write_corpus(dir: &Path, session: &mut Session, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            let xml = po::document_xml(&mut session.alphabet, 1 + i % 7);
            let path = dir.join(format!("doc{i:04}.xml"));
            std::fs::write(&path, format!("{xml}<!-- doc {i} -->")).expect("write doc");
            path
        })
        .collect()
}

fn run(
    engine: &BatchEngine<'_, '_>,
    session: &Session,
    source: &CorpusSource,
    cache: Option<&mut VerdictCache>,
) -> schemacast_engine::CorpusReport {
    engine
        .validate_corpus(source, &session.alphabet, cache, &CorpusOptions::default())
        .expect("corpus run")
}

#[test]
fn warm_rerun_validates_exactly_the_edited_files() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("incremental");
    let n = 20;
    let paths = write_corpus(&dir, &mut session, n);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 4);
    let fp = ctx.fingerprint(&session.alphabet);
    let cache_path = dir.join("verdicts.scvc");

    // Cold: every file is a miss, and the cache persists every verdict.
    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    assert_eq!(cache.load_status(), &CacheLoad::Cold(ColdReason::NoFile));
    let cold = run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    assert_eq!(cold.items.len(), n);
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, n));
    assert!(cold.valid > 0, "fixture must produce real verdicts");
    cache.save(&cache_path).expect("save");

    // Edit exactly k files (distinct content, same verdict class).
    let k = 3;
    assert!(
        k > 0 && k < n,
        "anti-vacuity: the edit set must be a proper subset"
    );
    for (i, path) in paths.iter().take(k).enumerate() {
        let xml = po::document_xml(&mut session.alphabet, 2 + i);
        std::fs::write(path, format!("{xml}<!-- edited {i} -->")).expect("rewrite");
    }

    // Warm: exactly k misses, n-k hits, and the merged report matches a
    // cacheless rerun item for item.
    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    assert!(matches!(cache.load_status(), CacheLoad::Warm { .. }));
    let warm = run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    assert_eq!((warm.cache_hits, warm.cache_misses), (n - k, k));
    let fresh = run(&engine, &session, &CorpusSource::Dir(dir.clone()), None);
    assert_eq!((fresh.cache_hits, fresh.cache_misses), (0, n));
    for (w, f) in warm.items.iter().zip(&fresh.items) {
        assert_eq!(w.path, f.path);
        assert_eq!(w.outcome, f.outcome, "{}", w.path.display());
        let strip = |mut s: schemacast_core::ValidationStats| {
            s.index_build_micros = 0;
            s.cert_check_micros = 0;
            s
        };
        assert_eq!(strip(w.stats), strip(f.stats), "{}", w.path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One panicking document must cost one item, not the corpus: the worker
/// catches the unwind, reports the file as a per-item failure, replaces
/// its scratch state, and keeps draining the queue. Before the catch was
/// added, the panic killed the worker, poisoned the shared receiver lock,
/// and took the whole run down with it. The injected fault (a marker the
/// validator panics on before hashing) exists only in debug builds, so
/// this regression test is debug-only too.
#[cfg(debug_assertions)]
#[test]
fn panicking_validator_costs_one_item_not_the_corpus() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("panic-drain");
    let n = 12;
    let paths = write_corpus(&dir, &mut session, n);
    let victim = 5;
    assert!(victim > 0 && victim < n - 1, "fault must sit mid-corpus");
    std::fs::write(&paths[victim], "<!--corpus-panic-inject-->").expect("inject fault");

    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 4);
    let report = run(&engine, &session, &CorpusSource::Dir(dir.clone()), None);

    assert_eq!(report.items.len(), n, "the run must survive the panic");
    assert_eq!(report.read_failed, 1);
    for (i, item) in report.items.iter().enumerate() {
        assert_eq!(item.path, paths[i], "input order must be preserved");
        if i == victim {
            match &item.outcome {
                ItemOutcome::ReadFailed(msg) => assert!(
                    msg.contains("validator panicked") && msg.contains("injected corpus fault"),
                    "victim message: {msg}"
                ),
                other => panic!("victim reported {other:?}"),
            }
            assert_eq!(item.bytes, 0, "no content-derived data for the victim");
        } else {
            assert!(
                !matches!(item.outcome, ItemOutcome::ReadFailed(_)),
                "{} must get a real verdict",
                item.path.display()
            );
        }
    }

    // The panic item is transient, never cached: a warm rerun records
    // verdicts for everything else and re-hits the fault.
    let fp = ctx.fingerprint(&session.alphabet);
    let cache_path = dir.join("verdicts.scvc");
    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    let cold = run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, n - 1));
    cache.save(&cache_path).expect("save");
    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    let warm = run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    assert_eq!((warm.cache_hits, warm.cache_misses), (n - 1, 0));
    assert_eq!(warm.read_failed, 1, "the fault re-fires on the warm run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn context_change_flushes_everything() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("flush");
    let n = 8;
    write_corpus(&dir, &mut session, n);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 2);
    let fp = ctx.fingerprint(&session.alphabet);
    let cache_path = dir.join("verdicts.scvc");

    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    cache.save(&cache_path).expect("save");

    // Same schemas, different cast options ⇒ different fingerprint ⇒ the
    // whole file is cold and every document revalidates.
    let ablated = CastContext::with_options(
        &source,
        &target,
        &session.alphabet,
        CastOptions {
            use_ida: false,
            ..CastOptions::default()
        },
    );
    let fp2 = ablated.fingerprint(&session.alphabet);
    assert_ne!(fp, fp2);
    let mut cache = VerdictCache::load(&cache_path, fp2, 0);
    assert_eq!(
        cache.load_status(),
        &CacheLoad::Cold(ColdReason::ContextChanged)
    );
    let engine2 = BatchEngine::with_workers(&ablated, 2);
    let rerun = run(
        &engine2,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    assert_eq!((rerun.cache_hits, rerun.cache_misses), (0, n));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn certified_runs_reject_uncertified_caches() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("certify");
    write_corpus(&dir, &mut session, 4);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 2);
    let fp = ctx.fingerprint(&session.alphabet);
    let cache_path = dir.join("verdicts.scvc");

    // Record verdicts under an *uncertified* run (digest 0).
    let mut cache = VerdictCache::load(&cache_path, fp, 0);
    run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    cache.save(&cache_path).expect("save");

    // A --certify run computes its digest from a fresh certification and
    // must refuse the uncertified file outright.
    let cert = engine.certify();
    assert!(cert.all_certified());
    let digest = certification_digest(fp, &cert);
    assert_ne!(digest, 0);
    let certified = VerdictCache::load(&cache_path, fp, digest);
    assert_eq!(
        certified.load_status(),
        &CacheLoad::Cold(ColdReason::NotCertified)
    );

    // Once saved under the certified digest, a later identical certified
    // run warms — and corrupting a single byte makes it cold again.
    let mut cache = VerdictCache::load(&cache_path, fp, digest);
    run(
        &engine,
        &session,
        &CorpusSource::Dir(dir.clone()),
        Some(&mut cache),
    );
    cache.save(&cache_path).expect("save");
    assert!(matches!(
        VerdictCache::load(&cache_path, fp, digest).load_status(),
        CacheLoad::Warm { .. }
    ));
    let mut bytes = std::fs::read(&cache_path).expect("read cache");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&cache_path, &bytes).expect("corrupt");
    assert!(matches!(
        VerdictCache::load(&cache_path, fp, digest).load_status(),
        CacheLoad::Cold(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reports_are_deterministic_across_workers_and_sources() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("determinism");
    let n = 17;
    let paths = write_corpus(&dir, &mut session, n);
    // A malformed document and a subdirectory exercise the walk order.
    let sub = dir.join("sub");
    std::fs::create_dir_all(&sub).expect("mkdir");
    std::fs::write(sub.join("bad.xml"), "<oops").expect("write");
    let ctx = CastContext::new(&source, &target, &session.alphabet);

    let baseline = run(
        &BatchEngine::with_workers(&ctx, 1),
        &session,
        &CorpusSource::Dir(dir.clone()),
        None,
    );
    assert_eq!(baseline.items.len(), n + 1);
    assert_eq!(baseline.malformed, 1);
    // Input order is the sorted walk, so the report is path-sorted here.
    let mut sorted: Vec<PathBuf> = baseline.items.iter().map(|i| i.path.clone()).collect();
    let walked = sorted.clone();
    sorted.sort();
    assert_eq!(walked, sorted);

    for workers in [2, 3, 8] {
        let report = run(
            &BatchEngine::with_workers(&ctx, workers),
            &session,
            &CorpusSource::Dir(dir.clone()),
            None,
        );
        assert_eq!(
            report.deterministic_view(),
            baseline.deterministic_view(),
            "dir walk differs between 1 and {workers} workers"
        );
    }

    // A manifest naming the same files (relative paths, comments, blank
    // lines) yields the same verdicts in manifest order.
    let manifest_path = dir.join("files.txt");
    let mut manifest = String::from("# corpus manifest\n\n");
    for path in paths.iter().rev() {
        manifest.push_str(&format!(
            "{}\n",
            path.file_name().expect("name").to_string_lossy()
        ));
    }
    std::fs::write(&manifest_path, manifest).expect("write manifest");
    let via_manifest = run(
        &BatchEngine::with_workers(&ctx, 4),
        &session,
        &CorpusSource::Manifest(manifest_path),
        None,
    );
    assert_eq!(via_manifest.items.len(), n);
    let manifest_order: Vec<PathBuf> = via_manifest.items.iter().map(|i| i.path.clone()).collect();
    let expected: Vec<PathBuf> = paths.iter().rev().cloned().collect();
    assert_eq!(manifest_order, expected, "manifest order is line order");
    for item in &via_manifest.items {
        let in_dir = baseline
            .items
            .iter()
            .find(|b| b.path == item.path)
            .expect("same file");
        assert_eq!(item.outcome, in_dir.outcome);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_failures_are_per_item_and_never_cached() {
    let (mut session, source, target) = fixture();
    let dir = tmpdir("readfail");
    let mut paths = write_corpus(&dir, &mut session, 3);
    paths.insert(1, dir.join("missing.xml")); // never written
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::with_workers(&ctx, 2);
    let fp = ctx.fingerprint(&session.alphabet);

    let mut cache = VerdictCache::empty(fp, 0);
    let report = run(
        &engine,
        &session,
        &CorpusSource::Paths(paths.clone()),
        Some(&mut cache),
    );
    assert_eq!(
        report.items.len(),
        4,
        "a missing file must not abort the run"
    );
    assert_eq!(report.read_failed, 1);
    assert!(matches!(
        report.items[1].outcome,
        ItemOutcome::ReadFailed(_)
    ));
    // Read failures are transient: they are neither hits nor misses, and
    // the cache records only the three content-derived verdicts.
    assert_eq!((report.cache_hits, report.cache_misses), (0, 3));
    assert_eq!(cache.len(), 3);

    // On a warm rerun the failure repeats (still uncached) while the
    // other three replay from the cache.
    let warm = run(
        &engine,
        &session,
        &CorpusSource::Paths(paths),
        Some(&mut cache),
    );
    assert_eq!((warm.cache_hits, warm.cache_misses), (3, 0));
    assert_eq!(warm.read_failed, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_root_is_an_error_not_an_empty_report() {
    let (session, source, target) = fixture();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::new(&ctx);
    let nowhere = std::env::temp_dir().join("schemacast-no-such-corpus-dir");
    let _ = std::fs::remove_dir_all(&nowhere);
    assert!(engine
        .validate_corpus(
            &CorpusSource::Dir(nowhere.clone()),
            &session.alphabet,
            None,
            &CorpusOptions::default(),
        )
        .is_err());
    assert!(engine
        .validate_corpus(
            &CorpusSource::Manifest(nowhere.join("files.txt")),
            &session.alphabet,
            None,
            &CorpusOptions::default(),
        )
        .is_err());
}
