//! The scoped worker pool: chunked atomic work claiming, deterministic
//! merge.
//!
//! Workers claim contiguous chunks of the index space from one atomic
//! counter. Chunking keeps the counter off the hot path (one fetch-add per
//! chunk, not per item) while still load-balancing skewed batches; the
//! chunk size shrinks with the batch so small batches still spread across
//! all workers. Each worker accumulates `(index, value)` pairs privately —
//! no shared result buffer, no locks — and the caller scatters them back
//! into input order, so the output is independent of scheduling.

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::thread;

/// Maximum items claimed per counter bump.
const MAX_CHUNK: usize = 32;

/// Picks how many items a worker claims at a time.
fn chunk_size(n: usize, workers: usize) -> usize {
    // Aim for ~8 claims per worker over the batch: plenty of rebalancing
    // opportunities without hammering the counter.
    (n / (workers * 8)).clamp(1, MAX_CHUNK)
}

/// Runs `work(i)` for every `i in 0..n` across `workers` threads, returning
/// the results in index order.
pub(crate) fn collect_indexed<T, F>(workers: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    collect_indexed_with(workers, n, || (), |(), i| work(i))
}

/// [`collect_indexed`] with per-worker scratch state: each worker thread
/// calls `init` once and threads the resulting value through every `work`
/// call it claims. Used to give each worker a reusable scratch buffer
/// (e.g. the streaming validator's `SymCache`) with zero cross-document
/// allocation churn and zero sharing between workers.
pub(crate) fn collect_indexed_with<S, T, G, F>(workers: usize, n: usize, init: G, work: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers <= 1 {
        let mut state = init();
        return (0..n).map(|i| work(&mut state, i)).collect();
    }

    let chunk = chunk_size(n, workers);
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, init, work) = (&next, &init, &work);
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // ordering: Relaxed suffices — the counter only
                        // partitions the index space (RMWs are a single
                        // total order per location); results flow back
                        // through the scope join, not through the counter.
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            local.push((i, work(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    // Scatter back into input order.
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, value) in part {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(value);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// Runs `work(i)` for every `i in 0..n`, discarding results.
pub(crate) fn run_indexed<F>(workers: usize, n: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    collect_indexed(workers, n, work);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = collect_indexed(workers, 1000, |i| i * 3);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * 3, "workers={workers}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        assert!(collect_indexed(8, 0, |i| i).is_empty());
        assert_eq!(collect_indexed(8, 1, |i| i + 7), vec![7]);
        assert_eq!(collect_indexed(8, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
        collect_indexed(4, 500, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn per_worker_state_is_private_and_initialized_once_per_thread() {
        // Each worker increments its own counter per item. If the state
        // were shared or re-initialized mid-stream, the per-value counts
        // below would not form the staircase each private counter makes.
        for workers in [1, 2, 4] {
            let out = collect_indexed_with(
                workers,
                200,
                || 0usize,
                |state, _i| {
                    *state += 1;
                    *state
                },
            );
            assert_eq!(out.len(), 200);
            // Each worker that ran contributes exactly one `1`, so at most
            // `workers` states were ever created.
            let ones = out.iter().filter(|&&v| v == 1).count();
            assert!((1..=workers).contains(&ones), "workers={workers}");
            // A private counter emits each value at most once, so the count
            // of items with value v never increases with v.
            let max = *out.iter().max().unwrap();
            for v in 1..max {
                let at = out.iter().filter(|&&x| x == v).count();
                let above = out.iter().filter(|&&x| x == v + 1).count();
                assert!(
                    at >= above,
                    "value {v} seen {at}× but {} seen {above}×",
                    v + 1
                );
            }
        }
    }

    /// Model-checked no-loss/ordering: under `--cfg loomlite` every
    /// bounded interleaving of two workers racing the claim counter is
    /// explored — including both workers bumping past `n` together and
    /// one worker claiming everything before the other starts — and each
    /// schedule must scatter every index back exactly once, in input
    /// order. A normal build runs this once as a smoke test.
    #[test]
    fn model_collect_indexed_loses_nothing_in_any_schedule() {
        loomlite::model(|| {
            let out = collect_indexed_with(
                2,
                3,
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    i * 10
                },
            );
            assert_eq!(out, vec![0, 10, 20], "an index was lost or reordered");
        });
    }

    #[test]
    fn chunks_shrink_with_small_batches() {
        assert_eq!(chunk_size(8, 8), 1);
        assert_eq!(chunk_size(10_000, 4), MAX_CHUNK);
        assert!(chunk_size(100, 4) >= 1);
    }
}
