//! The persistent content-hash verdict cache behind incremental corpus
//! runs.
//!
//! One cache file holds the verdicts of one compiled
//! [`CastContext`](schemacast_core::CastContext): the
//! header records the context fingerprint
//! ([`schemacast_core::context_fingerprint`]) and every entry keys on a
//! 128-bit hash of the document's raw bytes. A re-run after editing k of
//! n files therefore revalidates exactly the k changed files, while any
//! change to either schema, the cast options, or the computed
//! `R_sub`/`R_dis` fixpoints changes the fingerprint and silently turns
//! the whole file cold.
//!
//! **Trust model.** The cache is a performance artifact, never an
//! authority: a file that fails *any* structural check — magic, length,
//! trailing checksum, fingerprint, certification scope — loads as an
//! empty cold cache, indistinguishable from a missing file except for the
//! recorded [`ColdReason`]. A `--certify` run only warms from a file
//! whose [`certification digest`](schemacast_core::certification_digest)
//! matches its own freshly certified context, so certified runs never
//! inherit verdicts recorded without proof-checked preprocessing.
//!
//! **What is cached.** Content-derived verdicts only: valid, invalid,
//! and malformed (including invalid UTF-8), each with the item's
//! [`ValidationStats`] so warm runs replay the same per-item report
//! (wall-clock counters zeroed — they are not content-derived).
//! [`ItemOutcome::ReadFailed`] is transient I/O and is never recorded.

use crate::report::ItemOutcome;
use schemacast_core::{Fnv64, ValidationStats};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Magic + format version; bump the digit to orphan every existing file.
const MAGIC: &[u8; 8] = b"SCVC0001";
/// Number of `u64` words one serialized [`ValidationStats`] occupies.
const STATS_WORDS: usize = 20;

/// Reads a little-endian `u64` at `off` (caller guarantees 8 bytes).
#[inline]
fn load64(bytes: &[u8], off: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(word)
}

/// 128-bit content hash of a document's raw bytes — a cache key, not a
/// MAC. The bulk loop runs four independent multiply-rotate lanes over
/// 32-byte blocks, so the multiply latencies overlap instead of
/// serializing; on the warm-cache path this hash *is* the per-byte cost,
/// so its throughput directly bounds warm docs/sec.
pub fn content_hash(bytes: &[u8]) -> (u64, u64) {
    const M1: u64 = 0x9e37_79b9_7f4a_7c15;
    const M2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let len = bytes.len() as u64;
    let mut l0 = 0x8422_2325_cbf2_9ce4u64 ^ len;
    let mut l1 = 0x2545_f491_4f6c_dd1du64 ^ len.rotate_left(16);
    let mut l2 = 0x9e6c_63d0_876a_46bbu64 ^ len.rotate_left(32);
    let mut l3 = 0xcbf2_9ce4_8422_2325u64 ^ len.rotate_left(48);
    let mut blocks = bytes.chunks_exact(32);
    for block in blocks.by_ref() {
        l0 = (l0 ^ load64(block, 0)).wrapping_mul(M1).rotate_left(27);
        l1 = (l1 ^ load64(block, 8)).wrapping_mul(M2).rotate_left(31);
        l2 = (l2 ^ load64(block, 16)).wrapping_mul(M1).rotate_left(29);
        l3 = (l3 ^ load64(block, 24)).wrapping_mul(M2).rotate_left(25);
    }
    // Cross-fold the lanes so every input word influences both halves.
    let mut h1 = l0.wrapping_mul(M1) ^ l2.rotate_left(19);
    let mut h2 = l1.wrapping_mul(M2) ^ l3.rotate_left(23);
    // Sub-block tail: word-at-a-time, then the final partial word tagged
    // with its length so `"a"` and `"a\0"` stay distinct.
    let mut chunks = blocks.remainder().chunks_exact(8);
    for chunk in chunks.by_ref() {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        h1 = (h1 ^ w).wrapping_mul(M1).rotate_left(27);
        h2 = (h2 ^ w.rotate_left(32)).wrapping_mul(M2).rotate_left(31);
    }
    let mut tail = [0u8; 8];
    let rest = chunks.remainder();
    tail[..rest.len()].copy_from_slice(rest);
    let w = u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56;
    h1 = (h1 ^ w).wrapping_mul(M1);
    h2 = (h2 ^ w.rotate_left(32)).wrapping_mul(M2);
    (
        fmix64(h1 ^ h2.rotate_left(17)),
        fmix64(h2 ^ h1.rotate_left(43)),
    )
}

/// Murmur3's 64-bit finalizer: full avalanche over the accumulator.
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// The cacheable portion of a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerdictKind {
    Valid,
    Invalid,
    Malformed,
}

impl VerdictKind {
    fn code(self) -> u8 {
        match self {
            VerdictKind::Valid => 0,
            VerdictKind::Invalid => 1,
            VerdictKind::Malformed => 2,
        }
    }

    fn from_code(code: u8) -> Option<VerdictKind> {
        match code {
            0 => Some(VerdictKind::Valid),
            1 => Some(VerdictKind::Invalid),
            2 => Some(VerdictKind::Malformed),
            _ => None,
        }
    }
}

/// One cached verdict plus the stats to replay with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    kind: VerdictKind,
    /// The malformed-XML message (empty for valid/invalid).
    message: String,
    /// Per-item stats as recorded, wall-clock counters zeroed.
    stats: ValidationStats,
}

impl CacheEntry {
    /// Builds an entry from a verdict, or `None` for outcomes the cache
    /// must not record ([`ItemOutcome::ReadFailed`] and the batch-only
    /// variants).
    pub fn from_outcome(outcome: &ItemOutcome, stats: ValidationStats) -> Option<CacheEntry> {
        let (kind, message) = match outcome {
            ItemOutcome::Valid => (VerdictKind::Valid, String::new()),
            ItemOutcome::Invalid => (VerdictKind::Invalid, String::new()),
            ItemOutcome::MalformedXml(m) => (VerdictKind::Malformed, m.clone()),
            ItemOutcome::ReadFailed(_)
            | ItemOutcome::EditFailed(_)
            | ItemOutcome::ChainBroken { .. } => return None,
        };
        let mut stats = stats;
        stats.index_build_micros = 0;
        stats.cert_check_micros = 0;
        Some(CacheEntry {
            kind,
            message,
            stats,
        })
    }

    /// The verdict and stats this entry replays.
    pub fn replay(&self) -> (ItemOutcome, ValidationStats) {
        let outcome = match self.kind {
            VerdictKind::Valid => ItemOutcome::Valid,
            VerdictKind::Invalid => ItemOutcome::Invalid,
            VerdictKind::Malformed => ItemOutcome::MalformedXml(self.message.clone()),
        };
        (outcome, self.stats)
    }
}

/// Why a load produced a cold cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColdReason {
    /// No cache file existed (or it was unreadable).
    NoFile,
    /// The file was structurally invalid: bad magic, truncation, trailing
    /// garbage, or a checksum mismatch. The payload names the first check
    /// that failed.
    Corrupt(&'static str),
    /// The file was written under a different compiled context (schema,
    /// options, or relations changed — or the fingerprint format did).
    ContextChanged,
    /// This is a certified run and the file's verdicts were not recorded
    /// under the same certified fingerprint.
    NotCertified,
}

/// How a [`VerdictCache::load`] went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLoad {
    /// Started empty; the reason is diagnostic only.
    Cold(ColdReason),
    /// Entries were trusted and loaded.
    Warm {
        /// Number of entries loaded.
        entries: usize,
    },
}

/// A persistent verdict cache bound to one compiled context.
#[derive(Debug)]
pub struct VerdictCache {
    context_fp: u64,
    /// Certification digest of the *current* run: non-zero iff this run
    /// certified its context. Written to the header on save, so the next
    /// certified run can decide whether to trust the file.
    cert_digest: u64,
    entries: HashMap<(u64, u64), CacheEntry>,
    load: CacheLoad,
}

impl VerdictCache {
    /// An empty cache for a context (no backing file yet).
    ///
    /// `cert_digest` is this run's certification digest, or 0 for an
    /// uncertified run; it scopes both what the cache will *trust* on
    /// load and what it *records* on save.
    pub fn empty(context_fp: u64, cert_digest: u64) -> VerdictCache {
        VerdictCache {
            context_fp,
            cert_digest,
            entries: HashMap::new(),
            load: CacheLoad::Cold(ColdReason::NoFile),
        }
    }

    /// Loads `path` for a context, trusting entries only if every
    /// structural and scope check passes; any failure yields an empty
    /// cold cache (see the module docs — a cache is never an authority,
    /// so load itself cannot fail).
    pub fn load(path: &Path, context_fp: u64, cert_digest: u64) -> VerdictCache {
        let mut cache = VerdictCache::empty(context_fp, cert_digest);
        let Ok(bytes) = std::fs::read(path) else {
            return cache;
        };
        match parse(&bytes, context_fp, cert_digest) {
            Ok(entries) => {
                cache.load = CacheLoad::Warm {
                    entries: entries.len(),
                };
                cache.entries = entries;
            }
            Err(reason) => cache.load = CacheLoad::Cold(reason),
        }
        cache
    }

    /// How the load went.
    pub fn load_status(&self) -> &CacheLoad {
        &self.load
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a content hash, if any.
    pub fn get(&self, hash: (u64, u64)) -> Option<&CacheEntry> {
        self.entries.get(&hash)
    }

    /// Records (or replaces) the entry for a content hash.
    pub fn insert(&mut self, hash: (u64, u64), entry: CacheEntry) {
        self.entries.insert(hash, entry);
    }

    /// Writes the cache atomically (temp file + rename), in sorted hash
    /// order so identical caches produce byte-identical files.
    ///
    /// # Errors
    /// Propagates I/O errors from the temp write or the rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut buf = Vec::with_capacity(64 + self.entries.len() * (24 + STATS_WORDS * 8));
        buf.extend_from_slice(MAGIC);
        push_u64(&mut buf, self.context_fp);
        push_u64(&mut buf, self.cert_digest);
        push_u64(&mut buf, STATS_WORDS as u64);
        push_u64(&mut buf, self.entries.len() as u64);
        let mut keys: Vec<&(u64, u64)> = self.entries.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let entry = &self.entries[key];
            push_u64(&mut buf, key.0);
            push_u64(&mut buf, key.1);
            buf.push(entry.kind.code());
            push_u64(&mut buf, entry.message.len() as u64);
            buf.extend_from_slice(entry.message.as_bytes());
            for word in stats_words(entry.stats) {
                push_u64(&mut buf, word);
            }
        }
        let mut check = Fnv64::new();
        check.write(&buf);
        push_u64(&mut buf, check.finish());

        // The temp name must be unique per saver: with a fixed name, two
        // concurrent saves interleave write/rename on the same temp file
        // and can publish a torn cache (found by the loomlite cache-save
        // model; see tests/conc_model.rs).
        let tmp = unique_tmp_path(path);
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }
}

/// A sibling temp path no concurrent saver collides with: process id
/// plus a process-global counter. Two threads saving the same cache get
/// distinct temp files, and the final rename decides the winner — the
/// published file is always one complete save.
fn unique_tmp_path(path: &Path) -> PathBuf {
    use loomlite::sync::atomic::{AtomicU64, Ordering};
    static SAVE_IDS: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — the counter only needs uniqueness (RMWs form a
    // single total order per location); nothing else is published.
    let n = SAVE_IDS.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{}.{n}.tmp", std::process::id()));
    path.with_file_name(name)
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// The fixed serialization order of [`ValidationStats`] — all fields,
/// explicitly, so adding a field without updating this (and the reader)
/// is a compile error via the exhaustive destructuring.
fn stats_words(s: ValidationStats) -> [u64; STATS_WORDS] {
    let ValidationStats {
        nodes_visited,
        content_symbols_scanned,
        subsumed_skips,
        disjoint_rejects,
        ida_early_accepts,
        ida_early_rejects,
        full_validations,
        value_checks,
        static_skips,
        static_rejects,
        script_skips,
        script_rejects,
        bytes_skipped,
        events_avoided,
        index_build_micros,
        tape_events,
        tape_skip_hops,
        certs_emitted,
        certs_checked,
        cert_check_micros,
    } = s;
    [
        nodes_visited as u64,
        content_symbols_scanned as u64,
        subsumed_skips as u64,
        disjoint_rejects as u64,
        ida_early_accepts as u64,
        ida_early_rejects as u64,
        full_validations as u64,
        value_checks as u64,
        static_skips as u64,
        static_rejects as u64,
        script_skips as u64,
        script_rejects as u64,
        bytes_skipped as u64,
        events_avoided as u64,
        index_build_micros as u64,
        tape_events as u64,
        tape_skip_hops as u64,
        certs_emitted as u64,
        certs_checked as u64,
        cert_check_micros as u64,
    ]
}

fn stats_from_words(w: &[u64; STATS_WORDS]) -> ValidationStats {
    ValidationStats {
        nodes_visited: w[0] as usize,
        content_symbols_scanned: w[1] as usize,
        subsumed_skips: w[2] as usize,
        disjoint_rejects: w[3] as usize,
        ida_early_accepts: w[4] as usize,
        ida_early_rejects: w[5] as usize,
        full_validations: w[6] as usize,
        value_checks: w[7] as usize,
        static_skips: w[8] as usize,
        static_rejects: w[9] as usize,
        script_skips: w[10] as usize,
        script_rejects: w[11] as usize,
        bytes_skipped: w[12] as usize,
        events_avoided: w[13] as usize,
        index_build_micros: w[14] as usize,
        tape_events: w[15] as usize,
        tape_skip_hops: w[16] as usize,
        certs_emitted: w[17] as usize,
        certs_checked: w[18] as usize,
        cert_check_micros: w[19] as usize,
    }
}

/// A bounds-checked little-endian reader over the raw file.
struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], ColdReason> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ColdReason::Corrupt("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, ColdReason> {
        let mut word = [0u8; 8];
        word.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(word))
    }

    fn u8(&mut self) -> Result<u8, ColdReason> {
        Ok(self.take(1)?[0])
    }
}

fn parse(
    bytes: &[u8],
    context_fp: u64,
    cert_digest: u64,
) -> Result<HashMap<(u64, u64), CacheEntry>, ColdReason> {
    // Checksum first: it covers everything else, so a flipped bit
    // anywhere — header, entries, even the magic — reads as corrupt.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(ColdReason::Corrupt("shorter than header"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let mut check = Fnv64::new();
    check.write(body);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(trailer);
    if check.finish() != u64::from_le_bytes(stored) {
        return Err(ColdReason::Corrupt("checksum mismatch"));
    }

    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(ColdReason::Corrupt("bad magic"));
    }
    if r.u64()? != context_fp {
        return Err(ColdReason::ContextChanged);
    }
    let stored_digest = r.u64()?;
    // A certified run trusts only verdicts recorded under its own
    // certified fingerprint; an uncertified run trusts either.
    if cert_digest != 0 && stored_digest != cert_digest {
        return Err(ColdReason::NotCertified);
    }
    if r.u64()? != STATS_WORDS as u64 {
        return Err(ColdReason::Corrupt("stats layout changed"));
    }
    let count = r.u64()?;
    let mut entries = HashMap::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        let hash = (r.u64()?, r.u64()?);
        let kind =
            VerdictKind::from_code(r.u8()?).ok_or(ColdReason::Corrupt("unknown verdict kind"))?;
        let msg_len =
            usize::try_from(r.u64()?).map_err(|_| ColdReason::Corrupt("oversized message"))?;
        let message = String::from_utf8(r.take(msg_len)?.to_vec())
            .map_err(|_| ColdReason::Corrupt("non-UTF-8 message"))?;
        let mut words = [0u64; STATS_WORDS];
        for word in &mut words {
            *word = r.u64()?;
        }
        entries.insert(
            hash,
            CacheEntry {
                kind,
                message,
                stats: stats_from_words(&words),
            },
        );
    }
    if r.pos != body.len() {
        return Err(ColdReason::Corrupt("trailing garbage"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("schemacast-cache-{}-{name}", std::process::id()));
        p
    }

    fn sample_entry(kind_outcome: &ItemOutcome, visits: usize) -> CacheEntry {
        let stats = ValidationStats {
            nodes_visited: visits,
            index_build_micros: 999, // must be zeroed on record
            ..ValidationStats::default()
        };
        CacheEntry::from_outcome(kind_outcome, stats).expect("cacheable")
    }

    #[test]
    fn content_hash_separates_and_is_stable() {
        let a = content_hash(b"<doc>1</doc>");
        assert_eq!(a, content_hash(b"<doc>1</doc>"));
        assert_ne!(a, content_hash(b"<doc>2</doc>"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_ne!(content_hash(b"\0"), content_hash(b"\0\0"));
        // Tail bytes beyond the last full word must matter.
        assert_ne!(content_hash(b"12345678a"), content_hash(b"12345678b"));
    }

    #[test]
    fn roundtrip_preserves_entries_and_zeroes_clocks() {
        let path = temp("roundtrip");
        let mut cache = VerdictCache::empty(42, 0);
        cache.insert((1, 2), sample_entry(&ItemOutcome::Valid, 7));
        cache.insert(
            (3, 4),
            sample_entry(&ItemOutcome::MalformedXml("boom at 3:1".into()), 0),
        );
        cache.insert((5, 6), sample_entry(&ItemOutcome::Invalid, 9));
        cache.save(&path).expect("save");

        let loaded = VerdictCache::load(&path, 42, 0);
        assert_eq!(loaded.load_status(), &CacheLoad::Warm { entries: 3 });
        let (outcome, stats) = loaded.get((1, 2)).expect("hit").replay();
        assert_eq!(outcome, ItemOutcome::Valid);
        assert_eq!(stats.nodes_visited, 7);
        assert_eq!(stats.index_build_micros, 0, "clocks are not content");
        let (outcome, _) = loaded.get((3, 4)).expect("hit").replay();
        assert_eq!(outcome, ItemOutcome::MalformedXml("boom at 3:1".into()));
        assert!(loaded.get((9, 9)).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_fingerprint_is_cold() {
        let path = temp("fingerprint");
        let mut cache = VerdictCache::empty(42, 0);
        cache.insert((1, 2), sample_entry(&ItemOutcome::Valid, 1));
        cache.save(&path).expect("save");
        let loaded = VerdictCache::load(&path, 43, 0);
        assert_eq!(
            loaded.load_status(),
            &CacheLoad::Cold(ColdReason::ContextChanged)
        );
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn certified_runs_trust_only_their_own_digest() {
        let path = temp("certified");
        let mut cache = VerdictCache::empty(42, 0xBEEF);
        cache.insert((1, 2), sample_entry(&ItemOutcome::Valid, 1));
        cache.save(&path).expect("save");

        // Same certified digest: warm. Different digest or a digest
        // against an uncertified file: cold.
        assert!(matches!(
            VerdictCache::load(&path, 42, 0xBEEF).load_status(),
            CacheLoad::Warm { entries: 1 }
        ));
        assert_eq!(
            VerdictCache::load(&path, 42, 0xDEAD).load_status(),
            &CacheLoad::Cold(ColdReason::NotCertified)
        );
        // An uncertified run may reuse certified verdicts.
        assert!(matches!(
            VerdictCache::load(&path, 42, 0).load_status(),
            CacheLoad::Warm { entries: 1 }
        ));

        let mut uncertified = VerdictCache::empty(42, 0);
        uncertified.insert((1, 2), sample_entry(&ItemOutcome::Valid, 1));
        uncertified.save(&path).expect("save");
        assert_eq!(
            VerdictCache::load(&path, 42, 0xBEEF).load_status(),
            &CacheLoad::Cold(ColdReason::NotCertified)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_corruption_is_detected() {
        let path = temp("corrupt");
        let mut cache = VerdictCache::empty(42, 0);
        cache.insert((1, 2), sample_entry(&ItemOutcome::Valid, 7));
        cache.insert(
            (3, 4),
            sample_entry(&ItemOutcome::MalformedXml("msg".into()), 1),
        );
        cache.save(&path).expect("save");
        let original = std::fs::read(&path).expect("read back");

        // Flip every single byte in turn: nothing may load warm.
        for i in 0..original.len() {
            let mut bytes = original.clone();
            bytes[i] ^= 0x40;
            std::fs::write(&path, &bytes).expect("write corrupt");
            let loaded = VerdictCache::load(&path, 42, 0);
            assert!(
                matches!(loaded.load_status(), CacheLoad::Cold(_)),
                "flipped byte {i} still loaded warm"
            );
            assert!(loaded.is_empty());
        }
        // Truncate at every length: same.
        for len in 0..original.len() {
            std::fs::write(&path, &original[..len]).expect("write truncated");
            assert!(
                matches!(
                    VerdictCache::load(&path, 42, 0).load_status(),
                    CacheLoad::Cold(_)
                ),
                "truncation to {len} still loaded warm"
            );
        }
        // Appended garbage: same.
        let mut bytes = original.clone();
        bytes.push(0);
        std::fs::write(&path, &bytes).expect("write extended");
        assert!(matches!(
            VerdictCache::load(&path, 42, 0).load_status(),
            CacheLoad::Cold(_)
        ));
        // And the pristine file still loads.
        std::fs::write(&path, &original).expect("restore");
        assert!(matches!(
            VerdictCache::load(&path, 42, 0).load_status(),
            CacheLoad::Warm { entries: 2 }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_failures_are_never_cached() {
        assert!(CacheEntry::from_outcome(
            &ItemOutcome::ReadFailed("enoent".into()),
            ValidationStats::default()
        )
        .is_none());
    }

    #[test]
    fn save_is_deterministic() {
        let (p1, p2) = (temp("det1"), temp("det2"));
        let mut a = VerdictCache::empty(7, 0);
        let mut b = VerdictCache::empty(7, 0);
        // Insert in different orders; files must still be identical.
        let entries = [
            ((1u64, 1u64), sample_entry(&ItemOutcome::Valid, 1)),
            ((2, 2), sample_entry(&ItemOutcome::Invalid, 2)),
            ((3, 3), sample_entry(&ItemOutcome::Valid, 3)),
        ];
        for (k, e) in &entries {
            a.insert(*k, e.clone());
        }
        for (k, e) in entries.iter().rev() {
            b.insert(*k, e.clone());
        }
        a.save(&p1).expect("save");
        b.save(&p2).expect("save");
        assert_eq!(
            std::fs::read(&p1).expect("read"),
            std::fs::read(&p2).expect("read")
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}
