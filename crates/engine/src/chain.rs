//! Batch revalidation against a schema-evolution chain.
//!
//! [`ChainEngine`] is the chain-level sibling of
//! [`BatchEngine`](crate::BatchEngine): it borrows a preprocessed
//! [`SchemaChain`] and fans documents (or whole migration scripts) across
//! the same scoped worker pool.
//!
//! * [`ChainEngine::validate_docs`] is the one-pass path: each
//!   `v_1`-document gets its `v_N` verdict from the chain's *endpoint*
//!   context — a single cast exploiting the chain-level subsumption skips
//!   and disjointness rejects, never one revalidation per hop.
//! * [`ChainEngine::validate_migrations`] verifies one migration script
//!   (an edit batch per hop) per item, preferring the per-hop static
//!   fast path; a script that fails mid-chain comes back as
//!   [`ItemOutcome::ChainBroken`] naming the breaking hop.

use crate::{default_workers, pool, BatchEngine, BatchReport, ItemOutcome, ItemReport};
use schemacast_core::chain::{certify_chain, ChainCertificationRun, HopVerdict, SchemaChain};
use schemacast_core::ValidationStats;
use schemacast_tree::{Doc, Edit};
use std::borrow::Borrow;
use std::num::NonZeroUsize;
use std::time::Instant;

/// A batch engine over one preprocessed schema-evolution chain.
pub struct ChainEngine<'c, 's> {
    chain: &'c SchemaChain<'s>,
    workers: NonZeroUsize,
}

impl<'c, 's> ChainEngine<'c, 's> {
    /// An engine using all available parallelism.
    pub fn new(chain: &'c SchemaChain<'s>) -> ChainEngine<'c, 's> {
        Self::with_workers(chain, default_workers().get())
    }

    /// An engine with an explicit worker count (`0` means the default).
    pub fn with_workers(chain: &'c SchemaChain<'s>, workers: usize) -> ChainEngine<'c, 's> {
        ChainEngine {
            chain,
            workers: NonZeroUsize::new(workers).unwrap_or_else(default_workers),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// The underlying chain.
    pub fn chain(&self) -> &'c SchemaChain<'s> {
        self.chain
    }

    /// Warms the endpoint pair's product-IDA cache in parallel (the cache
    /// the one-pass path hits). Returns the number of IDAs materialized.
    pub fn warm_up(&self) -> usize {
        BatchEngine::with_workers(self.chain.endpoint(), self.workers.get()).warm_up()
    }

    /// Certifies the whole chain — per-hop bundles, the endpoint bundle,
    /// and the composition certificates — via the independent checker.
    pub fn certify(&self) -> ChainCertificationRun {
        certify_chain(self.chain)
    }

    /// One-pass chain revalidation of a batch of `v_1`-documents: each
    /// verdict is against `v_N`, computed by the endpoint cast alone.
    pub fn validate_docs<D>(&self, docs: &[D]) -> BatchReport
    where
        D: Borrow<Doc> + Sync,
    {
        BatchEngine::with_workers(self.chain.endpoint(), self.workers.get()).validate_docs(docs)
    }

    /// Verifies a batch of migration scripts: each item is a `v_1`-valid
    /// document plus one edit batch per hop, and the verdict is whether
    /// the migration stays valid hop by hop (static fast path preferred —
    /// see [`SchemaChain::verify_script`]). Per-item stats are the fold of
    /// the hop stats, so chain-level `static_skips` / `static_rejects`
    /// surface in the batch totals.
    ///
    /// # Panics
    ///
    /// Panics if any item's script length differs from
    /// [`SchemaChain::hop_count`].
    pub fn validate_migrations<D>(&self, items: &[(D, Vec<Vec<Edit>>)]) -> BatchReport
    where
        D: Borrow<Doc> + Sync,
    {
        let started = Instant::now();
        let reports = pool::collect_indexed(self.workers.get(), items.len(), |i| {
            let (doc, scripts) = &items[i];
            let report = self.chain.verify_script(doc.borrow(), scripts);
            let mut stats = ValidationStats::default();
            for hop in &report.hops {
                stats += hop.stats;
            }
            let outcome = match report.breaking_hop {
                None => ItemOutcome::Valid,
                Some(hop) => match &report.hops[report.hops.len() - 1].verdict {
                    HopVerdict::EditFailed(e) => ItemOutcome::EditFailed(e.clone()),
                    _ => ItemOutcome::ChainBroken { hop },
                },
            };
            ItemReport { outcome, stats }
        });
        BatchReport::from_items(reports, self.workers.get(), started.elapsed())
    }
}
