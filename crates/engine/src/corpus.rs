//! Corpus-scale streaming revalidation: bounded-memory pipeline over a
//! directory tree or manifest, with optional verdict caching.
//!
//! The in-memory batch paths ([`BatchEngine::validate_xml`] and friends)
//! assume the caller already holds every document; at corpus scale that
//! is exactly the wrong shape. This module walks the input *lazily* —
//! paths flow from one producer thread through a bounded queue to the
//! worker pool, so at any instant the process holds at most
//! `queue_capacity` pending paths plus one memory-mapped document per
//! worker. Memory is O(workers), never O(corpus), regardless of how many
//! files the tree holds.
//!
//! Large documents are memory-mapped ([`mmapio::Mmap`]) and streamed
//! through the zero-copy tape validator straight off the mapping; small
//! ones (below [`CorpusOptions::mmap_threshold`]) go through a reused
//! per-worker read buffer instead, which beats the map/unmap syscall
//! pair at that size. Either way a corpus run never materializes a list
//! of document bodies. With a
//! [`VerdictCache`], each document's content hash is looked up before
//! parsing: hits replay the recorded verdict and stats without touching
//! the validator, so a warm re-run after editing k of n files validates
//! exactly k documents.
//!
//! Reports are deterministic: items come back in *input order* — sorted
//! walk order for [`CorpusSource::Dir`], line order for
//! [`CorpusSource::Manifest`], given order for [`CorpusSource::Paths`] —
//! whatever the worker count or scheduling.

use crate::cache::{content_hash, CacheEntry, VerdictCache};
use crate::report::ItemOutcome;
use crate::BatchEngine;
use loomlite::sync::mpsc::SyncSender;
use loomlite::sync::Mutex;
use loomlite::thread;
use mmapio::Mmap;
use schemacast_core::ValidationStats;
use schemacast_regex::Alphabet;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Where a corpus comes from.
#[derive(Debug, Clone)]
pub enum CorpusSource {
    /// Every `*.xml` file under a directory tree, in sorted depth-first
    /// order (directories and files interleaved lexicographically, so the
    /// order is stable across filesystems).
    Dir(PathBuf),
    /// One path per line of a manifest file, in line order. Blank lines
    /// and `#` comments are skipped; relative paths resolve against the
    /// manifest's own directory.
    Manifest(PathBuf),
    /// An explicit path list, in the given order.
    Paths(Vec<PathBuf>),
}

/// Tuning knobs for a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Capacity of the producer→worker path queue; `0` means
    /// `64 × workers`. This bounds how far the walker can run ahead of
    /// the validators — the corpus-scale memory ceiling. Slots hold only
    /// a path, so a deep queue is still small; depth matters because
    /// every producer/worker handoff on a saturated queue is a context
    /// switch, and a few hundred paths of slack amortizes that to noise.
    pub queue_capacity: usize,
    /// Memory-map documents instead of reading them (on by default).
    /// Mapping failures fall back to buffered reads per file either way;
    /// this knob exists for benchmarking the difference.
    pub use_mmap: bool,
    /// Files smaller than this many bytes are read into a reused
    /// per-worker buffer even when `use_mmap` is on: for small documents
    /// the map/unmap syscall pair and page-table churn cost more than
    /// one buffered read, and the warm-cache path is dominated by
    /// exactly that fixed per-file cost. Larger files still map
    /// zero-copy. `0` maps everything.
    pub mmap_threshold: u64,
}

impl Default for CorpusOptions {
    fn default() -> CorpusOptions {
        CorpusOptions {
            queue_capacity: 0,
            use_mmap: true,
            mmap_threshold: 256 * 1024,
        }
    }
}

/// The verdict for one corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusItem {
    /// The file's path as walked (manifest-relative paths are resolved).
    pub path: PathBuf,
    /// The verdict.
    pub outcome: ItemOutcome,
    /// Per-item validator counters (replayed from the cache on a hit).
    pub stats: ValidationStats,
    /// Whether the verdict came from the cache.
    pub cached: bool,
    /// Document size in bytes (0 if the file could not be read).
    pub bytes: u64,
    /// Whether the document bytes came from an actual memory mapping.
    pub mapped: bool,
}

/// The result of one corpus run.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-file reports, in input order.
    pub items: Vec<CorpusItem>,
    /// Sum of all per-item stats.
    pub totals: ValidationStats,
    /// Number of [`ItemOutcome::Valid`] items.
    pub valid: usize,
    /// Number of [`ItemOutcome::Invalid`] items.
    pub invalid: usize,
    /// Number of [`ItemOutcome::MalformedXml`] items.
    pub malformed: usize,
    /// Number of [`ItemOutcome::ReadFailed`] items.
    pub read_failed: usize,
    /// Verdicts replayed from the cache.
    pub cache_hits: usize,
    /// Documents that went through the validator (read but uncached;
    /// read failures count in neither bucket).
    pub cache_misses: usize,
    /// Total bytes served via actual memory mappings.
    pub bytes_mmapped: u64,
    /// Total bytes served via buffered reads (mmap off or unavailable).
    pub bytes_read: u64,
    /// Worker count the run used.
    pub workers: usize,
    /// Wall-clock time (excluded from determinism guarantees).
    pub elapsed: Duration,
}

impl CorpusReport {
    fn from_items(items: Vec<CorpusItem>, workers: usize, elapsed: Duration) -> CorpusReport {
        let mut totals = ValidationStats::default();
        let (mut valid, mut invalid, mut malformed, mut read_failed) = (0, 0, 0, 0);
        let (mut cache_hits, mut cache_misses) = (0, 0);
        let (mut bytes_mmapped, mut bytes_read) = (0u64, 0u64);
        for item in &items {
            totals += item.stats;
            match &item.outcome {
                ItemOutcome::Valid => valid += 1,
                ItemOutcome::Invalid | ItemOutcome::ChainBroken { .. } => invalid += 1,
                ItemOutcome::MalformedXml(_) => malformed += 1,
                ItemOutcome::EditFailed(_) | ItemOutcome::ReadFailed(_) => read_failed += 1,
            }
            if matches!(item.outcome, ItemOutcome::ReadFailed(_)) {
                // Not a hit, not a miss: nothing content-derived happened.
            } else if item.cached {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
            if item.mapped {
                bytes_mmapped += item.bytes;
            } else {
                bytes_read += item.bytes;
            }
        }
        CorpusReport {
            items,
            totals,
            valid,
            invalid,
            malformed,
            read_failed,
            cache_hits,
            cache_misses,
            bytes_mmapped,
            bytes_read,
            workers,
            elapsed,
        }
    }

    /// Whether every file validated.
    pub fn all_valid(&self) -> bool {
        self.valid == self.items.len()
    }

    /// Documents per second of wall-clock time.
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.items.len() as f64 / secs
    }

    /// The deterministic portion of the report — everything except
    /// timing, worker count, and the mmap-vs-read byte split (which
    /// depends on whether the OS granted a mapping, not on the input).
    /// Per-item wall-clock counters are zeroed as in
    /// [`crate::BatchReport::deterministic_view`].
    pub fn deterministic_view(&self) -> CorpusView {
        let strip = |mut s: ValidationStats| {
            s.index_build_micros = 0;
            s.cert_check_micros = 0;
            s
        };
        CorpusView {
            items: self
                .items
                .iter()
                .map(|i| {
                    (
                        i.path.clone(),
                        i.outcome.clone(),
                        strip(i.stats),
                        i.cached,
                        i.bytes,
                    )
                })
                .collect(),
            totals: strip(self.totals),
            valid: self.valid,
            invalid: self.invalid,
            malformed: self.malformed,
            read_failed: self.read_failed,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
        }
    }
}

/// See [`CorpusReport::deterministic_view`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusView {
    /// `(path, outcome, stats, cached, bytes)` per item, in input order.
    pub items: Vec<(PathBuf, ItemOutcome, ValidationStats, bool, u64)>,
    /// Folded stats, wall-clock counters zeroed.
    pub totals: ValidationStats,
    /// As on [`CorpusReport`].
    pub valid: usize,
    /// As on [`CorpusReport`].
    pub invalid: usize,
    /// As on [`CorpusReport`].
    pub malformed: usize,
    /// As on [`CorpusReport`].
    pub read_failed: usize,
    /// As on [`CorpusReport`].
    pub cache_hits: usize,
    /// As on [`CorpusReport`].
    pub cache_misses: usize,
}

/// One unit of work in the path queue: just an index and a path — never
/// document bytes, so the queue's memory footprint is bounded by
/// `queue_capacity` paths no matter how large the corpus is. A walk
/// error travels as a pre-made failure so it still lands at the right
/// position in the report.
struct Work {
    idx: usize,
    path: PathBuf,
    walk_error: Option<String>,
}

/// A cache insert discovered on a miss: content hash plus the entry to
/// record, carried out of the worker scope and applied afterwards.
type PendingInsert = Option<((u64, u64), CacheEntry)>;

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

impl<'c, 's> BatchEngine<'c, 's> {
    /// Revalidates a corpus with bounded memory, streaming paths from
    /// `source` through a bounded queue to the worker pool.
    ///
    /// With a [`VerdictCache`], verdicts for unchanged documents are
    /// replayed without parsing, and freshly computed content-derived
    /// verdicts are recorded back into the cache when the run finishes
    /// (the caller persists with [`VerdictCache::save`]).
    ///
    /// # Errors
    /// Fails only if the source itself is unusable — the root directory
    /// or manifest cannot be opened. Per-file failures never abort the
    /// run; they become [`ItemOutcome::ReadFailed`] items.
    pub fn validate_corpus(
        &self,
        source: &CorpusSource,
        alphabet: &Alphabet,
        mut cache: Option<&mut VerdictCache>,
        options: &CorpusOptions,
    ) -> io::Result<CorpusReport> {
        let started = Instant::now();
        let workers = self.workers();
        let capacity = if options.queue_capacity == 0 {
            workers * 64
        } else {
            options.queue_capacity
        };
        let use_mmap = options.use_mmap;
        let mmap_threshold = options.mmap_threshold;

        // Open the source *before* spawning anything, so a missing root
        // is a clean error rather than an empty report.
        let mut producer = Producer::open(source)?;

        let cache_snapshot: Option<&VerdictCache> = cache.as_deref();
        let (tx, rx) = loomlite::sync::mpsc::sync_channel::<Work>(capacity);
        let rx = Mutex::new(rx);

        // Workers return their private result piles; inserts discovered
        // on misses ride along and are applied to the cache after the
        // scope ends (the snapshot borrow is read-only inside).
        type Pile = Vec<(usize, CorpusItem, PendingInsert)>;
        let piles: Vec<Pile> = thread::scope(|scope| {
            scope.spawn(move || producer.feed(tx));
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = &rx;
                    scope.spawn(move || {
                        let mut scratch = schemacast_core::StreamScratch::default();
                        // Reused for sub-threshold files; holds at most
                        // one document, so memory stays O(workers).
                        let mut buffer: Vec<u8> = Vec::new();
                        let mut pile: Pile = Vec::new();
                        loop {
                            // The receiver lock is released before any
                            // document is touched, and process_one below
                            // never unwinds past its catch, so a poisoned
                            // lock cannot happen on this path; the branch
                            // stays as defense in depth.
                            let work = match rx.lock() {
                                Ok(guard) => guard.recv(),
                                Err(_) => break,
                            };
                            let Ok(work) = work else { break };
                            let (idx, path) = (work.idx, work.path.clone());
                            // One bad document must cost one item, not
                            // the corpus: a panicking validator yields a
                            // per-item failure and the worker keeps
                            // draining. Unwind safety: the only shared
                            // structures process_one touches are the
                            // publish-once caches, whose locks never
                            // guard user code mid-panic; the per-worker
                            // scratch and buffer are replaced wholesale
                            // below.
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    self.process_one(
                                        work,
                                        alphabet,
                                        cache_snapshot,
                                        use_mmap,
                                        mmap_threshold,
                                        &mut buffer,
                                        &mut scratch,
                                    )
                                }));
                            match caught {
                                Ok((item, insert)) => pile.push((item.0, item.1, insert)),
                                Err(payload) => {
                                    scratch = schemacast_core::StreamScratch::default();
                                    buffer = Vec::new();
                                    let msg = panic_message(payload.as_ref());
                                    pile.push((
                                        idx,
                                        CorpusItem {
                                            path,
                                            outcome: ItemOutcome::ReadFailed(format!(
                                                "validator panicked: {msg}"
                                            )),
                                            stats: ValidationStats::default(),
                                            cached: false,
                                            bytes: 0,
                                            mapped: false,
                                        },
                                        None,
                                    ));
                                }
                            }
                        }
                        pile
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(pile) => pile,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut indexed: Vec<(usize, CorpusItem)> = Vec::new();
        for pile in piles {
            for (idx, item, insert) in pile {
                if let (Some(cache), Some((hash, entry))) = (cache.as_deref_mut(), insert) {
                    cache.insert(hash, entry);
                }
                indexed.push((idx, item));
            }
        }
        indexed.sort_unstable_by_key(|(idx, _)| *idx);
        let items = indexed.into_iter().map(|(_, item)| item).collect();
        Ok(CorpusReport::from_items(items, workers, started.elapsed()))
    }

    /// Validates one corpus file: map (or read), hash, cache lookup,
    /// validate on a miss. Runs on a worker thread; the document's bytes
    /// live only for the duration of this call.
    #[allow(clippy::too_many_arguments)]
    fn process_one(
        &self,
        work: Work,
        alphabet: &Alphabet,
        cache: Option<&VerdictCache>,
        use_mmap: bool,
        mmap_threshold: u64,
        buffer: &mut Vec<u8>,
        scratch: &mut schemacast_core::StreamScratch,
    ) -> ((usize, CorpusItem), PendingInsert) {
        let Work {
            idx,
            path,
            walk_error,
        } = work;
        let fail = |message: String| {
            (
                (
                    idx,
                    CorpusItem {
                        path: path.clone(),
                        outcome: ItemOutcome::ReadFailed(message),
                        stats: ValidationStats::default(),
                        cached: false,
                        bytes: 0,
                        mapped: false,
                    },
                ),
                None,
            )
        };
        if let Some(message) = walk_error {
            return fail(message);
        }
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) => return fail(e.to_string()),
        };
        // Hold either a mapping or the reused buffer; `bytes` borrows
        // whichever. Small files skip the mapping: one buffered read is
        // cheaper than the map/unmap pair, which is what the warm-cache
        // path spends nearly all of its time on.
        let file_len = match file.metadata() {
            Ok(m) => m.len(),
            Err(e) => return fail(e.to_string()),
        };
        let mapping;
        let (bytes, mapped): (&[u8], bool) = if use_mmap && file_len >= mmap_threshold {
            mapping = match Mmap::map(&file) {
                Ok(m) => m,
                Err(e) => return fail(e.to_string()),
            };
            (mapping.as_bytes(), mapping.is_mapped())
        } else {
            buffer.clear();
            let mut reader = &file;
            if let Err(e) = reader.read_to_end(buffer) {
                return fail(e.to_string());
            }
            (&buffer[..], false)
        };

        // Debug-only fault injection for the panic-drain regression test:
        // a document opening with this marker panics the validator before
        // anything is hashed or cached.
        #[cfg(debug_assertions)]
        assert!(
            !bytes.starts_with(b"<!--corpus-panic-inject-->"),
            "injected corpus fault"
        );

        let hash = content_hash(bytes);
        let len = bytes.len() as u64;
        if let Some(entry) = cache.and_then(|c| c.get(hash)) {
            let (outcome, stats) = entry.replay();
            return (
                (
                    idx,
                    CorpusItem {
                        path,
                        outcome,
                        stats,
                        cached: true,
                        bytes: len,
                        mapped,
                    },
                ),
                None,
            );
        }

        let report = match std::str::from_utf8(bytes) {
            // Content-derived, so cached like any other malformed input.
            Err(e) => crate::ItemReport {
                outcome: ItemOutcome::MalformedXml(format!("invalid UTF-8: {e}")),
                stats: ValidationStats::default(),
            },
            Ok(text) => self.validate_one_xml(text, alphabet, scratch),
        };
        let insert = CacheEntry::from_outcome(&report.outcome, report.stats).map(|e| (hash, e));
        (
            (
                idx,
                CorpusItem {
                    path,
                    outcome: report.outcome,
                    stats: report.stats,
                    cached: false,
                    bytes: len,
                    mapped,
                },
            ),
            insert,
        )
    }
}

/// The producer half of the pipeline: opened on the caller's thread (so
/// open errors surface as `io::Error`), then driven to completion on a
/// dedicated thread, blocking on the bounded queue whenever the workers
/// fall behind.
enum Producer {
    Dir(PathBuf),
    Manifest {
        dir: PathBuf,
        reader: BufReader<File>,
    },
    Paths(std::vec::IntoIter<PathBuf>),
}

impl Producer {
    fn open(source: &CorpusSource) -> io::Result<Producer> {
        match source {
            CorpusSource::Dir(root) => {
                // Probe now: a missing root is the caller's error.
                std::fs::read_dir(root)?;
                Ok(Producer::Dir(root.clone()))
            }
            CorpusSource::Manifest(path) => {
                let file = File::open(path)?;
                let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
                Ok(Producer::Manifest {
                    dir,
                    reader: BufReader::new(file),
                })
            }
            CorpusSource::Paths(paths) => Ok(Producer::Paths(paths.clone().into_iter())),
        }
    }

    /// Streams every work unit into the queue. A send failing means every
    /// worker is gone (all panicked); the scope join will surface that,
    /// so sends here just stop.
    fn feed(&mut self, tx: SyncSender<Work>) {
        let mut idx = 0usize;
        let mut send = |path: PathBuf, walk_error: Option<String>| {
            let work = Work {
                idx,
                path,
                walk_error,
            };
            idx += 1;
            tx.send(work).is_ok()
        };
        match self {
            Producer::Dir(root) => {
                walk_sorted(root.clone(), &mut send);
            }
            Producer::Manifest { dir, reader } => {
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => {
                            let entry = line.trim();
                            if entry.is_empty() || entry.starts_with('#') {
                                continue;
                            }
                            let path = dir.join(entry);
                            if !send(path, None) {
                                break;
                            }
                        }
                        Err(e) => {
                            // Position the failure where the line would
                            // have been, then stop: the reader's state
                            // after a mid-stream error is unknown.
                            send(PathBuf::from("<manifest>"), Some(e.to_string()));
                            break;
                        }
                    }
                }
            }
            Producer::Paths(paths) => {
                for path in paths {
                    if !send(path, None) {
                        break;
                    }
                }
            }
        }
    }
}

/// Depth-first sorted walk emitting every `*.xml` file. Directories that
/// fail to list become in-order [`ItemOutcome::ReadFailed`] items rather
/// than aborting the walk. Returns `false` once the queue is closed.
fn walk_sorted(dir: PathBuf, send: &mut impl FnMut(PathBuf, Option<String>) -> bool) -> bool {
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => return send(dir, Some(e.to_string())),
    };
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in entries {
        match entry {
            Ok(entry) => names.push(entry.path()),
            Err(e) => {
                if !send(dir.clone(), Some(e.to_string())) {
                    return false;
                }
            }
        }
    }
    names.sort_unstable();
    for path in names {
        let alive = if path.is_dir() {
            walk_sorted(path, send)
        } else if path.extension().is_some_and(|e| e == "xml") {
            send(path, None)
        } else {
            true
        };
        if !alive {
            return false;
        }
    }
    true
}
