#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Parallel batch revalidation engine.
//!
//! The paper's economics are "preprocess a schema pair once, revalidate many
//! documents cheaply" — the shape of a high-throughput revalidation service.
//! This crate supplies the service half: [`BatchEngine`] shards a batch of
//! documents (in-memory [`Doc`]s, raw XML text, or a [`BatchItem`] mix)
//! across a [`std::thread::scope`] worker pool running over one shared
//! [`CastContext`].
//!
//! Design points:
//!
//! * **No external dependencies** — plain scoped threads and an atomic
//!   work counter; workers claim contiguous chunks of the input, so cores
//!   stay busy even when per-document cost is skewed.
//! * **Deterministic output** — [`BatchReport::items`] is in input order
//!   and per-item [`schemacast_core::ValidationStats`] are exact, whatever
//!   the scheduling;
//!   batch totals are folded in input order. Identical batches give
//!   byte-identical reports at any worker count (asserted by tests).
//! * **Contention-free warm-up** — [`BatchEngine::warm_up`] precomputes the
//!   reachable product IDAs in parallel at preprocessing time, leaning on
//!   the sharded, build-outside-the-lock IDA cache in `schemacast-core`.
//! * **Chain batches** — [`ChainEngine`] runs the same pool over a
//!   preprocessed schema-evolution chain: one-pass `(v_1, v_N)` document
//!   verdicts and per-item migration-script verification with chain-level
//!   static skips/rejects folded into the batch totals.
//! * **Corpus scale** — [`BatchEngine::validate_corpus`] streams an
//!   on-disk tree or manifest through a bounded path queue with memory
//!   O(workers), mmap-or-read adaptive I/O, and a persistent
//!   content-hash [`VerdictCache`] so a re-run after editing k of n
//!   files revalidates exactly k documents (see [`corpus`] and
//!   [`cache`]).

pub mod cache;
mod chain;
pub mod corpus;
mod pool;
mod report;

pub use cache::{content_hash, CacheEntry, CacheLoad, ColdReason, VerdictCache};
pub use chain::ChainEngine;
pub use corpus::{CorpusItem, CorpusOptions, CorpusReport, CorpusSource, CorpusView};
pub use report::{BatchReport, ItemOutcome, ItemReport};

use schemacast_core::certify::{certify_context, CertificationRun};
use schemacast_core::{CastContext, ModsValidator, StreamScratch, StreamingCast};
use schemacast_regex::Alphabet;
use schemacast_tree::{DeltaDoc, Doc, Edit};
use std::borrow::Borrow;
use std::num::NonZeroUsize;
use std::time::Instant;

/// One unit of work in a mixed batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchItem<'d> {
    /// An already-parsed document, validated by the tree walker.
    Doc(&'d Doc),
    /// Raw XML text, validated by [`StreamingCast`] without building a tree.
    Xml(&'d str),
}

/// A batch revalidation engine over one preprocessed schema pair.
///
/// The engine itself is cheap: it borrows the [`CastContext`] and holds only
/// the worker count, so constructing one per batch is fine.
pub struct BatchEngine<'c, 's> {
    ctx: &'c CastContext<'s>,
    workers: NonZeroUsize,
    static_fastpath: bool,
}

impl<'c, 's> BatchEngine<'c, 's> {
    /// An engine using all available parallelism.
    pub fn new(ctx: &'c CastContext<'s>) -> BatchEngine<'c, 's> {
        Self::with_workers(ctx, default_workers().get())
    }

    /// An engine with an explicit worker count (`0` means the default).
    pub fn with_workers(ctx: &'c CastContext<'s>, workers: usize) -> BatchEngine<'c, 's> {
        let workers = NonZeroUsize::new(workers).unwrap_or_else(default_workers);
        BatchEngine {
            ctx,
            workers,
            static_fastpath: true,
        }
    }

    /// Enables or disables the static update-safety fast path used by
    /// [`BatchEngine::validate_edited`] (on by default). With it off every
    /// edited item takes the dynamic Δ-revalidation path — useful for
    /// benchmarking the fast path's contribution and for differential
    /// testing.
    pub fn with_static_fastpath(mut self, enabled: bool) -> BatchEngine<'c, 's> {
        self.static_fastpath = enabled;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// The underlying context.
    pub fn context(&self) -> &'c CastContext<'s> {
        self.ctx
    }

    /// Eagerly builds every reachable product IDA in parallel, so the batch
    /// proper starts with a fully warm cache. Returns the number of IDAs
    /// materialized. Safe to call repeatedly (later calls are cheap hits).
    pub fn warm_up(&self) -> usize {
        if !self.ctx.options().use_ida {
            return 0;
        }
        let pairs = self.ctx.reachable_pairs();
        pool::run_indexed(self.workers.get(), pairs.len(), |i| {
            let (s, t) = pairs[i];
            let _ = self.ctx.product_ida(s, t);
        });
        pairs.len()
    }

    /// Certifies every static claim the engine's fast paths rely on —
    /// relation memberships, IDA decision sets, safety-matrix verdicts —
    /// and validates the certificates with the independent checker. A
    /// batch driver that calls this first (and checks
    /// [`CertificationRun::all_certified`]) runs with proof-carrying
    /// preprocessing: no `static_skips` / `static_rejects` decision rests
    /// on an unchecked fixpoint. Certification is warm-up-shaped work
    /// (per-pair, read-only), so it shares the context's IDA cache with
    /// [`BatchEngine::warm_up`].
    pub fn certify(&self) -> CertificationRun {
        certify_context(self.ctx)
    }

    /// Revalidates a batch of parsed documents.
    ///
    /// `docs` may be `&[Doc]`, `&[&Doc]`, or anything else that borrows
    /// [`Doc`]; results come back in input order.
    pub fn validate_docs<D>(&self, docs: &[D]) -> BatchReport
    where
        D: Borrow<Doc> + Sync,
    {
        self.run(docs.len(), |i| self.validate_one_doc(docs[i].borrow()))
    }

    /// Revalidates a batch of raw XML texts in streaming mode (no document
    /// trees are built; memory per worker is O(depth)).
    ///
    /// Each worker drives the zero-copy pull parser through a private
    /// reusable [`StreamScratch`], so label resolution, the stage-1
    /// structural tape, and the per-document product-IDA memo all allocate
    /// once per worker rather than once per document; subsumed subtrees are
    /// skipped lexically, and the bytes/events so avoided are surfaced in the batch
    /// report's folded [`schemacast_core::ValidationStats`]
    /// (`bytes_skipped` / `events_avoided`).
    pub fn validate_xml<S>(&self, texts: &[S], alphabet: &Alphabet) -> BatchReport
    where
        S: AsRef<str> + Sync,
    {
        self.run_with_scratch(texts.len(), |scratch, i| {
            self.validate_one_xml(texts[i].as_ref(), alphabet, scratch)
        })
    }

    /// Revalidates a mixed batch of documents and raw XML.
    pub fn validate_items(&self, items: &[BatchItem<'_>], alphabet: &Alphabet) -> BatchReport {
        self.run_with_scratch(items.len(), |scratch, i| match items[i] {
            BatchItem::Doc(doc) => self.validate_one_doc(doc),
            BatchItem::Xml(text) => self.validate_one_xml(text, alphabet, scratch),
        })
    }

    /// Revalidates a batch of *edited* documents: each item is an original
    /// document (valid for the source schema) plus an edit script, and the
    /// verdict is for the edited result against the target schema.
    ///
    /// When the static fast path is enabled (the default), each script is
    /// first run through the update-safety analyzer
    /// ([`CastContext::validate_edited_static`]): scripts whose edits are
    /// all statically decided never apply the edits at all — the document
    /// is accepted via an edit-site-exempt cast (`static_skips`) or
    /// rejected outright (`static_rejects`). Scripts the per-edit analyzer
    /// cannot decide then go through the *script-level* analyzer
    /// ([`CastContext::validate_edited_script`]): the edits on each touched
    /// site are composed into one net effect, normalized, and judged over
    /// the site's concrete child word (`script_skips`/`script_rejects`).
    /// Everything else falls back to Δ-encoding the edits and running the
    /// schema-cast-with-modifications validator; scripts that fail to
    /// apply become [`ItemOutcome::EditFailed`] items.
    pub fn validate_edited<D>(&self, items: &[(D, Vec<Edit>)]) -> BatchReport
    where
        D: Borrow<Doc> + Sync,
    {
        let mods = ModsValidator::new(self.ctx);
        self.run(items.len(), |i| {
            let (doc, edits) = &items[i];
            let doc = doc.borrow();
            if self.static_fastpath {
                if let Some((outcome, stats)) = self.ctx.validate_edited_static(doc, edits) {
                    return ItemReport {
                        outcome: ItemOutcome::from_cast(outcome),
                        stats,
                    };
                }
                if let Some((outcome, stats)) = self.ctx.validate_edited_script(doc, edits) {
                    return ItemReport {
                        outcome: ItemOutcome::from_cast(outcome),
                        stats,
                    };
                }
            }
            let mut dd = DeltaDoc::new(doc.clone());
            if let Err(e) = dd.apply_all(edits) {
                return ItemReport {
                    outcome: ItemOutcome::EditFailed(e.to_string()),
                    stats: Default::default(),
                };
            }
            let (outcome, stats) = mods.validate_with_stats(&dd);
            ItemReport {
                outcome: ItemOutcome::from_cast(outcome),
                stats,
            }
        })
    }

    fn validate_one_doc(&self, doc: &Doc) -> ItemReport {
        let (outcome, stats) = self.ctx.validate_with_stats(doc);
        ItemReport {
            outcome: ItemOutcome::from_cast(outcome),
            stats,
        }
    }

    fn validate_one_xml(
        &self,
        text: &str,
        alphabet: &Alphabet,
        scratch: &mut StreamScratch,
    ) -> ItemReport {
        match StreamingCast::new(self.ctx).validate_str_with(text, alphabet, scratch) {
            Ok((outcome, stats)) => ItemReport {
                outcome: ItemOutcome::from_cast(outcome),
                stats,
            },
            Err(e) => ItemReport {
                outcome: ItemOutcome::MalformedXml(e.to_string()),
                stats: Default::default(),
            },
        }
    }

    /// Fans `produce` out over the pool and folds the deterministic report.
    fn run(&self, n: usize, produce: impl Fn(usize) -> ItemReport + Sync) -> BatchReport {
        let started = Instant::now();
        let items = pool::collect_indexed(self.workers.get(), n, produce);
        BatchReport::from_items(items, self.workers.get(), started.elapsed())
    }

    /// [`run`](Self::run) with a per-worker [`StreamScratch`] threaded
    /// through every call, for the streaming paths.
    fn run_with_scratch(
        &self,
        n: usize,
        produce: impl Fn(&mut StreamScratch, usize) -> ItemReport + Sync,
    ) -> BatchReport {
        let started = Instant::now();
        let items =
            pool::collect_indexed_with(self.workers.get(), n, StreamScratch::default, produce);
        BatchReport::from_items(items, self.workers.get(), started.elapsed())
    }
}

/// `available_parallelism`, defaulting to 1 where it is unobservable.
pub fn default_workers() -> NonZeroUsize {
    loomlite::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}
