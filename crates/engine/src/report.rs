//! Batch results: per-item verdicts in input order plus folded totals.

use schemacast_core::{CastOutcome, ValidationStats};
use std::time::Duration;

/// The verdict for one batch item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome {
    /// Valid with respect to the target schema.
    Valid,
    /// Not valid with respect to the target schema.
    Invalid,
    /// The raw XML input was not well-formed (streaming inputs only).
    MalformedXml(String),
    /// The edit script could not be applied to the document (edited
    /// batches only).
    EditFailed(String),
    /// A migration script broke at this hop of a schema chain (chain
    /// batches only; counted with the invalid items).
    ChainBroken {
        /// 0-based index of the first hop whose verdict failed.
        hop: usize,
    },
    /// The input file could not be read at all (corpus/file batches only):
    /// missing, permission denied, or an I/O error mid-read. Unlike
    /// [`ItemOutcome::MalformedXml`] this says nothing about the content,
    /// so it is transient — the verdict cache never records it.
    ReadFailed(String),
}

impl ItemOutcome {
    pub(crate) fn from_cast(outcome: CastOutcome) -> ItemOutcome {
        if outcome.is_valid() {
            ItemOutcome::Valid
        } else {
            ItemOutcome::Invalid
        }
    }

    /// Whether the item validated.
    pub fn is_valid(&self) -> bool {
        matches!(self, ItemOutcome::Valid)
    }
}

/// Verdict and cost counters for one batch item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemReport {
    /// The verdict.
    pub outcome: ItemOutcome,
    /// The validator's cost counters for this item alone.
    pub stats: ValidationStats,
}

/// The result of one batch run.
///
/// `items` is in input order regardless of how work was scheduled, and
/// `totals` is folded from `items` in input order — so two runs of the same
/// batch agree on everything except `elapsed`, whatever the worker counts.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-item reports, in input order.
    pub items: Vec<ItemReport>,
    /// Sum of all per-item stats.
    pub totals: ValidationStats,
    /// Number of [`ItemOutcome::Valid`] items.
    pub valid: usize,
    /// Number of [`ItemOutcome::Invalid`] items.
    pub invalid: usize,
    /// Number of [`ItemOutcome::MalformedXml`] items.
    pub malformed: usize,
    /// Number of [`ItemOutcome::EditFailed`] items.
    pub edit_failed: usize,
    /// Number of [`ItemOutcome::ReadFailed`] items.
    pub read_failed: usize,
    /// Worker count the batch ran with.
    pub workers: usize,
    /// Wall-clock time of the batch (excluded from determinism guarantees).
    pub elapsed: Duration,
}

impl BatchReport {
    pub(crate) fn from_items(
        items: Vec<ItemReport>,
        workers: usize,
        elapsed: Duration,
    ) -> BatchReport {
        let mut totals = ValidationStats::default();
        let (mut valid, mut invalid, mut malformed, mut edit_failed, mut read_failed) =
            (0, 0, 0, 0, 0);
        for item in &items {
            totals += item.stats;
            match item.outcome {
                ItemOutcome::Valid => valid += 1,
                ItemOutcome::Invalid | ItemOutcome::ChainBroken { .. } => invalid += 1,
                ItemOutcome::MalformedXml(_) => malformed += 1,
                ItemOutcome::EditFailed(_) => edit_failed += 1,
                ItemOutcome::ReadFailed(_) => read_failed += 1,
            }
        }
        BatchReport {
            items,
            totals,
            valid,
            invalid,
            malformed,
            edit_failed,
            read_failed,
            workers,
            elapsed,
        }
    }

    /// Whether every item validated.
    pub fn all_valid(&self) -> bool {
        self.valid == self.items.len()
    }

    /// Documents per second of wall-clock time.
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.items.len() as f64 / secs
    }

    /// The deterministic portion of the report (everything except timing
    /// and worker count) — what batch-identity tests should compare.
    ///
    /// Wall-clock counters *inside* the stats
    /// ([`ValidationStats::index_build_micros`],
    /// [`ValidationStats::cert_check_micros`]) are zeroed in the view: they
    /// vary run to run by construction, like `elapsed`.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_view(
        &self,
    ) -> (
        Vec<ItemReport>,
        ValidationStats,
        usize,
        usize,
        usize,
        usize,
        usize,
    ) {
        let strip = |mut s: ValidationStats| {
            s.index_build_micros = 0;
            s.cert_check_micros = 0;
            s
        };
        let items = self
            .items
            .iter()
            .map(|i| ItemReport {
                outcome: i.outcome.clone(),
                stats: strip(i.stats),
            })
            .collect();
        (
            items,
            strip(self.totals),
            self.valid,
            self.invalid,
            self.malformed,
            self.edit_failed,
            self.read_failed,
        )
    }
}
