//! Validation statistics — the instrumentation behind Table 3 and the
//! cost accounting of every benchmark.

use std::ops::AddAssign;

/// Counters collected during one validation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Tree nodes the validator descended into (the paper's "nodes visited",
    /// Table 3). Skipped subtrees contribute only their root.
    pub nodes_visited: usize,
    /// Symbols consumed by content-model automata.
    pub content_symbols_scanned: usize,
    /// Subtrees skipped because their type pair is in `R_sub`.
    pub subsumed_skips: usize,
    /// Validations cut short because a type pair is disjoint.
    pub disjoint_rejects: usize,
    /// Content-model checks decided early by an immediate-accept state.
    pub ida_early_accepts: usize,
    /// Content-model checks decided early by an immediate-reject state.
    pub ida_early_rejects: usize,
    /// Subtrees validated from scratch (inserted content, or no source
    /// type available).
    pub full_validations: usize,
    /// Simple values checked against facets.
    pub value_checks: usize,
    /// Edited documents accepted by the static fast path (all edits
    /// statically `Safe`; the edited subtrees were never inspected).
    pub static_skips: usize,
    /// Edited documents rejected by the static fast path (some edit
    /// statically `Unsafe`; the document was never inspected).
    pub static_rejects: usize,
    /// Edited documents accepted by the *script-level* analyzer: the
    /// whole script's net effect per touched site was statically decided
    /// valid, after normalization, without applying the edits.
    pub script_skips: usize,
    /// Edited documents rejected by the script-level analyzer: some
    /// site's net child word can never be target-valid.
    pub script_rejects: usize,
    /// Raw bytes the streaming validator scanned past without tokenization
    /// (lexical subtree skipping). Tree validators and the depth-counting
    /// event path leave this 0 — the bytes of a skipped subtree are still
    /// *read* by the scanner's state machine, but never lexed into names,
    /// attributes, or entity-resolved text.
    pub bytes_skipped: usize,
    /// Start/end tag events that were never tokenized because the subtree
    /// containing them was skipped lexically. A self-closing tag counts as
    /// two (the `Start`/`End` pair it would have produced); the skipped
    /// element's own end tag is included.
    pub events_avoided: usize,
    /// Wall-clock microseconds spent building the stage-1 structural index
    /// (the tape) before streaming validation. Paths that do not build a
    /// tape (tree validators, the generic event path) leave this 0.
    pub index_build_micros: usize,
    /// Structural tape entries produced by the stage-1 indexer for the
    /// validated document(s).
    pub tape_events: usize,
    /// Subtree skips served as O(1) tape hops (cursor jump to the matching
    /// end tag's tape entry) rather than byte rescans. On the tape-fed
    /// path every lexical skip is a hop; the scalar reference lexer and
    /// the depth-counting event path leave this 0.
    pub tape_skip_hops: usize,
    /// Certificates emitted by the certification pass (`--certify`): every
    /// static claim packaged for the independent checker.
    pub certs_emitted: usize,
    /// Objects the independent checker examined (DFA tables plus
    /// certificates of every kind).
    pub certs_checked: usize,
    /// Wall-clock microseconds the independent checker spent validating.
    pub cert_check_micros: usize,
}

impl AddAssign for ValidationStats {
    fn add_assign(&mut self, rhs: ValidationStats) {
        self.nodes_visited += rhs.nodes_visited;
        self.content_symbols_scanned += rhs.content_symbols_scanned;
        self.subsumed_skips += rhs.subsumed_skips;
        self.disjoint_rejects += rhs.disjoint_rejects;
        self.ida_early_accepts += rhs.ida_early_accepts;
        self.ida_early_rejects += rhs.ida_early_rejects;
        self.full_validations += rhs.full_validations;
        self.value_checks += rhs.value_checks;
        self.static_skips += rhs.static_skips;
        self.static_rejects += rhs.static_rejects;
        self.script_skips += rhs.script_skips;
        self.script_rejects += rhs.script_rejects;
        self.bytes_skipped += rhs.bytes_skipped;
        self.events_avoided += rhs.events_avoided;
        self.index_build_micros += rhs.index_build_micros;
        self.tape_events += rhs.tape_events;
        self.tape_skip_hops += rhs.tape_skip_hops;
        self.certs_emitted += rhs.certs_emitted;
        self.certs_checked += rhs.certs_checked;
        self.cert_check_micros += rhs.cert_check_micros;
    }
}

/// The result of a validation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastOutcome {
    /// The document is valid with respect to the target schema.
    Valid,
    /// The document is not valid with respect to the target schema.
    Invalid,
}

impl CastOutcome {
    /// Whether the outcome is [`CastOutcome::Valid`].
    pub fn is_valid(self) -> bool {
        matches!(self, CastOutcome::Valid)
    }

    /// Builds an outcome from a boolean.
    pub fn from_bool(b: bool) -> CastOutcome {
        if b {
            CastOutcome::Valid
        } else {
            CastOutcome::Invalid
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut a = ValidationStats {
            nodes_visited: 3,
            content_symbols_scanned: 5,
            ..Default::default()
        };
        let b = ValidationStats {
            nodes_visited: 2,
            subsumed_skips: 1,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.content_symbols_scanned, 5);
        assert_eq!(a.subsumed_skips, 1);
    }

    #[test]
    fn outcome_helpers() {
        assert!(CastOutcome::Valid.is_valid());
        assert!(!CastOutcome::Invalid.is_valid());
        assert_eq!(CastOutcome::from_bool(true), CastOutcome::Valid);
        assert_eq!(CastOutcome::from_bool(false), CastOutcome::Invalid);
    }
}
