//! Schema-evolution chains: the version-graph registry, composed
//! end-to-end cast relations, one-pass chain validation, and statically
//! verified multi-hop migration scripts.
//!
//! A [`SchemaChain`] holds an ordered chain `v_1 → v_2 → … → v_N` with one
//! [`CastContext`] per hop plus one *endpoint* context over the composed
//! `(v_1, v_N)` pair. Two static layers answer chain questions:
//!
//! * **Composition** ([`schemacast_automata::compose_chain`]): per-hop
//!   `R_sub`/`R_dis` tables joined end to end where the joins are sound —
//!   subsumption composes transitively, disjointness only transports
//!   through a subsumption prefix (`sub* · dis`). A pair decided here comes
//!   with the full middle-type tuple `(τ_1, …, τ_N)`, which is exactly what
//!   a composition certificate ([`certify_chain`]) records.
//! * **Endpoint fallback**: pairs the composition cannot decide fall back
//!   to the exact fixpoints (and, at validation time, the product IDA)
//!   computed directly over the `(v_1, v_N)` pair.
//!
//! One-pass validation of a document against the whole chain is the
//! endpoint context's validation — no per-hop revalidation — and the
//! chain-level [`SafetyMatrix`] is the endpoint's, interned through its
//! sharded caches.
//!
//! [`SchemaChain::verify_script`] checks a whole migration script (one edit
//! batch per hop) against the chain: each hop takes the static fast path
//! where the PR 2 safety analysis decides it (an `Unsafe` edit rejects with
//! no revalidation; all-`Safe` edits get the exemption walk) and falls back
//! to incremental revalidation otherwise, folding per-hop verdicts into a
//! chain verdict that names the first hop that breaks.

use crate::cast::CastContext;
use crate::certify::certify_context;
use crate::diag::{Diagnostic, Severity};
use crate::mods::ModsValidator;
use crate::safety::SafetyMatrix;
use crate::stats::{CastOutcome, ValidationStats};
use schemacast_automata::{compose_chain, BitSet, ComposedLevel, HopRelations, NO_MID};
use schemacast_certify::{
    check_chain_bundle, ChainBundle, ChainCheckReport, CompCert, CompClaim, CompStep,
};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, TypeId};
use schemacast_tree::{DeltaDoc, Doc, Edit};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Why a chain could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A chain needs at least two schema versions; this many were given.
    TooShort(usize),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::TooShort(n) => {
                write!(f, "a schema chain needs at least 2 versions, got {n}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// How a composed end-to-end fact was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposedVia {
    /// Sound hop-by-hop composition (`sub·sub` / `sub·dis`), with a
    /// middle-type tuple recoverable via [`SchemaChain::sub_tuple`] /
    /// [`SchemaChain::dis_tuple`].
    Composition,
    /// The fallback: the relation computed directly over the composed
    /// `(v_1, v_N)` pair.
    EndpointPair,
}

/// The end-to-end relation of one `(v_1, v_N)` type pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRelation {
    /// `L(τ_1) ⊆ L(τ_N)`.
    Subsumed(ComposedVia),
    /// `L(τ_1) ∩ L(τ_N) = ∅`.
    Disjoint(ComposedVia),
    /// Neither relation holds.
    Neither,
}

/// How many endpoint-relation pairs the hop-by-hop composition decided
/// versus how many needed the composed-pair fallback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompositionStats {
    /// Endpoint-subsumed pairs the composition also derives.
    pub composed_sub: usize,
    /// Endpoint-subsumed pairs only the endpoint fixpoint sees.
    pub fallback_sub: usize,
    /// Endpoint-disjoint pairs the composition also derives.
    pub composed_dis: usize,
    /// Endpoint-disjoint pairs only the endpoint fixpoint sees.
    pub fallback_dis: usize,
}

/// An ordered schema-evolution chain with per-hop and endpoint contexts.
///
/// Construction preprocesses every hop pair *and* the `(v_1, v_N)`
/// endpoint pair, then composes the hop relations (see the module docs).
pub struct SchemaChain<'a> {
    schemas: &'a [AbstractSchema],
    hops: Vec<CastContext<'a>>,
    endpoint: CastContext<'a>,
    levels: Vec<ComposedLevel>,
}

impl<'a> SchemaChain<'a> {
    /// Builds the chain over `schemas` in evolution order (`v_1` first).
    pub fn new(
        schemas: &'a [AbstractSchema],
        alphabet: &Alphabet,
    ) -> Result<SchemaChain<'a>, ChainError> {
        if schemas.len() < 2 {
            return Err(ChainError::TooShort(schemas.len()));
        }
        let hops: Vec<CastContext<'a>> = schemas
            .windows(2)
            .map(|w| CastContext::new(&w[0], &w[1], alphabet))
            .collect();
        let endpoint = CastContext::new(
            schemas.first().expect("len >= 2"),
            schemas.last().expect("len >= 2"),
            alphabet,
        );
        let tables: Vec<HopRelations> = hops.iter().map(hop_tables).collect();
        let levels = compose_chain(&tables);
        Ok(SchemaChain {
            schemas,
            hops,
            endpoint,
            levels,
        })
    }

    /// The schema versions, in evolution order.
    pub fn schemas(&self) -> &[AbstractSchema] {
        self.schemas
    }

    /// Number of hops (`versions - 1`).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The per-hop contexts, in evolution order.
    pub fn hops(&self) -> &[CastContext<'a>] {
        &self.hops
    }

    /// The composed `(v_1, v_N)` endpoint context — the authority for
    /// one-pass chain validation and the chain-level safety matrix.
    pub fn endpoint(&self) -> &CastContext<'a> {
        &self.endpoint
    }

    /// The end-to-end relation of a `(v_1, v_N)` type pair, preferring the
    /// composed derivation (which carries a certificate-ready tuple) over
    /// the endpoint fallback.
    pub fn composed_relation(&self, s: TypeId, t: TypeId) -> ChainRelation {
        let level = &self.levels[0];
        if level.subsumed(s.0 as usize, t.0 as usize) {
            return ChainRelation::Subsumed(ComposedVia::Composition);
        }
        if level.disjoint(s.0 as usize, t.0 as usize) {
            return ChainRelation::Disjoint(ComposedVia::Composition);
        }
        let rel = self.endpoint.relations();
        if rel.subsumed(s, t) {
            ChainRelation::Subsumed(ComposedVia::EndpointPair)
        } else if rel.disjoint(s, t) {
            ChainRelation::Disjoint(ComposedVia::EndpointPair)
        } else {
            ChainRelation::Neither
        }
    }

    /// The middle-type tuple `(τ_1, τ_2, …, τ_N)` witnessing a composed
    /// subsumption, if the composition derives it.
    pub fn sub_tuple(&self, s: TypeId, t: TypeId) -> Option<Vec<TypeId>> {
        self.tuple(s, t, false)
    }

    /// The tuple witnessing a composed disjointness (`sub* · dis` — the
    /// disjoint step is the final hop), if the composition derives it.
    pub fn dis_tuple(&self, s: TypeId, t: TypeId) -> Option<Vec<TypeId>> {
        self.tuple(s, t, true)
    }

    fn tuple(&self, s: TypeId, t: TypeId, dis: bool) -> Option<Vec<TypeId>> {
        let mut cur = s.0 as usize;
        let col = t.0 as usize;
        let mut out = vec![s];
        for level in &self.levels {
            let q = cur * level.cols + col;
            let (present, mid) = if dis {
                (level.dis[q], level.dis_mid[q])
            } else {
                (level.sub[q], level.sub_mid[q])
            };
            if !present {
                return None;
            }
            if mid == NO_MID {
                out.push(t);
                return Some(out);
            }
            out.push(TypeId(mid));
            cur = mid as usize;
        }
        unreachable!("the last composed level always has NO_MID middles")
    }

    /// One-pass validation of a `v_1`-document against `v_N` — the
    /// endpoint cast, no per-hop revalidation.
    pub fn validate(&self, doc: &Doc) -> CastOutcome {
        self.endpoint.validate(doc)
    }

    /// As [`SchemaChain::validate`], with instrumentation.
    pub fn validate_with_stats(&self, doc: &Doc) -> (CastOutcome, ValidationStats) {
        self.endpoint.validate_with_stats(doc)
    }

    /// The chain-level safety matrix: edit-kind verdicts for every
    /// analyzable `(v_1, v_N)` pair, interned through the endpoint
    /// context's caches.
    pub fn safety_matrix(&self) -> SafetyMatrix {
        self.endpoint.safety_matrix()
    }

    /// Splits the endpoint relations into composition-decided and
    /// fallback-only pairs.
    pub fn composition_stats(&self) -> CompositionStats {
        let rel = self.endpoint.relations();
        let level = &self.levels[0];
        let mut stats = CompositionStats::default();
        for s in self.schemas[0].type_ids() {
            for t in self.schemas[self.schemas.len() - 1].type_ids() {
                let (si, ti) = (s.0 as usize, t.0 as usize);
                if rel.subsumed(s, t) {
                    if level.subsumed(si, ti) {
                        stats.composed_sub += 1;
                    } else {
                        stats.fallback_sub += 1;
                    }
                }
                if rel.disjoint(s, t) {
                    if level.disjoint(si, ti) {
                        stats.composed_dis += 1;
                    } else {
                        stats.fallback_dis += 1;
                    }
                }
            }
        }
        stats
    }

    /// Verifies a whole migration script against the chain: `scripts[i]`
    /// is the edit batch taking a `v_{i+1}`-valid document to `v_{i+2}`.
    ///
    /// Each hop prefers the static path — an `Unsafe` edit shape rejects
    /// with no revalidation ([`HopVerdict::StaticReject`]), all-`Safe`
    /// shapes get the exemption walk — and falls back to incremental
    /// revalidation of the delta document otherwise. The first failing hop
    /// stops the walk and becomes
    /// [`ChainScriptReport::breaking_hop`].
    ///
    /// # Panics
    ///
    /// Panics if `scripts.len() != self.hop_count()`.
    pub fn verify_script(&self, doc: &Doc, scripts: &[Vec<Edit>]) -> ChainScriptReport {
        assert_eq!(
            scripts.len(),
            self.hop_count(),
            "one edit batch per hop required"
        );
        let mut current = doc.clone();
        let mut hops = Vec::with_capacity(self.hops.len());
        let mut breaking_hop = None;
        for (i, (ctx, edits)) in self.hops.iter().zip(scripts).enumerate() {
            let mut dd = DeltaDoc::new(current.clone());
            if let Err(e) = dd.apply_all(edits) {
                hops.push(HopReport {
                    hop: i,
                    verdict: HopVerdict::EditFailed(e.to_string()),
                    stats: ValidationStats::default(),
                });
                breaking_hop = Some(i);
                break;
            }
            let (outcome, stats) = match ctx.validate_edited_static(&current, edits) {
                Some(static_result) => static_result,
                None => ModsValidator::new(ctx).validate_with_stats(&dd),
            };
            let verdict = if outcome.is_valid() {
                HopVerdict::Valid
            } else if stats.static_rejects > 0 {
                HopVerdict::StaticReject
            } else {
                HopVerdict::Invalid
            };
            let ok = outcome.is_valid();
            hops.push(HopReport {
                hop: i,
                verdict,
                stats,
            });
            if !ok {
                breaking_hop = Some(i);
                break;
            }
            current = dd.committed();
        }
        ChainScriptReport { hops, breaking_hop }
    }
}

/// Extracts one hop's `R_sub`/`R_dis` membership into the dense tables the
/// composition pass consumes.
fn hop_tables(ctx: &CastContext<'_>) -> HopRelations {
    let rows = ctx.source().type_count();
    let cols = ctx.target().type_count();
    let rel = ctx.relations();
    let mut sub = vec![BitSet::new(cols); rows];
    let mut dis = vec![BitSet::new(cols); rows];
    for s in ctx.source().type_ids() {
        for t in ctx.target().type_ids() {
            if rel.subsumed(s, t) {
                sub[s.0 as usize].insert(t.0 as usize);
            }
            if rel.disjoint(s, t) {
                dis[s.0 as usize].insert(t.0 as usize);
            }
        }
    }
    HopRelations {
        rows,
        cols,
        sub,
        dis,
    }
}

/// One hop's outcome inside [`ChainScriptReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HopVerdict {
    /// An `Unsafe` edit shape: the edited document is statically known
    /// invalid under the hop target, no revalidation ran.
    StaticReject,
    /// Valid under the hop target (via the exemption walk when every edit
    /// shape was `Safe`, incremental revalidation otherwise).
    Valid,
    /// Invalid under the hop target.
    Invalid,
    /// The edit batch did not apply to the document.
    EditFailed(String),
}

impl HopVerdict {
    /// Stable lowercase name, used in reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            HopVerdict::StaticReject => "static-reject",
            HopVerdict::Valid => "valid",
            HopVerdict::Invalid => "invalid",
            HopVerdict::EditFailed(_) => "edit-failed",
        }
    }

    /// Whether this hop kept the migration on the valid path.
    pub fn is_ok(&self) -> bool {
        matches!(self, HopVerdict::Valid)
    }
}

/// One hop's row in a migration-script verification.
#[derive(Debug, Clone)]
pub struct HopReport {
    /// Hop index (0-based: hop `i` casts `v_{i+1}` to `v_{i+2}`).
    pub hop: usize,
    /// The hop verdict.
    pub verdict: HopVerdict,
    /// Instrumentation — `static_rejects`/`static_skips` show whether the
    /// static path fired.
    pub stats: ValidationStats,
}

/// The chain verdict for one migration script: per-hop rows up to and
/// including the first failure.
#[derive(Debug, Clone, Default)]
pub struct ChainScriptReport {
    /// Hop rows, in chain order; stops at the breaking hop.
    pub hops: Vec<HopReport>,
    /// The first hop whose verdict broke the migration, if any.
    pub breaking_hop: Option<usize>,
}

impl ChainScriptReport {
    /// True iff every hop verdict is [`HopVerdict::Valid`].
    pub fn ok(&self) -> bool {
        self.breaking_hop.is_none()
    }

    /// How many hops took a static path (skip or reject).
    pub fn static_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| h.stats.static_skips > 0 || h.stats.static_rejects > 0)
            .count()
    }
}

/// The outcome of [`certify_chain`]: the chain bundle, the independent
/// checker's report, and `SC04xx` diagnostics for anything that failed.
#[derive(Debug)]
pub struct ChainCertificationRun {
    /// Per-hop bundles, the endpoint bundle, and the composition claims.
    pub bundle: ChainBundle,
    /// The independent checker's verdicts.
    pub report: ChainCheckReport,
    /// `SC0401` (emission failure), `SC0402` (per-hop/endpoint certificate
    /// rejected), `SC0403` (composition certificate rejected).
    pub diagnostics: Vec<Diagnostic>,
    /// Certificates emitted across all parts (DFA pool excluded).
    pub certs_emitted: usize,
    /// Objects the checker examined.
    pub certs_checked: usize,
    /// Wall-clock microseconds spent in the chain checker.
    pub check_micros: usize,
}

impl ChainCertificationRun {
    /// True iff every claim of every part was certified and checked.
    pub fn all_certified(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// One-line summary fragment for `--stats` style output.
    pub fn stats(&self) -> String {
        format!(
            "chain certificates: {} emitted, {} checked, {} rejected, {}µs",
            self.certs_emitted,
            self.certs_checked,
            self.diagnostics.len(),
            self.check_micros
        )
    }
}

/// Certifies a whole chain: per-hop bundles and the endpoint bundle via
/// [`certify_context`], plus one composition certificate per
/// composition-decided `(v_1, v_N)` pair, all validated by the independent
/// [`check_chain_bundle`].
pub fn certify_chain(chain: &SchemaChain<'_>) -> ChainCertificationRun {
    let mut bundle = ChainBundle::default();
    let mut diagnostics = Vec::new();
    let mut certs_emitted = 0;

    // Per-hop and endpoint bundles. Keep only emission failures (SC0401)
    // from the per-part runs — check failures are re-derived (with chain
    // context) by check_chain_bundle below.
    for (i, hop) in chain.hops().iter().enumerate() {
        let run = certify_context(hop);
        certs_emitted += run.certs_emitted;
        for d in run.diagnostics {
            if d.rule_id == "SC0401" {
                diagnostics.push(Diagnostic::new(
                    "SC0401",
                    Severity::Error,
                    format!("hop {i}: {}", d.message),
                ));
            }
        }
        bundle.hops.push(run.bundle);
    }
    let endpoint_run = certify_context(chain.endpoint());
    certs_emitted += endpoint_run.certs_emitted;
    for d in endpoint_run.diagnostics {
        if d.rule_id == "SC0401" {
            diagnostics.push(Diagnostic::new(
                "SC0401",
                Severity::Error,
                format!("endpoint pair: {}", d.message),
            ));
        }
    }
    bundle.endpoint = endpoint_run.bundle;

    // Composition certificates: one per composition-decided pair, steps
    // resolved against the hop bundles just emitted.
    let sub_maps: Vec<HashMap<(u32, u32), u32>> = bundle
        .hops
        .iter()
        .map(|b| {
            b.subs
                .iter()
                .enumerate()
                .map(|(i, c)| ((c.source_type, c.target_type), i as u32))
                .collect()
        })
        .collect();
    let dis_maps: Vec<HashMap<(u32, u32), u32>> = bundle
        .hops
        .iter()
        .map(|b| {
            b.diss
                .iter()
                .enumerate()
                .map(|(i, c)| ((c.source_type, c.target_type), i as u32))
                .collect()
        })
        .collect();
    let first = &chain.schemas()[0];
    let last = &chain.schemas()[chain.schemas().len() - 1];
    for s in first.type_ids() {
        for t in last.type_ids() {
            for (claim, tuple) in [
                (CompClaim::Subsumed, chain.sub_tuple(s, t)),
                (CompClaim::Disjoint, chain.dis_tuple(s, t)),
            ] {
                let Some(tuple) = tuple else { continue };
                match comp_steps(claim, &tuple, &sub_maps, &dis_maps) {
                    Some(steps) => bundle.compositions.push(CompCert {
                        source_type: s.0,
                        target_type: t.0,
                        claim,
                        steps,
                    }),
                    None => diagnostics.push(
                        Diagnostic::new(
                            "SC0403",
                            Severity::Error,
                            format!(
                                "composed {} claim for pair ({}, {}) has an uncertified hop step",
                                claim.name(),
                                first.type_name(s),
                                last.type_name(t)
                            ),
                        )
                        .with_type_name(first.type_name(s)),
                    ),
                }
            }
        }
    }
    certs_emitted += bundle.compositions.len();

    let started = Instant::now();
    let report = check_chain_bundle(&bundle);
    let check_micros = started.elapsed().as_micros() as usize;

    for (i, hop_report) in report.hops.iter().enumerate() {
        for f in &hop_report.failures {
            diagnostics.push(Diagnostic::new(
                "SC0402",
                Severity::Error,
                format!(
                    "hop {i}: {} certificate {} failed validation: {}",
                    f.kind.name(),
                    f.index,
                    f.reason
                ),
            ));
        }
    }
    for f in &report.endpoint.failures {
        diagnostics.push(Diagnostic::new(
            "SC0402",
            Severity::Error,
            format!(
                "endpoint pair: {} certificate {} failed validation: {}",
                f.kind.name(),
                f.index,
                f.reason
            ),
        ));
    }
    for f in &report.failures {
        let loc = bundle
            .compositions
            .get(f.index)
            .map(|c| {
                format!(
                    " for pair ({}, {})",
                    first.type_name(TypeId(c.source_type)),
                    last.type_name(TypeId(c.target_type))
                )
            })
            .unwrap_or_default();
        diagnostics.push(Diagnostic::new(
            "SC0403",
            Severity::Error,
            format!(
                "composition certificate {}{loc} failed validation: {}",
                f.index, f.reason
            ),
        ));
    }

    ChainCertificationRun {
        certs_emitted,
        certs_checked: report.checked,
        check_micros,
        bundle,
        report,
        diagnostics,
    }
}

/// Resolves a witness tuple into per-hop certificate references: `R_sub`
/// steps throughout, except the final step of a disjoint claim, which
/// resolves in the last hop's `R_dis` certificates.
fn comp_steps(
    claim: CompClaim,
    tuple: &[TypeId],
    sub_maps: &[HashMap<(u32, u32), u32>],
    dis_maps: &[HashMap<(u32, u32), u32>],
) -> Option<Vec<CompStep>> {
    let hop_count = tuple.len() - 1;
    let mut steps = Vec::with_capacity(hop_count);
    for i in 0..hop_count {
        let pair = (tuple[i].0, tuple[i + 1].0);
        let is_dis_step = claim == CompClaim::Disjoint && i == hop_count - 1;
        let map = if is_dis_step {
            &dis_maps[i]
        } else {
            &sub_maps[i]
        };
        steps.push(CompStep {
            source_type: pair.0,
            target_type: pair.1,
            cert_ref: *map.get(&pair)?,
        });
    }
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{SchemaBuilder, SimpleType};

    /// Three versions of the purchase-order schema: v1 requires `billTo`,
    /// v2 makes it optional (v1 ⊑ v2 hop-wise), v3 drops it entirely
    /// (incomparable with v2's optional form but still accepts the
    /// bill-less documents).
    fn chain_schemas(ab: &mut Alphabet) -> Vec<AbstractSchema> {
        [
            "(shipTo, billTo, items)",
            "(shipTo, billTo?, items)",
            "(shipTo, items)",
        ]
        .iter()
        .map(|model| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let addr = b.declare("USAddress").unwrap();
            b.complex(
                addr,
                "(name, street, city)",
                &[("name", text), ("street", text), ("city", text)],
            )
            .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", text)]).unwrap();
            let po = b.declare("PO").unwrap();
            b.complex(
                po,
                model,
                &[("shipTo", addr), ("billTo", addr), ("items", items)],
            )
            .unwrap();
            b.root("purchaseOrder", po);
            b.finish().unwrap()
        })
        .collect()
    }

    #[test]
    fn chain_needs_two_versions() {
        let ab = Alphabet::new();
        let schemas: Vec<AbstractSchema> = Vec::new();
        assert_eq!(
            SchemaChain::new(&schemas, &ab).err(),
            Some(ChainError::TooShort(0))
        );
    }

    #[test]
    fn widening_prefix_composes_and_is_sound() {
        let mut ab = Alphabet::new();
        let schemas = chain_schemas(&mut ab);
        // v1 → v2 widens, so the (v1, v2) hop is fully subsumed; the
        // (v2, v3) hop is not. Every composed fact must also hold in the
        // endpoint's exact relations.
        let chain = SchemaChain::new(&schemas[..2], &ab).unwrap();
        let rel = chain.endpoint().relations();
        for s in schemas[0].type_ids() {
            for t in schemas[1].type_ids() {
                match chain.composed_relation(s, t) {
                    ChainRelation::Subsumed(_) => assert!(rel.subsumed(s, t)),
                    ChainRelation::Disjoint(_) => assert!(rel.disjoint(s, t)),
                    ChainRelation::Neither => {
                        assert!(!rel.subsumed(s, t) && !rel.disjoint(s, t));
                    }
                }
            }
        }
    }

    #[test]
    fn tuples_thread_through_the_middle_version() {
        let mut ab = Alphabet::new();
        let schemas = chain_schemas(&mut ab);
        let chain = SchemaChain::new(&schemas, &ab).unwrap();
        // Text ⊑ Text ⊑ Text composes across both hops.
        let s = schemas[0].type_by_name("Text").unwrap();
        let t = schemas[2].type_by_name("Text").unwrap();
        let tuple = chain.sub_tuple(s, t).expect("Text subsumes across hops");
        assert_eq!(tuple.len(), 3);
        assert_eq!(schemas[1].type_name(tuple[1]), "Text");
    }

    #[test]
    fn chain_certifies_end_to_end() {
        let mut ab = Alphabet::new();
        let schemas = chain_schemas(&mut ab);
        let chain = SchemaChain::new(&schemas, &ab).unwrap();
        let run = certify_chain(&chain);
        assert!(run.all_certified(), "diagnostics: {:#?}", run.diagnostics);
        assert!(!run.bundle.compositions.is_empty());
        assert!(run.report.all_valid());
    }

    #[test]
    fn corrupted_composition_is_rejected_via_diagnostics() {
        let mut ab = Alphabet::new();
        let schemas = chain_schemas(&mut ab);
        let chain = SchemaChain::new(&schemas, &ab).unwrap();
        let mut run = certify_chain(&chain);
        run.bundle.compositions[0].steps[0].source_type ^= 1;
        let report = check_chain_bundle(&run.bundle);
        assert!(!report.all_valid());
    }
}
