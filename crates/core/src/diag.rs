//! The shared diagnostic model: one type for document-validation failures
//! ([`mod@crate::explain`]) and schema/pair lint findings (`schemacast-analysis`).
//!
//! Every diagnostic carries a stable rule id so that CI gates, SARIF
//! consumers, and tests can match on findings without parsing message text:
//!
//! * `SC01xx` — single-schema rules (non-productive types, dead labels,
//!   ambiguous content models, …),
//! * `SC02xx` — schema-pair rules (incompatible or disjoint reachable type
//!   pairs, removed roots),
//! * `SC03xx` — per-document validation failures (the [`mod@crate::explain`]
//!   namespace),
//! * `SC04xx` — certification failures (the [`mod@crate::certify`]
//!   namespace): `SC0401` = a static claim could not be certified (emission
//!   failure), `SC0402` = an emitted certificate was rejected by the
//!   independent checker.
//!
//! The slash-path helpers here are the single implementation of the
//! `/root/child[i]` document-path syntax that both the explainer and the
//! witness synthesizer emit.

use std::fmt;

/// How serious a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a gate.
    Note,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// A definite defect.
    Error,
}

impl Severity {
    /// Lower-case machine name (also the SARIF `level` value).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule id, a severity, a message, and optional anchors
/// (schema file position, type/particle names, document path, witness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`SC01xx` / `SC02xx` / `SC03xx`).
    pub rule_id: &'static str,
    /// Severity of this instance (usually the rule's default).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The schema file the finding anchors to, if known.
    pub file: Option<String>,
    /// 1-based line in `file` (0 = unknown).
    pub line: u32,
    /// 1-based column in `file` (0 = unknown).
    pub column: u32,
    /// The schema type the finding is about, if any.
    pub type_name: Option<String>,
    /// The offending content-model particle (child label), if any.
    pub particle: Option<String>,
    /// Slash path (with sibling indices) into a document, if any.
    pub path: Option<String>,
    /// A minimal witness document (serialized XML), if one was synthesized.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no anchors; attach them with the `with_*` methods.
    pub fn new(
        rule_id: &'static str,
        severity: Severity,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule_id,
            severity,
            message: message.into(),
            file: None,
            line: 0,
            column: 0,
            type_name: None,
            particle: None,
            path: None,
            witness: None,
        }
    }

    /// Anchors the diagnostic to a schema file.
    pub fn with_file(mut self, file: impl Into<String>) -> Diagnostic {
        self.file = Some(file.into());
        self
    }

    /// Anchors the diagnostic to a (1-based) line/column position.
    pub fn with_position(mut self, line: u32, column: u32) -> Diagnostic {
        self.line = line;
        self.column = column;
        self
    }

    /// Names the schema type the finding is about.
    pub fn with_type_name(mut self, name: impl Into<String>) -> Diagnostic {
        self.type_name = Some(name.into());
        self
    }

    /// Names the offending content-model particle.
    pub fn with_particle(mut self, label: impl Into<String>) -> Diagnostic {
        self.particle = Some(label.into());
        self
    }

    /// Attaches a document path.
    pub fn with_path(mut self, path: impl Into<String>) -> Diagnostic {
        self.path = Some(path.into());
        self
    }

    /// Attaches a serialized witness document.
    pub fn with_witness(mut self, xml: impl Into<String>) -> Diagnostic {
        self.witness = Some(xml.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
            if self.line > 0 {
                write!(f, "{}:{}:", self.line, self.column.max(1))?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}[{}]: {}", self.severity, self.rule_id, self.message)?;
        if let Some(path) = &self.path {
            write!(f, " (at {path})")?;
        }
        Ok(())
    }
}

/// The path of a document root labeled `label`: `/label`.
pub fn root_path(label: &str) -> String {
    format!("/{label}")
}

/// Appends the segment for child number `index` (0-based, across all
/// children) labeled `label`: `/label[index]`. Returns the previous length,
/// to be restored with [`pop_segment`] when backtracking.
pub fn push_segment(path: &mut String, label: &str, index: usize) -> usize {
    use std::fmt::Write;
    let len = path.len();
    let _ = write!(path, "/{label}[{index}]");
    len
}

/// Restores a path to the length returned by [`push_segment`].
pub fn pop_segment(path: &mut String, len: usize) {
    path.truncate(len);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_fail_on_gates() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn path_helpers_roundtrip() {
        let mut p = root_path("po");
        assert_eq!(p, "/po");
        let mark = push_segment(&mut p, "item", 1);
        let inner = push_segment(&mut p, "qty", 0);
        assert_eq!(p, "/po/item[1]/qty[0]");
        pop_segment(&mut p, inner);
        assert_eq!(p, "/po/item[1]");
        pop_segment(&mut p, mark);
        assert_eq!(p, "/po");
    }

    #[test]
    fn display_includes_anchors() {
        let d = Diagnostic::new("SC0201", Severity::Error, "incompatible pair")
            .with_file("s.xsd")
            .with_position(3, 7)
            .with_path("/po/item[0]");
        let text = d.to_string();
        assert!(text.contains("s.xsd:3:7:"));
        assert!(text.contains("error[SC0201]"));
        assert!(text.contains("/po/item[0]"));
    }
}
