//! The `R_sub` and `R_dis` relations (§3.2, Definitions 4–5).
//!
//! `R_sub` is computed as a *greatest* fixpoint: start from all type pairs
//! whose content-model languages are included (`L(regexp_τ) ⊆ L(regexp_τ')`,
//! decided on the compiled DFAs) and refine away pairs whose child types
//! break the relation. `R_nondis` is a *least* fixpoint: a pair is
//! non-disjoint once a witness string exists in
//! `L(regexp_τ) ∩ L(regexp_τ') ∩ P*`, where `P` collects the labels whose
//! child-type pairs are already known non-disjoint. `R_dis` is its
//! complement (Theorem 2).
//!
//! Deviation from the paper's merged-χ exposition (anticipated by its
//! "straightforward extension" remark): simple×simple pairs are seeded with
//! the value-space subsumption/disjointness of `schemacast-schema::simple`
//! rather than unconditionally related — this is what makes Experiment 2
//! (a `maxExclusive` narrowing) force per-value checks. Simple×complex
//! pairs are handled soundly: they are never subsumed, and they are
//! non-disjoint exactly when both accept the childless element (a nullable
//! content model meets a simple type accepting the empty string).

use schemacast_automata::{intersection_nonempty_restricted, language_subset, BitSet};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};

/// The precomputed subsumption and (non-)disjointness relations between the
/// types of a source schema and a target schema.
#[derive(Debug, Clone)]
pub struct TypeRelations {
    /// `sub[τ]` = set of target types subsuming source type `τ`.
    sub: Vec<BitSet>,
    /// `nondis[τ]` = set of target types not disjoint from `τ`.
    nondis: Vec<BitSet>,
    /// Insertion order of each nondis pair into the least fixpoint
    /// (flattened `s · target_count + t`; `u32::MAX` = not nondis). The
    /// certificate layer emits `R_nondis` witnesses in this order so every
    /// witness references only strictly earlier pairs — the well-founded
    /// structure the checker enforces.
    nondis_order: Vec<u32>,
    target_count: usize,
}

impl TypeRelations {
    /// Computes both relations for a schema pair over a shared alphabet.
    pub fn compute(
        source: &AbstractSchema,
        target: &AbstractSchema,
        alphabet: &Alphabet,
    ) -> TypeRelations {
        let (n_src, n_tgt) = (source.type_count(), target.type_count());
        let mut sub: Vec<BitSet> = (0..n_src).map(|_| BitSet::new(n_tgt)).collect();
        let mut nondis: Vec<BitSet> = (0..n_src).map(|_| BitSet::new(n_tgt)).collect();
        let mut nondis_order = vec![u32::MAX; n_src * n_tgt];
        let mut order_counter: u32 = 0;

        // ---- R_sub: seed, then refine (greatest fixpoint). ----
        for s in source.type_ids() {
            for t in target.type_ids() {
                let related = match (source.type_def(s), target.type_def(t)) {
                    (TypeDef::Simple(a), TypeDef::Simple(b)) => a.subsumed_by(b),
                    (TypeDef::Complex(a), TypeDef::Complex(b)) => language_subset(&a.dfa, &b.dfa),
                    // Simple vs. complex: never subsumed (see module docs).
                    _ => false,
                };
                if related {
                    sub[s.index()].insert(t.index());
                }
            }
        }
        loop {
            let mut changed = false;
            for s in source.type_ids() {
                let TypeDef::Complex(a) = source.type_def(s) else {
                    continue;
                };
                let candidates: Vec<usize> = sub[s.index()].iter().collect();
                for ti in candidates {
                    let t = TypeId(ti as u32);
                    let TypeDef::Complex(b) = target.type_def(t) else {
                        continue;
                    };
                    let broken = a.child_types.iter().any(|(&label, &child_s)| {
                        match b.child_type(label) {
                            Some(child_t) => !sub[child_s.index()].contains(child_t.index()),
                            // Label has no target child type: conservatively
                            // break the pair.
                            None => true,
                        }
                    });
                    if broken {
                        sub[s.index()].remove(ti);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // ---- R_nondis: least fixpoint. ----
        // The P bitset must have room for every label either schema can
        // mention. Normally `alphabet.len()` covers that, but if the caller
        // hands a stale alphabet snapshot (schemas compiled against a later
        // interning state), sizing from the alphabet alone would drop labels
        // from P — silently shrinking `P*` and over-approximating
        // disjointness into wrong rejections. Size from both sources and
        // assert the invariant instead of skipping.
        let mut label_capacity = alphabet.len();
        for schema in [source, target] {
            for t in schema.type_ids() {
                if let TypeDef::Complex(c) = schema.type_def(t) {
                    for &label in c.child_types.keys() {
                        label_capacity = label_capacity.max(label.index() + 1);
                    }
                }
            }
        }

        // Seed: simple pairs that share a value; simple/complex pairs that
        // share the childless element.
        for s in source.type_ids() {
            for t in target.type_ids() {
                let seeded = match (source.type_def(s), target.type_def(t)) {
                    (TypeDef::Simple(a), TypeDef::Simple(b)) => !a.disjoint_from(b),
                    (TypeDef::Simple(a), TypeDef::Complex(b)) => {
                        a.validate("") && b.regex.nullable()
                    }
                    (TypeDef::Complex(a), TypeDef::Simple(b)) => {
                        a.regex.nullable() && b.validate("")
                    }
                    (TypeDef::Complex(_), TypeDef::Complex(_)) => false,
                };
                if seeded {
                    nondis[s.index()].insert(t.index());
                    nondis_order[s.index() * n_tgt + t.index()] = order_counter;
                    order_counter += 1;
                }
            }
        }
        loop {
            let mut changed = false;
            for s in source.type_ids() {
                let TypeDef::Complex(a) = source.type_def(s) else {
                    continue;
                };
                for t in target.type_ids() {
                    if nondis[s.index()].contains(t.index()) {
                        continue;
                    }
                    let TypeDef::Complex(b) = target.type_def(t) else {
                        continue;
                    };
                    // P = labels whose child-type pair is already nondis.
                    let mut allowed = BitSet::new(label_capacity);
                    for (&label, &child_s) in &a.child_types {
                        if let Some(child_t) = b.child_type(label) {
                            if nondis[child_s.index()].contains(child_t.index()) {
                                // Checked in release builds too: a label
                                // beyond the bitset would be silently
                                // dropped from P, shrinking `P*` and turning
                                // non-disjoint pairs into wrong rejections
                                // (the PR 1 out-of-range-label regression).
                                // `label_capacity` is sized from both
                                // schemas above, so a violation here is a
                                // sizing bug worth an immediate abort.
                                assert!(
                                    label.index() < allowed.capacity(),
                                    "label {} outside the sized alphabet ({})",
                                    label.index(),
                                    allowed.capacity()
                                );
                                allowed.insert(label.index());
                            }
                        }
                    }
                    if intersection_nonempty_restricted(&a.dfa, &b.dfa, Some(&allowed)) {
                        nondis[s.index()].insert(t.index());
                        nondis_order[s.index() * n_tgt + t.index()] = order_counter;
                        order_counter += 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        TypeRelations {
            sub,
            nondis,
            nondis_order,
            target_count: n_tgt,
        }
    }

    /// The position at which `(s, t)` entered the `R_nondis` least
    /// fixpoint, or `None` if the pair is disjoint. Monotone over the
    /// fixpoint run: every pair's witness only rests on pairs with smaller
    /// positions, which is the well-founded emission order for `R_nondis`
    /// certificates.
    pub fn nondis_order(&self, s: TypeId, t: TypeId) -> Option<u32> {
        let o = self.nondis_order[s.index() * self.target_count + t.index()];
        (o != u32::MAX).then_some(o)
    }

    /// `τ ≤ τ'`: every tree valid for the source type is valid for the
    /// target type (Definition 2 / Theorem 1).
    pub fn subsumed(&self, s: TypeId, t: TypeId) -> bool {
        debug_assert!(t.index() < self.target_count);
        self.sub[s.index()].contains(t.index())
    }

    /// `τ ⊘ τ'`: no tree is valid for both (Definition 3 / Theorem 2).
    pub fn disjoint(&self, s: TypeId, t: TypeId) -> bool {
        debug_assert!(t.index() < self.target_count);
        !self.nondis[s.index()].contains(t.index())
    }

    /// Number of subsumed pairs (diagnostics).
    pub fn subsumed_pair_count(&self) -> usize {
        self.sub.iter().map(BitSet::count).sum()
    }

    /// Number of disjoint pairs (diagnostics).
    pub fn disjoint_pair_count(&self) -> usize {
        self.sub.len() * self.target_count - self.nondis.iter().map(BitSet::count).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{SchemaBuilder, SimpleType};

    /// Figure 1: source with optional billTo, target requiring it.
    fn figure1() -> (AbstractSchema, AbstractSchema, Alphabet) {
        let mut ab = Alphabet::new();
        let source = {
            let mut b = SchemaBuilder::new(&mut ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let addr = b.declare("USAddress").unwrap();
            b.complex(
                addr,
                "(name, street, city)",
                &[("name", text), ("street", text), ("city", text)],
            )
            .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", text)]).unwrap();
            let po = b.declare("POType1").unwrap();
            b.complex(
                po,
                "(shipTo, billTo?, items)",
                &[("shipTo", addr), ("billTo", addr), ("items", items)],
            )
            .unwrap();
            b.root("purchaseOrder", po);
            b.finish().unwrap()
        };
        let target = {
            let mut b = SchemaBuilder::new(&mut ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let addr = b.declare("USAddress").unwrap();
            b.complex(
                addr,
                "(name, street, city)",
                &[("name", text), ("street", text), ("city", text)],
            )
            .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", text)]).unwrap();
            let po = b.declare("POType2").unwrap();
            b.complex(
                po,
                "(shipTo, billTo, items)",
                &[("shipTo", addr), ("billTo", addr), ("items", items)],
            )
            .unwrap();
            b.root("purchaseOrder", po);
            b.finish().unwrap()
        };
        (source, target, ab)
    }

    #[test]
    fn figure1_relations() {
        let (source, target, ab) = figure1();
        let rel = TypeRelations::compute(&source, &target, &ab);
        let s_po = source.type_by_name("POType1").unwrap();
        let t_po = target.type_by_name("POType2").unwrap();
        let s_addr = source.type_by_name("USAddress").unwrap();
        let t_addr = target.type_by_name("USAddress").unwrap();
        let s_items = source.type_by_name("Items").unwrap();
        let t_items = target.type_by_name("Items").unwrap();

        // Identical types subsume each other.
        assert!(rel.subsumed(s_addr, t_addr));
        assert!(rel.subsumed(s_items, t_items));
        // The PO types: source NOT subsumed by target (billTo optional vs
        // required), but not disjoint either (documents with billTo).
        assert!(!rel.subsumed(s_po, t_po));
        assert!(!rel.disjoint(s_po, t_po));
        // Address and items are not disjoint from themselves.
        assert!(!rel.disjoint(s_addr, t_addr));
    }

    #[test]
    fn reverse_direction_is_subsumed() {
        let (source, target, ab) = figure1();
        // Casting from the *target* (billTo required) to the source
        // (optional) subsumes: every required-billTo doc is acceptable.
        let rel = TypeRelations::compute(&target, &source, &ab);
        let t_po = target.type_by_name("POType2").unwrap();
        let s_po = source.type_by_name("POType1").unwrap();
        assert!(rel.subsumed(t_po, s_po));
    }

    #[test]
    fn child_type_breakage_propagates() {
        // Same content models, but a child's simple type narrows: the parent
        // pair must leave R_sub even though the regex languages coincide.
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, max_len: Option<usize>| {
            let mut b = SchemaBuilder::new(ab);
            let mut st = SimpleType::string();
            st.facets.max_length = max_len;
            let leaf = b.simple("Leaf", st).unwrap();
            let root = b.declare("Root").unwrap();
            b.complex(root, "(x)", &[("x", leaf)]).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, None);
        let target = mk(&mut ab, Some(3));
        let rel = TypeRelations::compute(&source, &target, &ab);
        let s_root = source.type_by_name("Root").unwrap();
        let t_root = target.type_by_name("Root").unwrap();
        assert!(!rel.subsumed(s_root, t_root));
        // Still not disjoint: short strings satisfy both.
        assert!(!rel.disjoint(s_root, t_root));
        // Reverse direction subsumes.
        let rel_rev = TypeRelations::compute(&target, &source, &ab);
        assert!(rel_rev.subsumed(t_root, s_root));
    }

    #[test]
    fn disjoint_content_models() {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, model: &str, kids: &[&str]| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let root = b.declare("Root").unwrap();
            let child_types: Vec<(&str, TypeId)> = kids.iter().map(|k| (*k, text)).collect();
            b.complex(root, model, &child_types).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, "(a, a)", &["a"]);
        let target = mk(&mut ab, "(b, b)", &["b"]);
        let rel = TypeRelations::compute(&source, &target, &ab);
        let s = source.type_by_name("Root").unwrap();
        let t = target.type_by_name("Root").unwrap();
        assert!(rel.disjoint(s, t));
        assert!(!rel.subsumed(s, t));
    }

    #[test]
    fn recursive_disjointness_via_child_types() {
        // Content models intersect as string languages ("x" both), but the
        // child types of x are disjoint simple types — so the parents are
        // disjoint too, which only the P*-restricted fixpoint detects.
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, kind: schemacast_schema::AtomicKind| {
            let mut b = SchemaBuilder::new(ab);
            let leaf = b.simple("Leaf", SimpleType::of(kind)).unwrap();
            let root = b.declare("Root").unwrap();
            b.complex(root, "(x)", &[("x", leaf)]).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, schemacast_schema::AtomicKind::Date);
        let target = mk(&mut ab, schemacast_schema::AtomicKind::Integer);
        let rel = TypeRelations::compute(&source, &target, &ab);
        let s = source.type_by_name("Root").unwrap();
        let t = target.type_by_name("Root").unwrap();
        assert!(rel.disjoint(s, t));
    }

    #[test]
    fn stale_alphabet_snapshot_does_not_weaken_disjointness() {
        // Regression: the P bitset used to be sized from the caller's
        // alphabet and labels beyond its capacity were silently skipped,
        // which shrank P* and flipped non-disjoint pairs to disjoint. An
        // empty alphabet snapshot is the extreme case: every label would
        // have been dropped.
        let (source, target, full_ab) = figure1();
        let stale_ab = Alphabet::new();
        let fresh = TypeRelations::compute(&source, &target, &full_ab);
        let stale = TypeRelations::compute(&source, &target, &stale_ab);
        for s in source.type_ids() {
            for t in target.type_ids() {
                assert_eq!(
                    fresh.disjoint(s, t),
                    stale.disjoint(s, t),
                    "disjointness of ({s:?}, {t:?}) depends on alphabet snapshot"
                );
                assert_eq!(fresh.subsumed(s, t), stale.subsumed(s, t));
            }
        }
        // And the paper's Figure 1 pair stays correctly non-disjoint.
        let s_po = source.type_by_name("POType1").unwrap();
        let t_po = target.type_by_name("POType2").unwrap();
        assert!(!stale.disjoint(s_po, t_po));
    }

    #[test]
    fn out_of_range_labels_hit_the_checked_guard_not_silent_truncation() {
        // Regression companion to the stale-alphabet test: labels whose
        // indices lie far beyond the caller's alphabet snapshot must still
        // land inside the P bitset (the guard in `compute` is a hard
        // `assert!` now, not a debug-only check). Interning a pile of
        // unrelated symbols first pushes the schema's own labels to high
        // indices; an empty snapshot then maximizes the out-of-range gap.
        let mut ab = Alphabet::new();
        for i in 0..500 {
            ab.intern(&format!("padding{i}"));
        }
        let mut b = SchemaBuilder::new(&mut ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, "(hi, lo?)", &[("hi", text), ("lo", text)])
            .unwrap();
        b.root("r", root);
        let schema = b.finish().unwrap();

        let stale_ab = Alphabet::new();
        let rel = TypeRelations::compute(&schema, &schema, &stale_ab);
        let r = schema.type_by_name("Root").unwrap();
        // With the truncation bug, `hi`/`lo` (indices ≥ 500) fell out of P,
        // P* became empty, and the self-pair flipped to disjoint.
        assert!(!rel.disjoint(r, r));
        assert!(rel.subsumed(r, r));
    }

    #[test]
    fn nondis_order_is_well_founded() {
        let (source, target, ab) = figure1();
        let rel = TypeRelations::compute(&source, &target, &ab);
        for s in source.type_ids() {
            for t in target.type_ids() {
                assert_eq!(rel.nondis_order(s, t).is_some(), !rel.disjoint(s, t));
            }
        }
        // A complex pair enters the fixpoint strictly after the child pairs
        // its witness instantiates.
        let s_po = source.type_by_name("POType1").unwrap();
        let t_po = target.type_by_name("POType2").unwrap();
        let s_addr = source.type_by_name("USAddress").unwrap();
        let t_addr = target.type_by_name("USAddress").unwrap();
        assert!(rel.nondis_order(s_addr, t_addr).unwrap() < rel.nondis_order(s_po, t_po).unwrap());
    }

    #[test]
    fn simple_complex_nondisjoint_only_on_empty() {
        let mut ab = Alphabet::new();
        // Source: simple string type at root label; target: nullable complex.
        let source = {
            let mut b = SchemaBuilder::new(&mut ab);
            let s = b.simple("S", SimpleType::string()).unwrap();
            b.root("r", s);
            b.finish().unwrap()
        };
        let target = {
            let mut b = SchemaBuilder::new(&mut ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let c = b.declare("C").unwrap();
            b.complex(c, "x?", &[("x", text)]).unwrap();
            let d = b.declare("D").unwrap();
            b.complex(d, "(x)", &[("x", text)]).unwrap();
            b.root("r", c);
            b.root("r2", d);
            b.finish().unwrap()
        };
        let rel = TypeRelations::compute(&source, &target, &ab);
        let s = source.type_by_name("S").unwrap();
        let c = target.type_by_name("C").unwrap();
        let d = target.type_by_name("D").unwrap();
        // The childless element <r/> is valid for both S and C…
        assert!(!rel.disjoint(s, c));
        // …but D requires a child element, which S never has.
        assert!(rel.disjoint(s, d));
        // Simple never subsumed by complex.
        assert!(!rel.subsumed(s, c));
    }
}
