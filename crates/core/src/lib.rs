#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Schema-cast revalidation of XML — the paper's core contribution (§3).
//!
//! Given a document known to be valid with respect to a *source* abstract
//! XML Schema, decide whether it is valid with respect to a *target* schema
//! without revalidating everything:
//!
//! * [`relations::TypeRelations`] — the `R_sub` / `R_dis` fixpoints over the
//!   type pairs of the two schemas (Definitions 4–5, Theorems 1–2).
//! * [`cast::CastContext`] — schema-cast validation without modifications
//!   (§3.2), with immediate-decision-automaton content-model checks (§4) and
//!   ablation switches ([`cast::CastOptions`]).
//! * [`mods::ModsValidator`] — schema-cast with modifications (§3.3) over
//!   Δ-encoded edited trees, using the `modified(v)` trie and the
//!   string-revalidation-with-mods machinery (§4.3).
//! * [`safety::PairSafety`] — the static update-safety analysis: per
//!   (type pair, edit kind, label) Safe/Unsafe/Dynamic verdicts computed
//!   from the product IDAs, enabling revalidation that never touches the
//!   document for statically decided edit scripts.
//! * [`dtdcast::DtdCastValidator`] — the label-indexed DTD optimization
//!   (§3.4).
//! * [`certify::certify_context`] — the certifying-analysis layer: every
//!   static claim above (relation memberships, IDA decision sets, safety
//!   verdicts) packaged as a certificate and validated by the independent
//!   `schemacast-certify` checker.
//! * [`script::ScriptAnalysis`] — the whole-script static analyzer: per-site
//!   edit-effect composition and normalization, concrete-word IA/IR
//!   decisions, and certified script-level verdicts.
//! * [`chain::SchemaChain`] — schema-evolution chains: composed end-to-end
//!   relations, one-pass `(v_1, v_N)` validation, migration-script
//!   verification, and composition certificates
//!   ([`chain::certify_chain`]).
//! * [`full::FullValidator`] — the Xerces-style baseline the paper compares
//!   against, instrumented identically.

pub mod cast;
pub mod certify;
pub mod chain;
pub mod diag;
pub mod dtdcast;
pub mod explain;
pub mod fingerprint;
pub mod full;
mod idacache;
pub mod mods;
pub mod relations;
pub mod repair;
pub mod safety;
pub mod script;
pub mod stats;
pub mod stream;
pub mod witness;

pub use cast::{CastContext, CastOptions};
pub use certify::{certify_context, CertificationRun};
pub use chain::{
    certify_chain, ChainCertificationRun, ChainError, ChainRelation, ChainScriptReport,
    ComposedVia, CompositionStats, HopReport, HopVerdict, SchemaChain,
};
pub use diag::{Diagnostic, Severity};
pub use dtdcast::{DtdCastValidator, LabelIndex, LabelPlan, NotDtdStyle};
pub use explain::{explain, validate_explained, FailureKind, ValidationFailure};
pub use fingerprint::{certification_digest, context_fingerprint, schema_fingerprint, Fnv64};
pub use full::FullValidator;
pub use mods::ModsValidator;
pub use relations::TypeRelations;
pub use repair::{RepairAction, RepairError, Repairer};
pub use safety::{MatrixEntry, PairSafety, SafetyMatrix, Verdict};
pub use script::{
    ChildCheck, FreshCheck, RejectReason, ScriptAnalysis, ScriptSite, ScriptVerdict, SiteDecision,
};
pub use stats::{CastOutcome, ValidationStats};
pub use stream::{validate_xml_stream, StreamScratch, StreamingCast};
pub use witness::{
    reachable_pairs_with_paths, DivergenceKind, PairWitness, ReachablePair, WitnessSynth,
};
