//! Deterministic fingerprints of compiled cast state, for cache keys.
//!
//! The corpus verdict cache (`crates/engine/cache.rs`) keys every entry on
//! *what the verdict depends on*: the document's content hash plus a
//! fingerprint of the compiled [`CastContext`]. Everything downstream of
//! the context — the `TypeRelations` fixpoints, the safety matrix, the
//! product IDAs, the certificate bundle — is a deterministic function of
//! the two schemas and the cast options, so the fingerprint folds in:
//!
//! * a format version (bump it to flush every cache in the world);
//! * both schemas, structurally: type names, kinds, facets, content-model
//!   regexes (printed against the alphabet, so symbol identity is by
//!   *name*, not by interning order), child-label typing, determinism
//!   flags, root bindings;
//! * the [`CastOptions`](crate::CastOptions) bits (an ablation run must never reuse a
//!   full-algorithm verdict);
//! * the computed relations themselves — redundant given the schemas, but
//!   it means a future change to the fixpoint algorithm (or a bug fix
//!   that alters `R_sub`/`R_dis`) flushes stale verdicts even if nobody
//!   remembers to bump the version.
//!
//! The hash is FNV-1a 64 over a length-prefixed field stream. It is a
//! cache key, not a security boundary: an adversary who can write the
//! cache file can write verdicts directly.

use crate::cast::CastContext;
use crate::certify::CertificationRun;
use schemacast_regex::display::regex_to_string;
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, TypeDef};

/// Bump on any change to what the fingerprint covers or how it is
/// serialized; old cache files then read as cold.
pub const FINGERPRINT_VERSION: u64 = 1;

/// FNV-1a 64: tiny, dependency-free, and stable across platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed string (prefixing prevents field-boundary
    /// ambiguity: `("ab","c")` must not collide with `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of one schema. Symbols are folded by *name* via
/// `alphabet`, so two sessions that intern labels in different orders
/// still agree.
pub fn schema_fingerprint(schema: &AbstractSchema, alphabet: &Alphabet) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(schema.type_count() as u64);
    h.write_u64(u64::from(schema.is_dtd_style()));
    for t in schema.type_ids() {
        h.write_str(schema.type_name(t));
        match schema.type_def(t) {
            TypeDef::Simple(s) => {
                h.write_u64(1);
                // Kind + every facet, via the derived Debug rendering —
                // one stable-within-a-version line instead of a hand
                // serializer that silently misses the next facet added.
                h.write_str(&format!("{s:?}"));
            }
            TypeDef::Complex(c) => {
                h.write_u64(2);
                h.write_str(&regex_to_string(&c.regex, alphabet));
                h.write_u64(u64::from(c.deterministic));
                // HashMap iteration order is nondeterministic: sort the
                // child typing by label name before folding.
                let mut children: Vec<(&str, &str)> = c
                    .child_types
                    .iter()
                    .map(|(&sym, &ty)| (alphabet.name(sym), schema.type_name(ty)))
                    .collect();
                children.sort_unstable();
                h.write_u64(children.len() as u64);
                for (label, ty) in children {
                    h.write_str(label);
                    h.write_str(ty);
                }
            }
        }
    }
    let mut roots: Vec<(&str, &str)> = schema
        .roots()
        .map(|(sym, ty)| (alphabet.name(sym), schema.type_name(ty)))
        .collect();
    roots.sort_unstable();
    h.write_u64(roots.len() as u64);
    for (label, ty) in roots {
        h.write_str(label);
        h.write_str(ty);
    }
    h.finish()
}

/// Fingerprint of a compiled [`CastContext`]: schemas, options, and the
/// computed relation fixpoints. Any difference in any of them yields (with
/// overwhelming probability) a different value — and therefore a cold
/// cache.
pub fn context_fingerprint(ctx: &CastContext<'_>, alphabet: &Alphabet) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(FINGERPRINT_VERSION);
    h.write_u64(schema_fingerprint(ctx.source(), alphabet));
    h.write_u64(schema_fingerprint(ctx.target(), alphabet));
    let o = ctx.options();
    h.write_u64(
        u64::from(o.use_subsumption)
            | u64::from(o.use_disjointness) << 1
            | u64::from(o.use_ida) << 2,
    );
    // The full R_sub/R_dis matrices, packed 32 pairs per word.
    let rel = ctx.relations();
    let (ns, nt) = (ctx.source().type_count(), ctx.target().type_count());
    let mut word = 0u64;
    let mut bits = 0u32;
    for s in ctx.source().type_ids() {
        for t in ctx.target().type_ids() {
            word |= u64::from(rel.subsumed(s, t)) << bits;
            word |= u64::from(rel.disjoint(s, t)) << (bits + 1);
            bits += 2;
            if bits == 64 {
                h.write_u64(word);
                word = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        h.write_u64(word);
    }
    h.write_u64((ns * nt) as u64);
    h.finish()
}

/// Digest binding a certification run to the context it certified.
///
/// Certificates are themselves a deterministic function of the compiled
/// context, so this digest exists for *trust scoping*, not extra entropy:
/// a cache file records it when (and only when) its verdicts were written
/// under a fully certified context, and a `--certify` run refuses to warm
/// from a file whose digest does not match its own freshly certified run
/// — covering both "the bundle changed" and "the bundle never certified".
pub fn certification_digest(context_fp: u64, run: &CertificationRun) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(0x6365_7274); // "cert" domain tag
    h.write_u64(context_fp);
    h.write_u64(run.certs_emitted as u64);
    h.write_u64(run.certs_checked as u64);
    h.write_u64(u64::from(run.all_certified()));
    h.write_u64(run.diagnostics.len() as u64);
    h.finish()
}

impl CastContext<'_> {
    /// See [`context_fingerprint`].
    pub fn fingerprint(&self, alphabet: &Alphabet) -> u64 {
        context_fingerprint(self, alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cast::CastOptions;
    use schemacast_schema::{SchemaBuilder, SimpleType};

    fn schema(ab: &mut Alphabet, model: &str) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let item = b.declare("Item").unwrap();
        b.complex(item, "(title)", &[("title", text)]).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, model, &[("item", item), ("note", text)])
            .unwrap();
        b.root("root", root);
        b.finish().unwrap()
    }

    #[test]
    fn identical_pairs_agree_and_any_change_diverges() {
        let mut ab = Alphabet::new();
        let s1 = schema(&mut ab, "(item | note)*");
        let s2 = schema(&mut ab, "(item | note)*");
        let t_wider = schema(&mut ab, "(item, note*)");
        assert_eq!(schema_fingerprint(&s1, &ab), schema_fingerprint(&s2, &ab));

        let ctx_a = CastContext::new(&s1, &s2, &ab);
        let ctx_b = CastContext::new(&s2, &s1, &ab);
        assert_eq!(ctx_a.fingerprint(&ab), ctx_b.fingerprint(&ab));

        // Different target schema ⇒ different fingerprint.
        let ctx_w = CastContext::new(&s1, &t_wider, &ab);
        assert_ne!(ctx_a.fingerprint(&ab), ctx_w.fingerprint(&ab));

        // Different options ⇒ different fingerprint (same schemas).
        let ctx_abl = CastContext::with_options(&s1, &s2, &ab, CastOptions::paper_prototype());
        assert_ne!(ctx_a.fingerprint(&ab), ctx_abl.fingerprint(&ab));
    }

    #[test]
    fn facet_changes_flush() {
        let mut ab = Alphabet::new();
        let plain = schema(&mut ab, "(item)*");
        let faceted = {
            let mut b = SchemaBuilder::new(&mut ab);
            let mut ty = SimpleType::string();
            ty.facets.max_length = Some(10);
            let text = b.simple("Text", ty).unwrap();
            let item = b.declare("Item").unwrap();
            b.complex(item, "(title)", &[("title", text)]).unwrap();
            let root = b.declare("Root").unwrap();
            b.complex(root, "(item)*", &[("item", item), ("note", text)])
                .unwrap();
            b.root("root", root);
            b.finish().unwrap()
        };
        assert_ne!(
            schema_fingerprint(&plain, &ab),
            schema_fingerprint(&faceted, &ab)
        );
    }

    #[test]
    fn certification_digest_is_deterministic_and_context_bound() {
        let mut ab = Alphabet::new();
        let s = schema(&mut ab, "(item | note)*");
        let t = schema(&mut ab, "(item)*");
        let ctx = CastContext::new(&s, &t, &ab);
        let fp = ctx.fingerprint(&ab);
        let run1 = crate::certify::certify_context(&ctx);
        let run2 = crate::certify::certify_context(&ctx);
        assert_eq!(
            certification_digest(fp, &run1),
            certification_digest(fp, &run2)
        );
        assert_ne!(
            certification_digest(fp, &run1),
            certification_digest(fp ^ 1, &run1),
            "digest must be bound to the context fingerprint"
        );
    }
}
