//! The baseline full validator (the paper's unmodified-Xerces comparator).
//!
//! Implements the `validate`/`doValidate` pseudocode of §3 directly: visit
//! every node top-down, run the content-model DFA over every element's
//! children, check every simple value. Instrumented with the same
//! [`ValidationStats`] as the cast validator so Figure 3 / Table 3 compare
//! like for like.

use crate::stats::{CastOutcome, ValidationStats};
use schemacast_regex::Sym;
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId, NodeKind};

/// A full (non-incremental) validator for one schema.
#[derive(Debug, Clone, Copy)]
pub struct FullValidator<'a> {
    schema: &'a AbstractSchema,
}

impl<'a> FullValidator<'a> {
    /// Wraps a schema.
    pub fn new(schema: &'a AbstractSchema) -> Self {
        FullValidator { schema }
    }

    /// Validates a document from its root (`doValidate` of §3).
    pub fn validate(&self, doc: &Doc) -> CastOutcome {
        self.validate_with_stats(doc).0
    }

    /// Validates and returns cost counters.
    pub fn validate_with_stats(&self, doc: &Doc) -> (CastOutcome, ValidationStats) {
        let mut stats = ValidationStats::default();
        let ok = match doc.label(doc.root()) {
            Some(label) => match self.schema.root_type(label) {
                Some(t) => self.validate_node(doc, doc.root(), t, &mut stats),
                None => false,
            },
            None => false,
        };
        (CastOutcome::from_bool(ok), stats)
    }

    /// Validates the subtree rooted at `node` against type `t`,
    /// accumulating stats. Exposed for reuse by the cast validators (the
    /// "validate explicitly" cases of §3.3).
    ///
    /// Iterative (explicit work stack): document depth does not consume
    /// call-stack frames, so arbitrarily deep documents are safe.
    pub fn validate_node(
        &self,
        doc: &Doc,
        node: NodeId,
        t: TypeId,
        stats: &mut ValidationStats,
    ) -> bool {
        let mut work: Vec<(NodeId, TypeId)> = vec![(node, t)];
        while let Some((node, t)) = work.pop() {
            stats.nodes_visited += 1;
            match self.schema.type_def(t) {
                TypeDef::Simple(s) => {
                    stats.value_checks += 1;
                    if !validate_simple_content(doc, node, |text| s.validate(text), stats) {
                        return false;
                    }
                }
                TypeDef::Complex(c) => {
                    let mut labels: Vec<Sym> = Vec::new();
                    for child in doc.validation_children(node) {
                        match doc.label(child) {
                            Some(l) => labels.push(l),
                            None => return false, // character data in element content
                        }
                    }
                    stats.content_symbols_scanned += labels.len();
                    if !c.dfa.accepts(&labels) {
                        return false;
                    }
                    let children: Vec<NodeId> = doc.validation_children(node).collect();
                    // Push in reverse so children are processed in order.
                    for (child, &label) in children.iter().zip(labels.iter()).rev() {
                        let Some(ct) = c.child_type(label) else {
                            return false;
                        };
                        work.push((*child, ct));
                    }
                }
            }
        }
        true
    }
}

/// Shared helper: checks that `node`'s content is a single text node (or
/// nothing, meaning the empty string) satisfying `check`. Counts the text
/// node as visited.
pub(crate) fn validate_simple_content(
    doc: &Doc,
    node: NodeId,
    check: impl FnOnce(&str) -> bool,
    stats: &mut ValidationStats,
) -> bool {
    let children: Vec<NodeId> = doc.validation_children(node).collect();
    match children.as_slice() {
        [] => check(""),
        [only] => {
            stats.nodes_visited += 1;
            match doc.kind(*only) {
                NodeKind::Text(text) => check(text),
                NodeKind::Element(_) => false,
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{SchemaBuilder, SimpleType};

    fn schema(ab: &mut Alphabet) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let item = b.declare("Item").unwrap();
        b.complex(item, "(sku)", &[("sku", text)]).unwrap();
        let items = b.declare("Items").unwrap();
        b.complex(items, "item*", &[("item", item)]).unwrap();
        b.root("items", items);
        b.finish().unwrap()
    }

    #[test]
    fn agrees_with_reference_semantics() {
        let mut ab = Alphabet::new();
        let s = schema(&mut ab);
        let items = ab.lookup("items").unwrap();
        let item = ab.lookup("item").unwrap();
        let sku = ab.lookup("sku").unwrap();

        let mut doc = Doc::new(items);
        for _ in 0..3 {
            let i = doc.add_element(doc.root(), item);
            let k = doc.add_element(i, sku);
            doc.add_text(k, "x");
        }
        let v = FullValidator::new(&s);
        assert!(v.validate(&doc).is_valid());
        assert_eq!(s.accepts_document(&doc), v.validate(&doc).is_valid());

        // Broken: item without sku.
        let mut bad = Doc::new(items);
        bad.add_element(bad.root(), item);
        assert!(!v.validate(&bad).is_valid());
        assert_eq!(s.accepts_document(&bad), v.validate(&bad).is_valid());
    }

    #[test]
    fn stats_count_every_node() {
        let mut ab = Alphabet::new();
        let s = schema(&mut ab);
        let items = ab.lookup("items").unwrap();
        let item = ab.lookup("item").unwrap();
        let sku = ab.lookup("sku").unwrap();
        let mut doc = Doc::new(items);
        for _ in 0..4 {
            let i = doc.add_element(doc.root(), item);
            let k = doc.add_element(i, sku);
            doc.add_text(k, "x");
        }
        let v = FullValidator::new(&s);
        let (out, stats) = v.validate_with_stats(&doc);
        assert!(out.is_valid());
        // 1 root + 4 item + 4 sku + 4 text nodes.
        assert_eq!(stats.nodes_visited, 13);
        // 4 labels at the root + 1 per item.
        assert_eq!(stats.content_symbols_scanned, 8);
        assert_eq!(stats.value_checks, 4);
    }

    #[test]
    fn unknown_root_label_is_invalid() {
        let mut ab = Alphabet::new();
        let s = schema(&mut ab);
        let other = ab.intern("unrelated");
        let doc = Doc::new(other);
        assert!(!FullValidator::new(&s).validate(&doc).is_valid());
    }
}
