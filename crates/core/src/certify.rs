//! Proof-carrying analysis: emit certificates for every static claim of a
//! [`CastContext`] and validate them with the independent checker.
//!
//! [`certify_context`] walks the computed `R_sub` / `R_dis` / `R_nondis`
//! relations, the product IDAs, the difference witnesses, and the safety
//! matrix, packaging each claim as a certificate the `schemacast-certify`
//! crate (which shares no code with any of the producers) can validate
//! locally:
//!
//! * every `(τ, τ') ∈ R_sub` pair → a [`SubCert`]: coinductive simulation +
//!   per-label child obligations covering exactly the useful symbols;
//! * every `(τ, τ') ∈ R_dis` pair → a [`DisCert`]: a closed product-pair
//!   invariant with per-symbol blocking reasons;
//! * every non-disjoint pair → a [`NondisCert`] in the least fixpoint's
//!   insertion order ([`TypeRelations::nondis_order`]), so each witness
//!   references only strictly earlier pairs;
//! * every reachable/analyzable complex pair → an [`IdaCert`] (exact
//!   safe/dead sets with rank functions tying down the published `IA`/`IR`)
//!   and, where inclusion fails, a [`PathCert`] difference witness;
//! * every safety-matrix row → a [`SafetyCert`] tracing the `static_skips` /
//!   `static_rejects` fast-path verdicts to the above.
//!
//! Failures surface as [`Diagnostic`]s in the `SC04xx` namespace: `SC0401`
//! when a claim could not be packaged (emission failure), `SC0402` when the
//! checker rejects an emitted certificate. Either way
//! [`CertificationRun::all_certified`] is false and `--certify` fails
//! closed.

use crate::cast::CastContext;
use crate::diag::{Diagnostic, Severity};
use crate::relations::TypeRelations;
use crate::script::{RejectReason, SiteDecision};
use crate::stats::ValidationStats;
use schemacast_automata::effect::{EffectOp, NormStep, Provenance};
use schemacast_automata::{
    difference_path_cert, ida_cert, raw_dfa, restricted_pair_invariant, shortest_in_both,
    simulation_relation, BitSet,
};
use schemacast_regex::Sym;
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};
use schemacast_tree::{Doc, Edit};
use std::collections::HashMap;
use std::time::Instant;

pub use schemacast_certify::{
    check_bundle, BlockedSymbol, CertBundle, CertKind, CheckFailure, CheckReport, ChildLink,
    DfaRef, DisBody, DisCert, EarlyClaim, FreshLeaf, IdaCert, NondisBody, NondisCert, NondisChild,
    PathCert, RawDfa, RelabelLink, SafetyCert, ScriptCert, ScriptOp, ScriptProv, ScriptSiteCert,
    ScriptStep, SimulationCert, SiteReason, SubBody, SubCert, SubObligation,
};

/// The outcome of certifying one schema pair: the emitted bundle, the
/// independent checker's report, and any failures as `SC04xx` diagnostics.
#[derive(Debug)]
pub struct CertificationRun {
    /// Everything that was emitted.
    pub bundle: CertBundle,
    /// The independent checker's verdicts over `bundle`.
    pub report: CheckReport,
    /// `SC0401` (emission) and `SC0402` (check) failures, in bundle order.
    pub diagnostics: Vec<Diagnostic>,
    /// Certificates emitted (excludes the raw DFA tables).
    pub certs_emitted: usize,
    /// Objects the checker examined (includes the DFA tables).
    pub certs_checked: usize,
    /// Wall-clock microseconds spent inside the checker.
    pub check_micros: usize,
}

impl CertificationRun {
    /// True iff every static claim was packaged and every certificate
    /// passed the independent checker.
    pub fn all_certified(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The certification counters as a stats fragment, for folding into
    /// `cast --stats` / batch report totals.
    pub fn stats(&self) -> ValidationStats {
        ValidationStats {
            certs_emitted: self.certs_emitted,
            certs_checked: self.certs_checked,
            cert_check_micros: self.check_micros,
            ..Default::default()
        }
    }
}

/// Pair-indexed bookkeeping shared by the emission passes.
struct Emitter<'a> {
    source: &'a AbstractSchema,
    target: &'a AbstractSchema,
    relations: &'a TypeRelations,
    bundle: CertBundle,
    diagnostics: Vec<Diagnostic>,
    /// DFA-pool index of each complex type's content model.
    src_dfa: HashMap<TypeId, DfaRef>,
    tgt_dfa: HashMap<TypeId, DfaRef>,
    /// Certificate index of each pair, per relation (assigned before the
    /// bodies are built — `R_sub`/`R_dis` references may be cyclic).
    sub_idx: HashMap<(TypeId, TypeId), u32>,
    dis_idx: HashMap<(TypeId, TypeId), u32>,
    nondis_idx: HashMap<(TypeId, TypeId), u32>,
    ida_idx: HashMap<(TypeId, TypeId), u32>,
}

impl<'a> Emitter<'a> {
    fn emission_failure(&mut self, s: TypeId, t: TypeId, what: &str, why: &str) {
        self.diagnostics.push(
            Diagnostic::new(
                "SC0401",
                Severity::Error,
                format!(
                    "{what} for pair ({}, {}) could not be certified: {why}",
                    self.source.type_name(s),
                    self.target.type_name(t)
                ),
            )
            .with_type_name(self.source.type_name(s)),
        );
    }

    /// Width of the pair alphabet for a complex × complex pair.
    fn pair_width(&self, s: TypeId, t: TypeId) -> usize {
        let cs = self.source.type_def(s).as_complex().expect("complex");
        let ct = self.target.type_def(t).as_complex().expect("complex");
        cs.dfa.alphabet_len().max(ct.dfa.alphabet_len())
    }
}

/// Emits and checks certificates for every static claim of `ctx`. See the
/// module docs for what is covered; the returned run carries the bundle,
/// the check report, and any `SC04xx` diagnostics.
pub fn certify_context(ctx: &CastContext<'_>) -> CertificationRun {
    certify_context_with_scripts(ctx, &[])
}

/// Like [`certify_context`], additionally certifying the *script-level*
/// static decision of each `(document, edit script)` item: every item the
/// analyzer decides (accept or reject) becomes a [`ScriptCert`] — the
/// per-site normalization trace plus its word-run, child-relation, and
/// IA/IR evidence. Items the analyzer cannot decide (dynamic path) make no
/// static claim and emit nothing.
pub fn certify_context_with_scripts(
    ctx: &CastContext<'_>,
    scripts: &[(&Doc, &[Edit])],
) -> CertificationRun {
    let source = ctx.source();
    let target = ctx.target();
    let mut em = Emitter {
        source,
        target,
        relations: ctx.relations(),
        bundle: CertBundle::default(),
        diagnostics: Vec::new(),
        src_dfa: HashMap::new(),
        tgt_dfa: HashMap::new(),
        sub_idx: HashMap::new(),
        dis_idx: HashMap::new(),
        nondis_idx: HashMap::new(),
        ida_idx: HashMap::new(),
    };

    // ---- DFA pool: one raw table per complex content model. ----
    for t in source.type_ids() {
        if let TypeDef::Complex(c) = source.type_def(t) {
            em.src_dfa.insert(t, em.bundle.dfas.len() as DfaRef);
            em.bundle.dfas.push(raw_dfa(&c.dfa));
        }
    }
    for t in target.type_ids() {
        if let TypeDef::Complex(c) = target.type_def(t) {
            em.tgt_dfa.insert(t, em.bundle.dfas.len() as DfaRef);
            em.bundle.dfas.push(raw_dfa(&c.dfa));
        }
    }

    emit_subs(&mut em);
    emit_diss(&mut em);
    emit_nondis(&mut em);
    emit_idas_and_paths(&mut em, ctx);
    emit_safety(&mut em, ctx);
    emit_scripts(&mut em, ctx, scripts);

    let certs_emitted = em.bundle.object_count() - em.bundle.dfas.len();
    let started = Instant::now();
    let report = check_bundle(&em.bundle);
    let check_micros = started.elapsed().as_micros() as usize;

    let mut diagnostics = em.diagnostics;
    for f in &report.failures {
        let pair = failed_pair(&em.bundle, f);
        let loc = match pair {
            Some((s, t)) => format!(
                " for pair ({}, {})",
                source.type_name(TypeId(s)),
                target.type_name(TypeId(t))
            ),
            None => String::new(),
        };
        let mut d = Diagnostic::new(
            "SC0402",
            Severity::Error,
            format!(
                "{} certificate {}{loc} failed validation: {}",
                f.kind.name(),
                f.index,
                f.reason
            ),
        );
        if let Some((s, _)) = pair {
            d = d.with_type_name(source.type_name(TypeId(s)));
        }
        diagnostics.push(d);
    }

    CertificationRun {
        certs_emitted,
        certs_checked: report.checked,
        check_micros,
        bundle: em.bundle,
        report,
        diagnostics,
    }
}

/// The (source, target) type pair a check failure is about, if its
/// certificate kind carries one.
fn failed_pair(bundle: &CertBundle, f: &CheckFailure) -> Option<(u32, u32)> {
    match f.kind {
        CertKind::Dfa => None,
        CertKind::Sub => bundle
            .subs
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        CertKind::Dis => bundle
            .diss
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        CertKind::Nondis => bundle
            .nondis
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        CertKind::Ida => bundle
            .idas
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        CertKind::Path => bundle
            .paths
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        CertKind::Safety => bundle
            .safety
            .get(f.index)
            .map(|c| (c.source_type, c.target_type)),
        // A script certificate spans sites with different type pairs; its
        // failure reasons name the offending site instead.
        CertKind::Script => None,
        // Composition certificates live in a ChainBundle, not a CertBundle;
        // chain certification reports their pairs itself.
        CertKind::Comp => None,
    }
}

/// All `(s, t)` pairs of the two schemas satisfying `keep`, sorted.
fn pairs_where(
    source: &AbstractSchema,
    target: &AbstractSchema,
    keep: impl Fn(TypeId, TypeId) -> bool,
) -> Vec<(TypeId, TypeId)> {
    let mut out = Vec::new();
    for s in source.type_ids() {
        for t in target.type_ids() {
            if keep(s, t) {
                out.push((s, t));
            }
        }
    }
    out
}

/// `R_sub` certificates: indices first (the greatest fixpoint justifies
/// pairs circularly), then bodies.
fn emit_subs(em: &mut Emitter<'_>) {
    let rel = em.relations;
    let pairs = pairs_where(em.source, em.target, |s, t| rel.subsumed(s, t));
    for (i, &(s, t)) in pairs.iter().enumerate() {
        em.sub_idx.insert((s, t), i as u32);
    }
    for (s, t) in pairs {
        let body = match (em.source.type_def(s), em.target.type_def(t)) {
            (TypeDef::Simple(_), TypeDef::Simple(_)) => Some(SubBody::SimpleAxiom),
            (TypeDef::Complex(cs), TypeDef::Complex(ct)) => {
                match simulation_relation(&cs.dfa, &ct.dfa) {
                    None => {
                        em.emission_failure(s, t, "subsumption", "no simulation relation exists");
                        None
                    }
                    Some(relation) => {
                        let mut obligations = Vec::new();
                        let mut ok = true;
                        for i in cs.dfa.useful_symbols().iter() {
                            let sym = Sym(i as u32);
                            let (Some(a), Some(b)) = (cs.child_type(sym), ct.child_type(sym))
                            else {
                                em.emission_failure(
                                    s,
                                    t,
                                    "subsumption",
                                    "useful label lacks child typing",
                                );
                                ok = false;
                                break;
                            };
                            let Some(&child_ref) = em.sub_idx.get(&(a, b)) else {
                                em.emission_failure(
                                    s,
                                    t,
                                    "subsumption",
                                    "child pair left R_sub but the parent survived",
                                );
                                ok = false;
                                break;
                            };
                            obligations.push(SubObligation {
                                symbol: i as u32,
                                child_source: a.index() as u32,
                                child_target: b.index() as u32,
                                child_ref,
                            });
                        }
                        ok.then_some(SubBody::Complex {
                            simulation: SimulationCert {
                                a: em.src_dfa[&s],
                                b: em.tgt_dfa[&t],
                                relation,
                            },
                            obligations,
                        })
                    }
                }
            }
            // Mixed pairs are never subsumed; certifying one would mean the
            // fixpoint itself is broken.
            _ => {
                em.emission_failure(s, t, "subsumption", "mixed simple/complex pair in R_sub");
                None
            }
        };
        // Keep indices aligned even on failure: a placeholder axiom would
        // be unsound, so emit the failing pair as an (invalid) empty
        // complex body only when we have nothing — instead, re-push a
        // SimpleAxiom ONLY for genuinely simple pairs. For failed pairs we
        // still must occupy the slot; use the body we have or a marker that
        // the checker rejects (empty simulation misses the start pair).
        em.bundle.subs.push(SubCert {
            source_type: s.index() as u32,
            target_type: t.index() as u32,
            body: body.unwrap_or(SubBody::Complex {
                simulation: SimulationCert {
                    a: 0,
                    b: 0,
                    relation: Vec::new(),
                },
                obligations: Vec::new(),
            }),
        });
    }
}

/// `R_dis` certificates: indices first (coinductive), then bodies.
fn emit_diss(em: &mut Emitter<'_>) {
    let rel = em.relations;
    let pairs = pairs_where(em.source, em.target, |s, t| rel.disjoint(s, t));
    for (i, &(s, t)) in pairs.iter().enumerate() {
        em.dis_idx.insert((s, t), i as u32);
    }
    for (s, t) in pairs {
        let body = match (em.source.type_def(s), em.target.type_def(t)) {
            (TypeDef::Complex(cs), TypeDef::Complex(ct)) => {
                let width = em.pair_width(s, t);
                // P = labels typed on both sides with a non-disjoint child
                // pair (the least fixpoint's final permitted set); every
                // other symbol is blocked with its soundness reason.
                let mut permitted = BitSet::new(width);
                let mut blocked = Vec::new();
                for i in 0..width {
                    let sym = Sym(i as u32);
                    match (cs.child_type(sym), ct.child_type(sym)) {
                        (Some(a), Some(b)) => {
                            if em.relations.disjoint(a, b) {
                                blocked.push(BlockedSymbol::DisjointChild {
                                    symbol: i as u32,
                                    child_source: a.index() as u32,
                                    child_target: b.index() as u32,
                                    dis_ref: em.dis_idx[&(a, b)],
                                });
                            } else {
                                permitted.insert(i);
                            }
                        }
                        // Untyped on at least one side: absent from that
                        // side's valid trees (builder invariant).
                        _ => blocked.push(BlockedSymbol::Untyped { symbol: i as u32 }),
                    }
                }
                match restricted_pair_invariant(&cs.dfa, &ct.dfa, &permitted) {
                    Some(invariant) => Some(DisBody::Complex {
                        a: em.src_dfa[&s],
                        b: em.tgt_dfa[&t],
                        invariant,
                        blocked,
                    }),
                    None => {
                        em.emission_failure(
                            s,
                            t,
                            "disjointness",
                            "a common word exists over the permitted labels",
                        );
                        None
                    }
                }
            }
            // At least one simple side: value-space / childless-element
            // reasoning, a trusted axiom leaf.
            _ => Some(DisBody::SimpleAxiom),
        };
        em.bundle.diss.push(DisCert {
            source_type: s.index() as u32,
            target_type: t.index() as u32,
            body: body.unwrap_or(DisBody::Complex {
                a: 0,
                b: 0,
                invariant: Vec::new(),
                blocked: Vec::new(),
            }),
        });
    }
}

/// `R_nondis` certificates, emitted in the least fixpoint's insertion
/// order so every witness references strictly earlier pairs.
fn emit_nondis(em: &mut Emitter<'_>) {
    let rel = em.relations;
    let mut pairs: Vec<(u32, TypeId, TypeId)> = Vec::new();
    for s in em.source.type_ids() {
        for t in em.target.type_ids() {
            if let Some(order) = rel.nondis_order(s, t) {
                pairs.push((order, s, t));
            }
        }
    }
    pairs.sort_unstable();
    for (i, &(_, s, t)) in pairs.iter().enumerate() {
        em.nondis_idx.insert((s, t), i as u32);
    }
    for &(order, s, t) in &pairs {
        let body = match (em.source.type_def(s), em.target.type_def(t)) {
            (TypeDef::Complex(cs), TypeDef::Complex(ct)) => {
                let width = em.pair_width(s, t);
                // Only labels whose child pair entered the fixpoint
                // *earlier* may appear in the witness — exactly the set P
                // at this pair's insertion moment, so a witness exists.
                let mut allowed = BitSet::new(width);
                for i in 0..width {
                    let sym = Sym(i as u32);
                    if let (Some(a), Some(b)) = (cs.child_type(sym), ct.child_type(sym)) {
                        if rel.nondis_order(a, b).is_some_and(|o| o < order) {
                            allowed.insert(i);
                        }
                    }
                }
                match shortest_in_both(&cs.dfa, &ct.dfa, Some(&allowed)) {
                    Some(word) => {
                        let mut children = Vec::with_capacity(word.len());
                        for &sym in &word {
                            let (a, b) = (
                                cs.child_type(sym).expect("allowed implies typed"),
                                ct.child_type(sym).expect("allowed implies typed"),
                            );
                            children.push(NondisChild {
                                child_source: a.index() as u32,
                                child_target: b.index() as u32,
                                nondis_ref: em.nondis_idx[&(a, b)],
                            });
                        }
                        Some(NondisBody::Complex {
                            a: em.src_dfa[&s],
                            b: em.tgt_dfa[&t],
                            word: word.iter().map(|s| s.0).collect(),
                            children,
                        })
                    }
                    None => {
                        em.emission_failure(
                            s,
                            t,
                            "non-disjointness",
                            "no witness word exists over earlier labels",
                        );
                        None
                    }
                }
            }
            // A simple side: shared value or shared childless element.
            _ => Some(NondisBody::SimpleAxiom),
        };
        em.bundle.nondis.push(NondisCert {
            source_type: s.index() as u32,
            target_type: t.index() as u32,
            body: body.unwrap_or(NondisBody::Complex {
                a: 0,
                b: 0,
                word: Vec::new(),
                children: vec![NondisChild {
                    child_source: 0,
                    child_target: 0,
                    nondis_ref: u32::MAX,
                }],
            }),
        });
    }
}

/// IDA exactness certificates for every reachable or analyzable complex
/// pair, plus difference paths where inclusion fails.
fn emit_idas_and_paths(em: &mut Emitter<'_>, ctx: &CastContext<'_>) {
    let mut pairs = ctx.reachable_pairs();
    pairs.extend(ctx.analyzable_pairs());
    pairs.sort_unstable_by_key(|&(s, t)| (s.index(), t.index()));
    pairs.dedup();
    for (s, t) in pairs {
        let (Some(cs), Some(ct)) = (
            em.source.type_def(s).as_complex(),
            em.target.type_def(t).as_complex(),
        ) else {
            continue;
        };
        let ida = ctx.product_ida(s, t);
        let (a_ref, b_ref) = (em.src_dfa[&s], em.tgt_dfa[&t]);
        match ida_cert(
            &cs.dfa,
            &ct.dfa,
            &ida,
            s.index() as u32,
            t.index() as u32,
            a_ref,
            b_ref,
        ) {
            Some(cert) => {
                em.ida_idx.insert((s, t), em.bundle.idas.len() as u32);
                em.bundle.idas.push(cert);
            }
            None => em.emission_failure(
                s,
                t,
                "immediate-decision sets",
                "product state space is not the pair grid",
            ),
        }
        if let Some(path) = difference_path_cert(
            &cs.dfa,
            &ct.dfa,
            s.index() as u32,
            t.index() as u32,
            a_ref,
            b_ref,
        ) {
            em.bundle.paths.push(path);
        }
    }
}

/// Safety-matrix trace certificates: one per analyzable row.
fn emit_safety(em: &mut Emitter<'_>, ctx: &CastContext<'_>) {
    for entry in ctx.safety_matrix().entries() {
        let (s, t) = (entry.source, entry.target);
        let Some(&ida_ref) = em.ida_idx.get(&(s, t)) else {
            em.emission_failure(s, t, "safety verdicts", "pair has no IDA certificate");
            continue;
        };
        match ctx.safety_certificate(entry, ida_ref, &em.sub_idx, &em.dis_idx) {
            Ok(cert) => em.bundle.safety.push(cert),
            Err(why) => em.emission_failure(s, t, "safety verdicts", &why),
        }
    }
}

/// Whole-script decision certificates: one per statically decided item.
///
/// Accepted scripts emit every non-identity site with full child evidence
/// (`R_sub` links + fresh-leaf axioms); rejected scripts emit only the
/// rejecting sites (one suffices for the verdict, and undecided sites make
/// no checkable claim). Missing relation certificates for a consumed fact
/// are emission failures — the claim exists but cannot be packaged, so
/// `--certify` fails closed.
fn emit_scripts(em: &mut Emitter<'_>, ctx: &CastContext<'_>, scripts: &[(&Doc, &[Edit])]) {
    use crate::script::ScriptVerdict;
    for &(doc, edits) in scripts {
        let Some(analysis) = ctx.script_analysis(doc, edits) else {
            continue; // dynamic path: no static claim
        };
        let accepted = match analysis.verdict {
            ScriptVerdict::Accept => true,
            ScriptVerdict::Reject => false,
            ScriptVerdict::Undecided => continue,
        };
        let mut sites = Vec::new();
        let mut ok = true;
        for site in &analysis.sites {
            let verdict = match site.decision {
                SiteDecision::Identity => continue,
                SiteDecision::Accept => {
                    if !accepted {
                        continue; // rejecting scripts claim only the rejects
                    }
                    true
                }
                SiteDecision::Reject(_) => false,
                SiteDecision::Undecided => continue,
            };
            let (s, t) = (site.source_type, site.target_type);
            let (Some(&a_ref), Some(&b_ref)) = (em.src_dfa.get(&s), em.tgt_dfa.get(&t)) else {
                em.emission_failure(s, t, "script verdict", "site type pair has no content DFA");
                ok = false;
                break;
            };
            let mut kept_links = Vec::new();
            let mut fresh_leaves = Vec::new();
            let mut reject = None;
            if verdict {
                for c in &site.kept {
                    let Some(&sub_ref) = em.sub_idx.get(&(c.source, c.target)) else {
                        em.emission_failure(
                            c.source,
                            c.target,
                            "script verdict",
                            "consumed R_sub fact has no certificate",
                        );
                        ok = false;
                        break;
                    };
                    kept_links.push(ChildLink {
                        pos: c.pos as u32,
                        child_source: c.source.index() as u32,
                        child_target: c.target.index() as u32,
                        sub_ref,
                    });
                }
                if !ok {
                    break;
                }
                for f in &site.fresh {
                    let Some(target) = f.target else {
                        em.emission_failure(
                            s,
                            t,
                            "script verdict",
                            "accepted fresh child lacks target typing",
                        );
                        ok = false;
                        break;
                    };
                    fresh_leaves.push(FreshLeaf {
                        pos: f.pos as u32,
                        child_target: target.index() as u32,
                    });
                }
                if !ok {
                    break;
                }
            } else {
                reject = match site.decision {
                    SiteDecision::Reject(RejectReason::Membership) => Some(SiteReason::Membership),
                    SiteDecision::Reject(RejectReason::FreshInvalid { pos }) => {
                        let Some(f) = site.fresh.iter().find(|f| f.pos == pos) else {
                            em.emission_failure(
                                s,
                                t,
                                "script verdict",
                                "fresh reject lost its fact",
                            );
                            ok = false;
                            break;
                        };
                        let Some(target) = f.target else {
                            em.emission_failure(
                                s,
                                t,
                                "script verdict",
                                "fresh reject lacks typing",
                            );
                            ok = false;
                            break;
                        };
                        Some(SiteReason::FreshInvalid {
                            pos: pos as u32,
                            child_target: target.index() as u32,
                        })
                    }
                    SiteDecision::Reject(RejectReason::DisjointChild { pos }) => {
                        let Some(c) = site.kept.iter().find(|c| c.pos == pos) else {
                            em.emission_failure(
                                s,
                                t,
                                "script verdict",
                                "disjoint reject lost its fact",
                            );
                            ok = false;
                            break;
                        };
                        let Some(&dis_ref) = em.dis_idx.get(&(c.source, c.target)) else {
                            em.emission_failure(
                                c.source,
                                c.target,
                                "script verdict",
                                "consumed R_dis fact has no certificate",
                            );
                            ok = false;
                            break;
                        };
                        Some(SiteReason::DisjointChild {
                            pos: pos as u32,
                            child_source: c.source.index() as u32,
                            child_target: c.target.index() as u32,
                            dis_ref,
                        })
                    }
                    _ => unreachable!("verdict false only on Reject"),
                };
            }
            // An early-settle claim is only attachable when its decision
            // agrees with the site verdict (a rejected-by-child-fact site
            // may still have word-accepted early) and this pair's IDA was
            // certified. It is optional evidence either way.
            let early = site.early.as_ref().and_then(|e| {
                if e.ia != verdict {
                    return None;
                }
                em.ida_idx.get(&(s, t)).map(|&ida_ref| EarlyClaim {
                    ida_ref,
                    pair_a: e.qa,
                    pair_b: e.qb,
                    net_consumed: e.net_consumed as u32,
                    orig_consumed: e.orig_consumed as u32,
                    ia: e.ia,
                })
            });
            sites.push(ScriptSiteCert {
                source_type: s.index() as u32,
                target_type: t.index() as u32,
                a: a_ref,
                b: b_ref,
                word: site.net.orig().iter().map(|s| s.0).collect(),
                ops: site.net.ops().iter().map(script_op).collect(),
                trace: site.net.trace().iter().map(script_step).collect(),
                net: site.net.word().iter().map(|s| s.0).collect(),
                prov: site.net.provenance().iter().map(script_prov).collect(),
                verdict,
                kept_links,
                fresh_leaves,
                reject,
                early,
            });
        }
        if ok {
            em.bundle.scripts.push(ScriptCert { accepted, sites });
        }
    }
}

fn script_op(op: &EffectOp) -> ScriptOp {
    match *op {
        EffectOp::Insert { pos, sym } => ScriptOp::Insert {
            pos: pos as u32,
            sym: sym.0,
        },
        EffectOp::Delete { pos } => ScriptOp::Delete { pos: pos as u32 },
        EffectOp::Relabel { pos, sym } => ScriptOp::Relabel {
            pos: pos as u32,
            sym: sym.0,
        },
    }
}

fn script_step(step: &NormStep) -> ScriptStep {
    match *step {
        NormStep::InsertFresh { pos, sym } => ScriptStep::InsertFresh {
            pos: pos as u32,
            sym: sym.0,
        },
        NormStep::CancelInserted { pos, sym } => ScriptStep::CancelInserted {
            pos: pos as u32,
            sym: sym.0,
        },
        NormStep::DeleteOriginal { pos, origin } => ScriptStep::DeleteOriginal {
            pos: pos as u32,
            origin: origin as u32,
        },
        NormStep::OverwriteInserted { pos, from, to } => ScriptStep::OverwriteInserted {
            pos: pos as u32,
            from: from.0,
            to: to.0,
        },
        NormStep::RenameBack { pos, origin, sym } => ScriptStep::RenameBack {
            pos: pos as u32,
            origin: origin as u32,
            sym: sym.0,
        },
        NormStep::RenameOriginal {
            pos,
            origin,
            from,
            to,
        } => ScriptStep::RenameOriginal {
            pos: pos as u32,
            origin: origin as u32,
            from: from.0,
            to: to.0,
        },
    }
}

fn script_prov(p: &Provenance) -> ScriptProv {
    match *p {
        Provenance::Kept(o) => ScriptProv::Kept { origin: o as u32 },
        Provenance::Renamed(o) => ScriptProv::Renamed { origin: o as u32 },
        Provenance::Fresh => ScriptProv::Fresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{SchemaBuilder, SimpleType};

    fn po_schema(ab: &mut Alphabet, optional_bill: bool) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let addr = b.declare("USAddress").unwrap();
        b.complex(
            addr,
            "(name, street, city)",
            &[("name", text), ("street", text), ("city", text)],
        )
        .unwrap();
        let items = b.declare("Items").unwrap();
        b.complex(items, "item*", &[("item", text)]).unwrap();
        let po = b.declare("PO").unwrap();
        let model = if optional_bill {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", addr), ("billTo", addr), ("items", items)],
        )
        .unwrap();
        b.root("purchaseOrder", po);
        b.finish().unwrap()
    }

    #[test]
    fn figure1_pair_certifies_end_to_end() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);
        let run = certify_context(&ctx);
        assert!(run.all_certified(), "diagnostics: {:#?}", run.diagnostics);
        assert!(run.report.all_valid());
        assert!(run.certs_emitted > 0);
        assert_eq!(run.certs_checked, run.bundle.object_count());
        // The run covers all three relations plus IDAs, paths, and safety.
        assert!(!run.bundle.subs.is_empty(), "USAddress/Items subsumed");
        assert!(!run.bundle.nondis.is_empty());
        assert!(!run.bundle.idas.is_empty());
        assert!(!run.bundle.paths.is_empty(), "PO pair not included");
        assert!(!run.bundle.safety.is_empty());
        // Stats fragment carries the counters.
        let stats = run.stats();
        assert_eq!(stats.certs_emitted, run.certs_emitted);
        assert_eq!(stats.certs_checked, run.certs_checked);
    }

    #[test]
    fn disjoint_pair_emits_checked_dis_certificates() {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, model: &str, kids: &[&str]| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let root = b.declare("Root").unwrap();
            let child_types: Vec<(&str, TypeId)> = kids.iter().map(|k| (*k, text)).collect();
            b.complex(root, model, &child_types).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, "(a, a)", &["a"]);
        let target = mk(&mut ab, "(b, b)", &["b"]);
        let ctx = CastContext::new(&source, &target, &ab);
        let run = certify_context(&ctx);
        assert!(run.all_certified(), "{:#?}", run.diagnostics);
        // The complex Root/Root pair is disjoint and must carry a real
        // invariant certificate (not an axiom).
        let root_s = source.type_by_name("Root").unwrap();
        let root_t = target.type_by_name("Root").unwrap();
        assert!(ctx.relations().disjoint(root_s, root_t));
        let has_complex_dis = run.bundle.diss.iter().any(|c| {
            c.source_type == root_s.index() as u32
                && c.target_type == root_t.index() as u32
                && matches!(c.body, DisBody::Complex { .. })
        });
        assert!(has_complex_dis);
    }

    #[test]
    fn script_decisions_certify_end_to_end() {
        use schemacast_tree::{Doc, Edit};
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let po = ab.lookup("purchaseOrder").unwrap();
        let ship = ab.lookup("shipTo").unwrap();
        let items = ab.lookup("items").unwrap();
        let item = ab.lookup("item").unwrap();
        let name = ab.lookup("name").unwrap();
        let mut doc = Doc::new(po);
        let ship_el = doc.add_element(doc.root(), ship);
        for part in ["name", "street", "city"] {
            let l = ab.lookup(part).unwrap();
            doc.add_element(ship_el, l);
        }
        let items_el = doc.add_element(doc.root(), items);
        doc.add_element(items_el, item);
        doc.add_element(items_el, item);
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);

        // A third item keeps `item*` happy; a `name` in the item list can
        // never be valid there.
        let good: Vec<Edit> = vec![Edit::InsertElement {
            parent: items_el,
            position: 1,
            label: item,
        }];
        let bad: Vec<Edit> = vec![Edit::InsertElement {
            parent: items_el,
            position: 0,
            label: name,
        }];
        let items_vec: Vec<(&Doc, &[Edit])> = vec![(&doc, &good), (&doc, &bad)];
        let run = certify_context_with_scripts(&ctx, &items_vec);
        assert!(run.all_certified(), "diagnostics: {:#?}", run.diagnostics);
        assert_eq!(run.bundle.scripts.len(), 2);
        assert!(run.bundle.scripts[0].accepted);
        assert!(!run.bundle.scripts[1].accepted);
        // The accepted script's site carries full child evidence.
        let site = &run.bundle.scripts[0].sites[0];
        assert!(site.verdict);
        assert_eq!(site.fresh_leaves.len(), 1);
        assert_eq!(site.kept_links.len(), 2);
    }

    #[test]
    fn corrupting_the_bundle_is_caught_and_reported() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);
        let run = certify_context(&ctx);
        // Flip one IA bit: the pointwise equation against the certified
        // exact sets must catch it, and the diagnostic must carry SC0402.
        let mut bundle = run.bundle.clone();
        let cert = &mut bundle.idas[0];
        cert.ia[0] = !cert.ia[0];
        let report = check_bundle(&bundle);
        assert!(!report.all_valid());
        assert_eq!(report.failures[0].kind, CertKind::Ida);
    }
}
