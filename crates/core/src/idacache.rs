//! Sharded, contention-free caches keyed by (source, target) type pairs.
//!
//! [`crate::CastContext`] interns two kinds of per-pair artifacts lazily, the
//! first time the validator (or the static analyzer) meets the pair: the
//! product IDA of §4, and the static edit-safety analysis derived from it.
//! Under the original single `RwLock<HashMap>` every builder held the
//! *whole* cache write lock while constructing its automaton, serializing
//! all other pairs behind it — exactly the wrong shape for the batch engine,
//! where many worker threads hit the cache at once.
//!
//! [`ShardedCache`] fixes both problems. Its invariants:
//!
//! * **Sharding** — the key hashes to one of [`SHARD_COUNT`] independent
//!   shards (a fixed Fibonacci mix, so a key's shard never changes), and a
//!   lock only ever guards its own shard's map: lookups of different pairs
//!   rarely touch the same lock and never block on another pair's build.
//! * **Build outside the lock** — on a miss the shard lock is *released*
//!   during construction and reacquired only to publish. No lock is ever
//!   held across `build`, so builds of colliding keys proceed in parallel
//!   and a panicking builder cannot poison a shard.
//! * **Publish-once** — two racing builders may both construct, but
//!   `entry().or_insert` makes the first publication win and later callers
//!   (including the losing builder itself) receive a clone of that same
//!   `Arc`. At most one value per key is ever observable: once any caller
//!   has seen an `Arc` for a key, every subsequent caller sees a pointer to
//!   the same allocation, forever (asserted by the interleaving stress test
//!   below with `Arc::ptr_eq`).

use loomlite::sync::{Arc, Mutex};
use schemacast_automata::ProductIda;
use schemacast_schema::TypeId;
use std::collections::HashMap;

/// Number of shards. A modest power of two: enough that a worker pool on
/// typical hardware rarely collides, small enough to stay cache-friendly.
const SHARD_COUNT: usize = 16;

type Shard<V> = Mutex<HashMap<(TypeId, TypeId), Arc<V>>>;

/// A concurrent map from (source, target) type pairs to shared values.
pub(crate) struct ShardedCache<V> {
    shards: [Shard<V>; SHARD_COUNT],
}

/// The product-IDA instance of the cache (the original use).
pub(crate) type ShardedIdaCache = ShardedCache<ProductIda>;

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        ShardedCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

/// Fibonacci-style mix of the pair into a shard index.
#[inline]
fn shard_index(key: (TypeId, TypeId)) -> usize {
    let packed = ((key.0 .0 as u64) << 32) | key.1 .0 as u64;
    (packed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize % SHARD_COUNT
}

impl<V> ShardedCache<V> {
    /// Creates an empty cache.
    pub(crate) fn new() -> ShardedCache<V> {
        ShardedCache::default()
    }

    /// The cached value for `key`, if already published.
    #[cfg(test)]
    pub(crate) fn get(&self, key: (TypeId, TypeId)) -> Option<Arc<V>> {
        self.shards[shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .map(Arc::clone)
    }

    /// The value for `key`, building it with `build` on a miss.
    ///
    /// `build` runs with **no** lock held; racing callers converge on the
    /// first published `Arc` (a losing builder's value is dropped).
    pub(crate) fn get_or_insert_with(
        &self,
        key: (TypeId, TypeId),
        build: impl FnOnce() -> V,
    ) -> Arc<V> {
        let shard = &self.shards[shard_index(key)];
        if let Some(v) = shard
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .map(Arc::clone)
        {
            return v;
        }
        let built = Arc::new(build());
        Arc::clone(
            shard
                .lock()
                .expect("cache shard poisoned")
                .entry(key)
                .or_insert(built),
        )
    }

    /// Number of cached values.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_automata::Dfa;
    use schemacast_regex::{Regex, Sym};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn tiny_ida() -> ProductIda {
        let a = Dfa::from_regex(&Regex::sym(Sym(0)), 1).expect("compiles");
        ProductIda::new(&a, &a)
    }

    #[test]
    fn get_or_insert_publishes_once() {
        let cache = ShardedIdaCache::new();
        let builds = AtomicUsize::new(0);
        let key = (TypeId(3), TypeId(7));
        let first = cache.get_or_insert_with(key, || {
            builds.fetch_add(1, Ordering::Relaxed);
            tiny_ida()
        });
        let second = cache.get_or_insert_with(key, || {
            builds.fetch_add(1, Ordering::Relaxed);
            tiny_ida()
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "hit must not rebuild");
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&first, &cache.get(key).expect("cached")));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_builders_converge_on_one_arc() {
        let cache = ShardedIdaCache::new();
        let key = (TypeId(1), TypeId(2));
        let published: Vec<Arc<ProductIda>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    s.spawn(move || cache.get_or_insert_with(key, tiny_ida))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ida in &published {
            assert!(
                Arc::ptr_eq(ida, &published[0]),
                "two different IDAs published for one pair"
            );
        }
        assert_eq!(cache.len(), 1);
    }

    /// Deterministic-interleaving stress: 16 builders are held at a barrier
    /// *inside* `build`, guaranteeing all of them miss the first lookup and
    /// every one of them constructs a candidate value concurrently. The
    /// publish-once invariant must still collapse all 16 candidates into a
    /// single observable `Arc`, and the cache must record exactly one build
    /// as the published value while the other 15 are dropped.
    #[test]
    fn sixteen_racing_builders_publish_once() {
        const BUILDERS: usize = 16;
        for round in 0..8u32 {
            let cache: ShardedCache<usize> = ShardedCache::new();
            let key = (TypeId(round), TypeId(round.wrapping_mul(7)));
            let gate = Barrier::new(BUILDERS);
            let builds = AtomicUsize::new(0);

            let published: Vec<Arc<usize>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..BUILDERS)
                    .map(|id| {
                        let (cache, gate, builds) = (&cache, &gate, &builds);
                        s.spawn(move || {
                            cache.get_or_insert_with(key, || {
                                // Every builder reaches this point before any
                                // is allowed to publish: the interleaving is
                                // forced, not left to scheduler luck.
                                gate.wait();
                                builds.fetch_add(1, Ordering::SeqCst);
                                id
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            assert_eq!(
                builds.load(Ordering::SeqCst),
                BUILDERS,
                "the barrier must force every builder to construct"
            );
            for v in &published {
                assert!(
                    Arc::ptr_eq(v, &published[0]),
                    "round {round}: a second value became observable"
                );
            }
            // Losing candidates are dropped: the published Arc holds one
            // strong count per returned clone plus the cache's own.
            drop(published);
            let survivor = cache.get(key).expect("published value retained");
            assert_eq!(Arc::strong_count(&survivor), 2);
            assert_eq!(cache.len(), 1);
        }
    }

    /// Model-checked publish-once: under `--cfg loomlite` every bounded
    /// interleaving of two racing builders is explored (lock handoffs
    /// included), and each must collapse to a single observable `Arc`; in
    /// a normal build this is one smoke execution over std primitives.
    /// Unlike the barrier test above, no interleaving is *forced* — the
    /// scheduler itself enumerates them, including the one where both
    /// builders miss, both construct, and one publication must lose.
    #[test]
    fn model_publish_once_under_every_interleaving() {
        loomlite::model(|| {
            let cache: ShardedCache<usize> = ShardedCache::new();
            let key = (TypeId(1), TypeId(2));
            let published: Vec<Arc<usize>> = loomlite::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|id| {
                        let cache = &cache;
                        s.spawn(move || cache.get_or_insert_with(key, move || id))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!(
                Arc::ptr_eq(&published[0], &published[1]),
                "two values observable for one key"
            );
            assert_eq!(cache.len(), 1);
            // The published value is one of the candidates, whole — a
            // torn read would surface as neither 0 nor 1.
            assert!(*published[0] == 0 || *published[0] == 1);
        });
    }

    #[test]
    fn distinct_pairs_do_not_collide_logically() {
        let cache = ShardedIdaCache::new();
        for i in 0..64u32 {
            cache.get_or_insert_with((TypeId(i), TypeId(i + 1)), tiny_ida);
        }
        assert_eq!(cache.len(), 64);
        for i in 0..64u32 {
            assert!(cache.get((TypeId(i), TypeId(i + 1))).is_some());
        }
        assert!(cache.get((TypeId(99), TypeId(100))).is_none());
    }
}
