//! Sharded, contention-free cache of [`ProductIda`]s.
//!
//! [`crate::CastContext`] builds one product IDA per (source, target)
//! complex-type pair, lazily, the first time the validator meets the pair.
//! Under the original single `RwLock<HashMap>` every builder held the
//! *whole* cache write lock while constructing its automaton, serializing
//! all other pairs behind it — exactly the wrong shape for the batch engine,
//! where many worker threads hit the cache at once.
//!
//! This cache fixes both problems:
//!
//! * **Sharding** — the key hashes to one of [`SHARD_COUNT`] independent
//!   shards, so lookups of different pairs rarely touch the same lock.
//! * **Build outside the lock** — on a miss the shard lock is *released*
//!   during IDA construction and reacquired only to publish. Two racing
//!   builders may both construct, but `entry().or_insert` makes the first
//!   publication win: every caller receives a clone of the same `Arc`, so
//!   at most one IDA per pair is ever observable (asserted by tests).

use schemacast_automata::ProductIda;
use schemacast_schema::TypeId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Number of shards. A modest power of two: enough that a worker pool on
/// typical hardware rarely collides, small enough to stay cache-friendly.
const SHARD_COUNT: usize = 16;

type Shard = Mutex<HashMap<(TypeId, TypeId), Arc<ProductIda>>>;

/// A concurrent map from (source, target) type pairs to their product IDA.
#[derive(Default)]
pub(crate) struct ShardedIdaCache {
    shards: [Shard; SHARD_COUNT],
}

/// Fibonacci-style mix of the pair into a shard index.
#[inline]
fn shard_index(key: (TypeId, TypeId)) -> usize {
    let packed = ((key.0 .0 as u64) << 32) | key.1 .0 as u64;
    (packed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize % SHARD_COUNT
}

impl ShardedIdaCache {
    /// Creates an empty cache.
    pub(crate) fn new() -> ShardedIdaCache {
        ShardedIdaCache::default()
    }

    /// The cached IDA for `key`, if already published.
    #[cfg(test)]
    pub(crate) fn get(&self, key: (TypeId, TypeId)) -> Option<Arc<ProductIda>> {
        self.shards[shard_index(key)]
            .lock()
            .expect("ida cache shard poisoned")
            .get(&key)
            .map(Arc::clone)
    }

    /// The IDA for `key`, building it with `build` on a miss.
    ///
    /// `build` runs with **no** lock held; racing callers converge on the
    /// first published `Arc` (a losing builder's automaton is dropped).
    pub(crate) fn get_or_insert_with(
        &self,
        key: (TypeId, TypeId),
        build: impl FnOnce() -> ProductIda,
    ) -> Arc<ProductIda> {
        let shard = &self.shards[shard_index(key)];
        if let Some(ida) = shard
            .lock()
            .expect("ida cache shard poisoned")
            .get(&key)
            .map(Arc::clone)
        {
            return ida;
        }
        let built = Arc::new(build());
        Arc::clone(
            shard
                .lock()
                .expect("ida cache shard poisoned")
                .entry(key)
                .or_insert(built),
        )
    }

    /// Number of cached IDAs.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("ida cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_automata::Dfa;
    use schemacast_regex::{Regex, Sym};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_ida() -> ProductIda {
        let a = Dfa::from_regex(&Regex::sym(Sym(0)), 1).expect("compiles");
        ProductIda::new(&a, &a)
    }

    #[test]
    fn get_or_insert_publishes_once() {
        let cache = ShardedIdaCache::new();
        let builds = AtomicUsize::new(0);
        let key = (TypeId(3), TypeId(7));
        let first = cache.get_or_insert_with(key, || {
            builds.fetch_add(1, Ordering::Relaxed);
            tiny_ida()
        });
        let second = cache.get_or_insert_with(key, || {
            builds.fetch_add(1, Ordering::Relaxed);
            tiny_ida()
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "hit must not rebuild");
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&first, &cache.get(key).expect("cached")));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_builders_converge_on_one_arc() {
        let cache = ShardedIdaCache::new();
        let key = (TypeId(1), TypeId(2));
        let published: Vec<Arc<ProductIda>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    s.spawn(move || cache.get_or_insert_with(key, tiny_ida))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ida in &published {
            assert!(
                Arc::ptr_eq(ida, &published[0]),
                "two different IDAs published for one pair"
            );
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_pairs_do_not_collide_logically() {
        let cache = ShardedIdaCache::new();
        for i in 0..64u32 {
            cache.get_or_insert_with((TypeId(i), TypeId(i + 1)), tiny_ida);
        }
        assert_eq!(cache.len(), 64);
        for i in 0..64u32 {
            assert!(cache.get((TypeId(i), TypeId(i + 1))).is_some());
        }
        assert!(cache.get((TypeId(99), TypeId(100))).is_none());
    }
}
