//! Minimal witness-document synthesis for incompatible type pairs.
//!
//! The pair lint (see `schemacast-analysis`) reports every reachable type
//! pair `(s, t)` that is neither subsumed nor disjoint. A report is only
//! actionable with evidence, so this module unfolds each such pair into a
//! complete document that is **valid under the source schema and invalid
//! under the target schema**:
//!
//! 1. [`reachable_pairs_with_paths`] walks the shared roots downward and
//!    records, for every non-subsumed pair, the shortest label path that
//!    reaches it (the spine of the future witness).
//! 2. [`WitnessSynth`] computes, per source type, the minimal realizable
//!    subtree height (a fixpoint: a complex type is realizable once its
//!    content model accepts some word over labels whose child types are
//!    already realizable). The heights both prune unrealizable labels from
//!    witness words and guarantee termination of minimal-subtree filling on
//!    recursive types.
//! 3. For the divergent pair itself a [`Plan`](PairWitness) is synthesized:
//!    a shortest word of `L(source) ∖ L(target)` when the content models
//!    differ (via [`schemacast_automata::shortest_in_a_not_b`]), a
//!    distinguishing simple value when facets differ, or a recursion into
//!    the first divergent child pair otherwise. The plan is executed into a
//!    [`Doc`], and the diverging position is mapped back to the offending
//!    content-model particle of the target type.

use crate::cast::CastContext;
use crate::diag::{push_segment, root_path};
use schemacast_automata::{
    shortest_accepted, shortest_accepted_nonempty, shortest_accepted_through, shortest_in_a_not_b,
    BitSet,
};
use schemacast_regex::{Alphabet, Sym};
use schemacast_schema::{BoundValue, ComplexType, SimpleType, TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId};
use std::collections::{HashSet, VecDeque};

/// A type pair reachable from a shared root, with the shortest label path
/// (root label first, then child labels) that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachablePair {
    /// The source-schema type.
    pub source: TypeId,
    /// The target-schema type.
    pub target: TypeId,
    /// Labels from a shared root down to the element typed by this pair.
    pub via: Vec<Sym>,
}

/// Every reachable, non-subsumed `(source, target)` type pair, each with the
/// shortest root-to-pair label path, in deterministic (BFS, label-sorted)
/// order.
///
/// The walk descends only through *changed* complex–complex pairs: below a
/// subsumed pair no document can fail, and below a disjoint pair every
/// document already fails at the pair itself.
pub fn reachable_pairs_with_paths(ctx: &CastContext<'_>) -> Vec<ReachablePair> {
    let rel = ctx.relations();
    let mut out = Vec::new();
    let mut seen: HashSet<(TypeId, TypeId)> = HashSet::new();
    let mut queue: VecDeque<(TypeId, TypeId, Vec<Sym>)> = VecDeque::new();

    let mut roots: Vec<(Sym, TypeId, TypeId)> = ctx
        .source()
        .roots()
        .filter_map(|(label, s)| ctx.target().root_type(label).map(|t| (label, s, t)))
        .collect();
    roots.sort_by_key(|&(label, _, _)| label.index());
    for (label, s, t) in roots {
        if seen.insert((s, t)) {
            queue.push_back((s, t, vec![label]));
        }
    }

    while let Some((s, t, via)) = queue.pop_front() {
        if rel.subsumed(s, t) {
            continue;
        }
        out.push(ReachablePair {
            source: s,
            target: t,
            via: via.clone(),
        });
        if rel.disjoint(s, t) {
            continue;
        }
        let (Some(sc), Some(tc)) = (
            ctx.source().type_def(s).as_complex(),
            ctx.target().type_def(t).as_complex(),
        ) else {
            continue;
        };
        let mut labels: Vec<Sym> = sc
            .child_types
            .keys()
            .copied()
            .filter(|&l| tc.child_type(l).is_some())
            .collect();
        labels.sort_by_key(|l| l.index());
        for label in labels {
            let cs = sc.child_type(label).expect("filtered");
            let ct = tc.child_type(label).expect("filtered");
            if seen.insert((cs, ct)) {
                let mut child_via = via.clone();
                child_via.push(label);
                queue.push_back((cs, ct, child_via));
            }
        }
    }
    out
}

/// Where and how a synthesized witness diverges from the target schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The children word leaves the target content model at `position`.
    ContentModel {
        /// 0-based child index at which the target model rejects (the word
        /// length when the model rejects only at end-of-children).
        position: usize,
    },
    /// A simple value satisfies the source facets but not the target's.
    Value,
    /// Text content meets element-only content (or vice versa).
    Structure,
    /// The subtree lands on a disjoint type pair: no source-valid subtree
    /// can satisfy the target type.
    Disjoint,
}

/// A synthesized witness document for one incompatible type pair.
#[derive(Debug, Clone)]
pub struct PairWitness {
    /// The document: valid under the source schema, invalid under the
    /// target schema.
    pub doc: Doc,
    /// Slash path (with sibling indices) to the diverging element.
    pub path: String,
    /// The offending content-model particle (child label) in the target
    /// type, when the divergence is a content-model rejection.
    pub particle: Option<String>,
    /// What kind of divergence the witness exhibits.
    pub kind: DivergenceKind,
}

/// How to make the divergent node fail target validation while staying
/// source-valid. Plans are synthesized side-effect-free, then executed into
/// a [`Doc`] — a failed recursion never leaves a half-built subtree behind.
#[derive(Debug, Clone)]
enum Plan {
    /// Simple/simple: text distinguishing the two value spaces.
    Value(String),
    /// Simple source vs. complex target: nonempty source-valid text, which
    /// is character data inside element-only content for the target.
    TextInComplex(String),
    /// Complex source vs. simple target: element children where the target
    /// expects text-only content.
    ChildrenIntoSimple(Vec<Sym>),
    /// An empty element that the source accepts and the target rejects.
    Empty(DivergenceKind),
    /// Complex/complex: a children word in `L(source) ∖ L(target)`;
    /// `blame` is the position/label at which the product IDA rejects.
    BadWord {
        word: Vec<Sym>,
        blame: Option<(usize, Sym)>,
    },
    /// A children word accepted by both models, with a divergent child
    /// plan at position `at`.
    Child {
        word: Vec<Sym>,
        at: usize,
        plan: Box<Plan>,
    },
    /// A children word whose child at `at` lands on a disjoint pair — any
    /// minimal source-valid subtree there fails the target.
    DisjointChild { word: Vec<Sym>, at: usize },
    /// The pair itself is disjoint: any minimal source-valid subtree fails.
    MinTree,
}

/// The divergence an executed plan produced.
struct Divergence {
    path: String,
    particle: Option<String>,
    kind: DivergenceKind,
}

/// Witness-document synthesizer for one `(source, target)` schema pair.
pub struct WitnessSynth<'a> {
    ctx: &'a CastContext<'a>,
    alphabet: &'a Alphabet,
    /// Per source type: round at which a finite valid subtree first becomes
    /// constructible (`None` = unrealizable).
    heights: Vec<Option<u32>>,
    /// Per source type: the labels of its realizable children (complex
    /// types only; `None` elsewhere).
    realizable: Vec<Option<BitSet>>,
}

impl<'a> WitnessSynth<'a> {
    /// Prepares the synthesizer: runs the realizability-height fixpoint
    /// over the source schema.
    pub fn new(ctx: &'a CastContext<'a>, alphabet: &'a Alphabet) -> WitnessSynth<'a> {
        let source = ctx.source();
        let n = source.type_count();
        let mut heights: Vec<Option<u32>> = vec![None; n];
        for t in source.type_ids() {
            if let TypeDef::Simple(s) = source.type_def(t) {
                if s.example_value().is_some() {
                    heights[t.index()] = Some(1);
                }
            }
        }
        let mut round = 1u32;
        loop {
            let mut changed = false;
            for t in source.type_ids() {
                if heights[t.index()].is_some() {
                    continue;
                }
                let TypeDef::Complex(c) = source.type_def(t) else {
                    continue;
                };
                let allowed = realized_labels(c, &heights, alphabet.len());
                if shortest_accepted(&c.dfa, Some(&allowed)).is_some() {
                    heights[t.index()] = Some(round + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            round += 1;
        }
        let realizable = source
            .type_ids()
            .map(|t| {
                source
                    .type_def(t)
                    .as_complex()
                    .map(|c| realized_labels(c, &heights, alphabet.len()))
            })
            .collect();
        WitnessSynth {
            ctx,
            alphabet,
            heights,
            realizable,
        }
    }

    /// Whether a finite tree valid for source type `t` exists at all.
    pub fn realizable(&self, t: TypeId) -> bool {
        self.heights[t.index()].is_some()
    }

    /// Synthesizes the witness for a reachable pair: a document valid under
    /// the source schema and invalid under the target schema, diverging at
    /// the element the pair's `via` path reaches. `None` when no such
    /// finite document exists (e.g. every distinguishing word needs an
    /// unrealizable label).
    pub fn witness(&self, pair: &ReachablePair) -> Option<PairWitness> {
        let source = self.ctx.source();
        let target = self.ctx.target();
        let rel = self.ctx.relations();
        let root_label = *pair.via.first()?;
        let mut s = source.root_type(root_label)?;
        let mut t = target.root_type(root_label)?;

        // Plan the divergent subtree first — side-effect-free, so a failure
        // here costs nothing.
        let plan = if rel.disjoint(pair.source, pair.target) {
            if !self.realizable(pair.source) {
                return None;
            }
            Plan::MinTree
        } else {
            let mut visiting = HashSet::new();
            self.plan(pair.source, pair.target, &mut visiting)?
        };

        // Build the spine: at each level, a source-valid children word that
        // passes through the next spine label; siblings get minimal
        // source-valid subtrees.
        let mut doc = Doc::new(root_label);
        let mut node = doc.root();
        let mut path = root_path(self.alphabet.name(root_label));
        for &label in &pair.via[1..] {
            let sc = source.type_def(s).as_complex()?;
            let tc = target.type_def(t).as_complex()?;
            let allowed = self.realizable[s.index()].as_ref()?;
            let word = shortest_accepted_through(&sc.dfa, label, Some(allowed))?;
            let at = word.iter().position(|&l| l == label)?;
            let spine_child_src = sc.child_type(label)?;
            // `via` is exempt from the realizability restriction; extra
            // occurrences would need minimal filling we cannot provide.
            if !self.realizable(spine_child_src) && word.iter().filter(|&&l| l == label).count() > 1
            {
                return None;
            }
            let mut spine_node = None;
            for (i, &l) in word.iter().enumerate() {
                let child = doc.add_element(node, l);
                if i == at {
                    spine_node = Some(child);
                } else {
                    self.fill_min(&mut doc, child, sc.child_type(l)?);
                }
            }
            push_segment(&mut path, self.alphabet.name(label), at);
            node = spine_node?;
            s = spine_child_src;
            t = tc.child_type(label)?;
        }

        let div = self.exec(&plan, &mut doc, node, s, path);
        Some(PairWitness {
            doc,
            path: div.path,
            particle: div.particle,
            kind: div.kind,
        })
    }

    /// Plans the divergent subtree for a *changed* (neither subsumed nor
    /// disjoint) pair. `visiting` guards against cycles through recursive
    /// type pairs.
    fn plan(&self, s: TypeId, t: TypeId, visiting: &mut HashSet<(TypeId, TypeId)>) -> Option<Plan> {
        if !visiting.insert((s, t)) {
            return None;
        }
        let plan = self.plan_inner(s, t, visiting);
        visiting.remove(&(s, t));
        plan
    }

    fn plan_inner(
        &self,
        s: TypeId,
        t: TypeId,
        visiting: &mut HashSet<(TypeId, TypeId)>,
    ) -> Option<Plan> {
        let source = self.ctx.source();
        let target = self.ctx.target();
        match (source.type_def(s), target.type_def(t)) {
            (TypeDef::Simple(ss), TypeDef::Simple(ts)) => {
                distinguishing_value(ss, ts).map(Plan::Value)
            }
            (TypeDef::Simple(ss), TypeDef::Complex(tc)) => {
                if let Some(v) = nonempty_example(ss) {
                    Some(Plan::TextInComplex(v))
                } else if ss.validate("") && !tc.dfa.accepts(&[]) {
                    Some(Plan::Empty(DivergenceKind::ContentModel { position: 0 }))
                } else {
                    None
                }
            }
            (TypeDef::Complex(sc), TypeDef::Simple(ts)) => {
                let allowed = self.realizable[s.index()].as_ref()?;
                if let Some(word) = shortest_accepted_nonempty(&sc.dfa, Some(allowed)) {
                    Some(Plan::ChildrenIntoSimple(word))
                } else if sc.dfa.accepts(&[]) && !ts.validate("") {
                    Some(Plan::Empty(DivergenceKind::Value))
                } else {
                    None
                }
            }
            (TypeDef::Complex(sc), TypeDef::Complex(tc)) => {
                self.plan_complex(s, sc, t, tc, visiting)
            }
        }
    }

    fn plan_complex(
        &self,
        s: TypeId,
        sc: &ComplexType,
        t: TypeId,
        tc: &ComplexType,
        visiting: &mut HashSet<(TypeId, TypeId)>,
    ) -> Option<Plan> {
        let rel = self.ctx.relations();
        let allowed = self.realizable[s.index()].as_ref()?;

        // Case 1: the content models themselves differ over realizable
        // labels — a bad children word is the whole witness.
        if let Some(word) = shortest_in_a_not_b(&sc.dfa, &tc.dfa, Some(allowed)) {
            let outcome = self.ctx.product_ida(s, t).run(&word);
            let blame = if !outcome.accepted() && outcome.early() && outcome.consumed() > 0 {
                let i = outcome.consumed() - 1;
                Some((i, word[i]))
            } else {
                None
            };
            return Some(Plan::BadWord { word, blame });
        }

        // Case 2: every realizable source word is also a target word; the
        // divergence must come from a child pair. Try labels in sorted
        // order for determinism.
        let mut labels: Vec<Sym> = sc.child_types.keys().copied().collect();
        labels.sort_by_key(|l| l.index());
        for label in labels {
            let cs = sc.child_type(label).expect("own key");
            if !self.realizable(cs) {
                continue;
            }
            let Some(word) = shortest_accepted_through(&sc.dfa, label, Some(allowed)) else {
                continue;
            };
            let at = word.iter().position(|&l| l == label).expect("through");
            match tc.child_type(label) {
                // A missing target child type cannot occur on a word both
                // models accept (builder invariant), but stay sound.
                None => return Some(Plan::DisjointChild { word, at }),
                Some(ct) => {
                    if rel.subsumed(cs, ct) {
                        continue;
                    }
                    if rel.disjoint(cs, ct) {
                        return Some(Plan::DisjointChild { word, at });
                    }
                    if let Some(inner) = self.plan(cs, ct, visiting) {
                        return Some(Plan::Child {
                            word,
                            at,
                            plan: Box::new(inner),
                        });
                    }
                }
            }
        }
        None
    }

    /// Executes a plan at `node` (an element with source type `s`),
    /// returning where and how the result diverges from the target.
    fn exec(
        &self,
        plan: &Plan,
        doc: &mut Doc,
        node: NodeId,
        s: TypeId,
        path: String,
    ) -> Divergence {
        let source = self.ctx.source();
        match plan {
            Plan::Value(v) => {
                if !v.is_empty() {
                    doc.add_text(node, v);
                }
                Divergence {
                    path,
                    particle: None,
                    kind: DivergenceKind::Value,
                }
            }
            Plan::TextInComplex(v) => {
                doc.add_text(node, v);
                Divergence {
                    path,
                    particle: None,
                    kind: DivergenceKind::Structure,
                }
            }
            Plan::Empty(kind) => Divergence {
                path,
                particle: None,
                kind: *kind,
            },
            Plan::ChildrenIntoSimple(word) => {
                let sc = source.type_def(s).as_complex().expect("complex source");
                for &l in word {
                    let child = doc.add_element(node, l);
                    self.fill_min(doc, child, sc.child_type(l).expect("word label"));
                }
                Divergence {
                    path,
                    particle: None,
                    kind: DivergenceKind::Structure,
                }
            }
            Plan::BadWord { word, blame } => {
                let sc = source.type_def(s).as_complex().expect("complex source");
                for &l in word {
                    let child = doc.add_element(node, l);
                    self.fill_min(doc, child, sc.child_type(l).expect("word label"));
                }
                Divergence {
                    path,
                    particle: blame.map(|(_, sym)| self.alphabet.name(sym).to_owned()),
                    kind: DivergenceKind::ContentModel {
                        position: blame.map_or(word.len(), |(i, _)| i),
                    },
                }
            }
            Plan::Child { word, at, plan } => {
                let sc = source.type_def(s).as_complex().expect("complex source");
                let mut div = None;
                for (i, &l) in word.iter().enumerate() {
                    let child = doc.add_element(node, l);
                    let cs = sc.child_type(l).expect("word label");
                    if i == *at {
                        let mut child_path = path.clone();
                        push_segment(&mut child_path, self.alphabet.name(l), i);
                        div = Some(self.exec(plan, doc, child, cs, child_path));
                    } else {
                        self.fill_min(doc, child, cs);
                    }
                }
                div.expect("`at` is a position in `word`")
            }
            Plan::DisjointChild { word, at } => {
                let sc = source.type_def(s).as_complex().expect("complex source");
                let mut child_path = path;
                for (i, &l) in word.iter().enumerate() {
                    let child = doc.add_element(node, l);
                    self.fill_min(doc, child, sc.child_type(l).expect("word label"));
                    if i == *at {
                        push_segment(&mut child_path, self.alphabet.name(l), i);
                    }
                }
                Divergence {
                    path: child_path,
                    particle: word.get(*at).map(|&l| self.alphabet.name(l).to_owned()),
                    kind: DivergenceKind::Disjoint,
                }
            }
            Plan::MinTree => {
                self.fill_min(doc, node, s);
                Divergence {
                    path,
                    particle: None,
                    kind: DivergenceKind::Disjoint,
                }
            }
        }
    }

    /// Fills `node` with a minimal tree valid for source type `t`. Only
    /// called on realizable types; the strict height descent (children must
    /// have strictly smaller realization round) terminates on recursive
    /// types.
    fn fill_min(&self, doc: &mut Doc, node: NodeId, t: TypeId) {
        let source = self.ctx.source();
        match source.type_def(t) {
            TypeDef::Simple(simple) => {
                let v = simple.example_value().expect("realizable simple type");
                if !v.is_empty() {
                    doc.add_text(node, &v);
                }
            }
            TypeDef::Complex(c) => {
                let h = self.heights[t.index()].expect("realizable complex type");
                let mut strict = BitSet::new(self.alphabet.len());
                for (&label, &child) in &c.child_types {
                    if matches!(self.heights[child.index()], Some(ch) if ch < h) {
                        strict.insert(label.index());
                    }
                }
                let word = shortest_accepted(&c.dfa, Some(&strict))
                    .expect("realization round implies a word over smaller heights");
                for &l in &word {
                    let child = doc.add_element(node, l);
                    self.fill_min(doc, child, c.child_type(l).expect("word label"));
                }
            }
        }
    }
}

/// The labels of `c` whose child types are already realized.
fn realized_labels(c: &ComplexType, heights: &[Option<u32>], alphabet_len: usize) -> BitSet {
    let mut allowed = BitSet::new(alphabet_len);
    for (&label, &child) in &c.child_types {
        if heights[child.index()].is_some() {
            allowed.insert(label.index());
        }
    }
    allowed
}

/// A nonempty value accepted by the simple type, if one exists.
fn nonempty_example(s: &SimpleType) -> Option<String> {
    match s.example_value() {
        Some(v) if !v.is_empty() => Some(v),
        _ => PROBES
            .iter()
            .find(|v| !v.is_empty() && s.validate(v))
            .map(|v| (*v).to_string()),
    }
}

/// Fixed probe values covering every [`schemacast_schema::AtomicKind`].
const PROBES: &[&str] = &[
    "value",
    "",
    "x",
    "xxxxx",
    "xxxxxxxxxx",
    "true",
    "false",
    "2004-03-14",
    "1970-01-01",
    "2099-12-31",
    "0",
    "1",
    "2",
    "5",
    "10",
    "42",
    "50",
    "99",
    "100",
    "101",
    "150",
    "199",
    "200",
    "1000",
    "-1",
    "0.5",
];

fn bound_str(b: &BoundValue) -> String {
    match b {
        BoundValue::Num(d) => d.to_string(),
        BoundValue::Date(d) => d.to_string(),
    }
}

/// A value valid for `src` and invalid for `tgt`, if the probe set finds
/// one. Probes the enumerations and facet bounds of both types (a value
/// sitting exactly on the target's exclusive bound is the classic
/// facet-tightening witness) plus fixed per-kind candidates.
fn distinguishing_value(src: &SimpleType, tgt: &SimpleType) -> Option<String> {
    let mut candidates: Vec<String> = Vec::new();
    if let Some(e) = &src.facets.enumeration {
        candidates.extend(e.iter().cloned());
    }
    for facets in [&src.facets, &tgt.facets] {
        for bound in [
            facets.min_inclusive,
            facets.max_inclusive,
            facets.min_exclusive,
            facets.max_exclusive,
        ]
        .into_iter()
        .flatten()
        {
            candidates.push(bound_str(&bound));
        }
    }
    candidates.extend(src.example_value());
    candidates.extend(PROBES.iter().map(|p| (*p).to_string()));
    candidates
        .into_iter()
        .find(|v| src.validate(v) && !tgt.validate(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{AbstractSchema, AtomicKind, Decimal, SchemaBuilder};

    /// The Figure 1 purchase-order pair: billTo optional→required,
    /// quantity maxExclusive 200→100.
    fn po_pair() -> (AbstractSchema, AbstractSchema, Alphabet) {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, bill_optional: bool, max: i64| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let mut qt = SimpleType::of(AtomicKind::PositiveInteger);
            qt.facets.max_exclusive = Some(BoundValue::Num(Decimal::from_i64(max)));
            let qty = b.simple("Qty", qt).unwrap();
            let item = b.declare("Item").unwrap();
            b.complex(item, "(name, qty)", &[("name", text), ("qty", qty)])
                .unwrap();
            let addr = b.declare("Addr").unwrap();
            b.complex(addr, "(street, city)", &[("street", text), ("city", text)])
                .unwrap();
            let po = b.declare("PO").unwrap();
            let model = if bill_optional {
                "(shipTo, billTo?, item*)"
            } else {
                "(shipTo, billTo, item*)"
            };
            b.complex(
                po,
                model,
                &[("shipTo", addr), ("billTo", addr), ("item", item)],
            )
            .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true, 200);
        let target = mk(&mut ab, false, 100);
        (source, target, ab)
    }

    #[test]
    fn reachable_pairs_cover_structure_and_value_changes() {
        let (source, target, ab) = po_pair();
        let ctx = CastContext::new(&source, &target, &ab);
        let pairs = reachable_pairs_with_paths(&ctx);
        assert!(!pairs.is_empty());
        let names: Vec<(&str, &str)> = pairs
            .iter()
            .map(|p| (source.type_name(p.source), target.type_name(p.target)))
            .collect();
        assert!(names.contains(&("PO", "PO")), "{names:?}");
        assert!(names.contains(&("Qty", "Qty")), "{names:?}");
        let qty = pairs
            .iter()
            .find(|p| source.type_name(p.source) == "Qty")
            .unwrap();
        let path: Vec<&str> = qty.via.iter().map(|&l| ab.name(l)).collect();
        assert_eq!(path, ["po", "item", "qty"]);
    }

    #[test]
    fn witnesses_are_source_valid_and_target_invalid() {
        let (source, target, ab) = po_pair();
        let ctx = CastContext::new(&source, &target, &ab);
        let synth = WitnessSynth::new(&ctx, &ab);
        let pairs = reachable_pairs_with_paths(&ctx);
        let mut produced = 0;
        for pair in &pairs {
            let Some(w) = synth.witness(pair) else {
                continue;
            };
            produced += 1;
            assert!(
                source.accepts_document(&w.doc),
                "witness for {} not source-valid",
                source.type_name(pair.source)
            );
            assert!(
                !target.accepts_document(&w.doc),
                "witness for {} not target-invalid",
                source.type_name(pair.source)
            );
            assert!(w.path.starts_with("/po"), "{}", w.path);
        }
        assert_eq!(produced, pairs.len(), "every changed pair gets a witness");
    }

    #[test]
    fn content_model_witness_blames_the_particle() {
        let (source, target, ab) = po_pair();
        let ctx = CastContext::new(&source, &target, &ab);
        let synth = WitnessSynth::new(&ctx, &ab);
        let pairs = reachable_pairs_with_paths(&ctx);
        let po = pairs
            .iter()
            .find(|p| source.type_name(p.source) == "PO")
            .unwrap();
        let w = synth.witness(po).unwrap();
        // The shortest distinguishing word drops the now-required billTo.
        assert!(matches!(w.kind, DivergenceKind::ContentModel { .. }));
        assert_eq!(w.path, "/po");
    }

    #[test]
    fn value_witness_sits_on_the_tightened_bound() {
        let (source, target, ab) = po_pair();
        let ctx = CastContext::new(&source, &target, &ab);
        let synth = WitnessSynth::new(&ctx, &ab);
        let pairs = reachable_pairs_with_paths(&ctx);
        let qty = pairs
            .iter()
            .find(|p| source.type_name(p.source) == "Qty")
            .unwrap();
        let w = synth.witness(qty).unwrap();
        assert_eq!(w.kind, DivergenceKind::Value);
        // Spine word through `item` is (shipTo, item): item at child index 1.
        assert_eq!(w.path, "/po/item[1]/qty[1]");
    }

    #[test]
    fn recursive_types_terminate() {
        // section ::= (title, section*) with a tightened title in S'.
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, max_len: Option<usize>| {
            let mut b = SchemaBuilder::new(ab);
            let mut title = SimpleType::string();
            title.facets.max_length = max_len;
            let title = b.simple("Title", title).unwrap();
            let section = b.declare("Section").unwrap();
            b.complex(
                section,
                "(title, section*)",
                &[("title", title), ("section", section)],
            )
            .unwrap();
            b.root("doc", section);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, None);
        let target = mk(&mut ab, Some(3));
        let ctx = CastContext::new(&source, &target, &ab);
        let synth = WitnessSynth::new(&ctx, &ab);
        let pairs = reachable_pairs_with_paths(&ctx);
        assert!(!pairs.is_empty());
        let mut produced = 0;
        for pair in &pairs {
            if let Some(w) = synth.witness(pair) {
                produced += 1;
                assert!(source.accepts_document(&w.doc));
                assert!(!target.accepts_document(&w.doc));
            }
        }
        assert!(produced >= 1);
    }
}
