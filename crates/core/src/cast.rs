//! Schema-cast validation without modifications (§3.2).
//!
//! [`CastContext`] preprocesses a (source, target) schema pair: it computes
//! the [`TypeRelations`] fixpoints and lazily builds one product
//! [immediate decision automaton](schemacast_automata::ProductIda) per
//! encountered type pair for content-model checking (§4 integration — the
//! paper's own Xerces prototype skipped this part "due to the complexity of
//! modifying the Xerces code base"; [`CastOptions::use_ida`] turns it off to
//! reproduce exactly their configuration, and on for the full algorithm).
//!
//! At runtime, [`CastContext::validate`] walks the document validating
//! against both schemas in parallel, skipping every subtree whose type pair
//! is subsumed and failing fast on disjoint pairs.

use crate::full::{validate_simple_content, FullValidator};
use crate::idacache::{ShardedCache, ShardedIdaCache};
use crate::relations::TypeRelations;
use crate::safety::{Exemptions, PairSafety};
use crate::stats::{CastOutcome, ValidationStats};
use loomlite::sync::Arc;
use schemacast_automata::{IdaOutcome, ProductIda};
use schemacast_regex::{Alphabet, Sym};
use schemacast_schema::{AbstractSchema, ComplexType, TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId};

/// Feature toggles for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CastOptions {
    /// Skip subtrees whose type pair is in `R_sub`.
    pub use_subsumption: bool,
    /// Reject immediately on disjoint type pairs.
    pub use_disjointness: bool,
    /// Check content models with the product IDA (early accept/reject)
    /// instead of running the target DFA over all children labels.
    pub use_ida: bool,
}

impl Default for CastOptions {
    fn default() -> Self {
        CastOptions {
            use_subsumption: true,
            use_disjointness: true,
            use_ida: true,
        }
    }
}

impl CastOptions {
    /// The configuration of the paper's modified Xerces: subsumption and
    /// disjointness pruning, but plain DFA content-model checks.
    pub fn paper_prototype() -> CastOptions {
        CastOptions {
            use_ida: false,
            ..Default::default()
        }
    }

    /// Everything off: equivalent to full validation against the target.
    pub fn baseline() -> CastOptions {
        CastOptions {
            use_subsumption: false,
            use_disjointness: false,
            use_ida: false,
        }
    }
}

/// A preprocessed schema pair, ready to revalidate many documents.
///
/// A `&CastContext` is `Sync`: the lazily filled IDA cache is sharded and
/// never holds a lock while constructing an automaton, so worker threads
/// validating different documents (the batch engine's shape) do not
/// serialize behind each other.
pub struct CastContext<'a> {
    source: &'a AbstractSchema,
    target: &'a AbstractSchema,
    relations: TypeRelations,
    options: CastOptions,
    ida_cache: ShardedIdaCache,
    /// Interned static edit-safety analyses, cached per type pair alongside
    /// the IDA cache (same sharded publish-once discipline).
    pub(crate) safety_cache: ShardedCache<PairSafety>,
}

impl<'a> CastContext<'a> {
    /// Preprocesses the pair with default options (full algorithm).
    pub fn new(
        source: &'a AbstractSchema,
        target: &'a AbstractSchema,
        alphabet: &Alphabet,
    ) -> CastContext<'a> {
        Self::with_options(source, target, alphabet, CastOptions::default())
    }

    /// Preprocesses the pair with explicit options.
    pub fn with_options(
        source: &'a AbstractSchema,
        target: &'a AbstractSchema,
        alphabet: &Alphabet,
        options: CastOptions,
    ) -> CastContext<'a> {
        let relations = TypeRelations::compute(source, target, alphabet);
        CastContext {
            source,
            target,
            relations,
            options,
            ida_cache: ShardedIdaCache::new(),
            safety_cache: ShardedCache::new(),
        }
    }

    /// The source schema.
    pub fn source(&self) -> &AbstractSchema {
        self.source
    }

    /// The target schema.
    pub fn target(&self) -> &AbstractSchema {
        self.target
    }

    /// The computed subsumption/disjointness relations.
    pub fn relations(&self) -> &TypeRelations {
        &self.relations
    }

    /// The active options.
    pub fn options(&self) -> CastOptions {
        self.options
    }

    /// §3.2 `doValidate`: decides whether `doc` — known valid with respect
    /// to the source schema — is valid with respect to the target schema.
    ///
    /// If the precondition is broken (the root label is not even in the
    /// source's ℛ), falls back to full validation against the target, so
    /// the answer is correct regardless.
    pub fn validate(&self, doc: &Doc) -> CastOutcome {
        self.validate_with_stats(doc).0
    }

    /// Like [`CastContext::validate`], with cost counters.
    pub fn validate_with_stats(&self, doc: &Doc) -> (CastOutcome, ValidationStats) {
        let mut stats = ValidationStats::default();
        let root = doc.root();
        let Some(label) = doc.label(root) else {
            return (CastOutcome::Invalid, stats);
        };
        let Some(tgt_type) = self.target.root_type(label) else {
            return (CastOutcome::Invalid, stats);
        };
        let ok = match self.source.root_type(label) {
            Some(src_type) => self.cast_validate(doc, root, src_type, tgt_type, &mut stats),
            None => {
                stats.full_validations += 1;
                FullValidator::new(self.target).validate_node(doc, root, tgt_type, &mut stats)
            }
        };
        (CastOutcome::from_bool(ok), stats)
    }

    /// The `validate(τ, τ', e)` of §3.2, implemented with an explicit work
    /// stack so that document depth never consumes call-stack frames.
    pub(crate) fn cast_validate(
        &self,
        doc: &Doc,
        node: NodeId,
        src: TypeId,
        tgt: TypeId,
        stats: &mut ValidationStats,
    ) -> bool {
        self.cast_validate_inner(doc, node, src, tgt, stats, None)
    }

    /// [`CastContext::cast_validate`] with exemption sets from the static
    /// update-safety analyzer: `skip` subtrees are counted valid without
    /// inspection (the analyzer proved every edited site subtree
    /// target-valid), and `unpruned` nodes — the root→site ancestor paths —
    /// run with subsumption skips *and* disjointness rejects disabled,
    /// because their subtrees contain an edit and are therefore not
    /// source-valid, which is the precondition both prunings rest on.
    /// Content-model checks on unpruned nodes are still sound: an ancestor's
    /// own child word is untouched by edits below it.
    pub(crate) fn cast_validate_exempt(
        &self,
        doc: &Doc,
        node: NodeId,
        src: TypeId,
        tgt: TypeId,
        stats: &mut ValidationStats,
        exemptions: &Exemptions,
    ) -> bool {
        self.cast_validate_inner(doc, node, src, tgt, stats, Some(exemptions))
    }

    fn cast_validate_inner(
        &self,
        doc: &Doc,
        node: NodeId,
        src: TypeId,
        tgt: TypeId,
        stats: &mut ValidationStats,
        exemptions: Option<&Exemptions>,
    ) -> bool {
        enum Work {
            /// Parallel validation against both schemas.
            Cast(NodeId, TypeId, TypeId),
            /// Target-only validation (source typing unavailable).
            Full(NodeId, TypeId),
        }
        let mut work: Vec<Work> = vec![Work::Cast(node, src, tgt)];
        while let Some(item) = work.pop() {
            let (node, src, tgt) = match item {
                Work::Full(node, tgt) => {
                    stats.full_validations += 1;
                    if !FullValidator::new(self.target).validate_node(doc, node, tgt, stats) {
                        return false;
                    }
                    continue;
                }
                Work::Cast(node, src, tgt) => (node, src, tgt),
            };
            if let Some(ex) = exemptions {
                if ex.skip.contains(&node) {
                    continue;
                }
            }
            stats.nodes_visited += 1;
            let prune = exemptions.is_none_or(|ex| !ex.unpruned.contains(&node));
            if prune && self.options.use_subsumption && self.relations.subsumed(src, tgt) {
                stats.subsumed_skips += 1;
                continue;
            }
            if prune && self.options.use_disjointness && self.relations.disjoint(src, tgt) {
                stats.disjoint_rejects += 1;
                return false;
            }
            match self.target.type_def(tgt) {
                TypeDef::Simple(s) => {
                    stats.value_checks += 1;
                    if !validate_simple_content(doc, node, |text| s.validate(text), stats) {
                        return false;
                    }
                }
                TypeDef::Complex(c_tgt) => {
                    let mut labels: Vec<Sym> = Vec::new();
                    for child in doc.validation_children(node) {
                        match doc.label(child) {
                            Some(l) => labels.push(l),
                            None => return false,
                        }
                    }
                    let src_complex = self.source.type_def(src).as_complex();
                    if !self.check_content(src_complex, c_tgt, src, tgt, &labels, stats) {
                        return false;
                    }
                    let children: Vec<NodeId> = doc.validation_children(node).collect();
                    // Push in reverse so children are processed in order.
                    for (child, &label) in children.iter().zip(labels.iter()).rev() {
                        let Some(child_tgt) = c_tgt.child_type(label) else {
                            return false;
                        };
                        match src_complex.and_then(|c| c.child_type(label)) {
                            Some(child_src) => {
                                work.push(Work::Cast(*child, child_src, child_tgt));
                            }
                            None => {
                                // No source typing for this child
                                // (precondition violated or source simple).
                                work.push(Work::Full(*child, child_tgt));
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Content-model membership of the children labels, via the product IDA
    /// (knowing the string is in the source content model) or the plain
    /// target DFA.
    fn check_content(
        &self,
        src_complex: Option<&ComplexType>,
        tgt: &ComplexType,
        src_id: TypeId,
        tgt_id: TypeId,
        labels: &[Sym],
        stats: &mut ValidationStats,
    ) -> bool {
        if self.options.use_ida {
            if let Some(_src) = src_complex {
                let ida = self.product_ida(src_id, tgt_id);
                let out = ida.run(labels);
                stats.content_symbols_scanned += out.consumed();
                match out {
                    IdaOutcome::Accept { early, .. } => {
                        if early {
                            stats.ida_early_accepts += 1;
                        }
                        return true;
                    }
                    IdaOutcome::Reject { early, .. } => {
                        if early {
                            stats.ida_early_rejects += 1;
                        }
                        return false;
                    }
                }
            }
        }
        stats.content_symbols_scanned += labels.len();
        tgt.dfa.accepts(labels)
    }

    /// The cached product IDA for a (source, target) complex type pair.
    ///
    /// On a miss the automaton is constructed with no cache lock held;
    /// racing callers all receive clones of the single published `Arc`.
    pub fn product_ida(&self, src: TypeId, tgt: TypeId) -> Arc<ProductIda> {
        self.ida_cache.get_or_insert_with((src, tgt), || {
            let a = &self
                .source
                .type_def(src)
                .as_complex()
                .expect("product IDA requires complex source")
                .dfa;
            let b = &self
                .target
                .type_def(tgt)
                .as_complex()
                .expect("product IDA requires complex target")
                .dfa;
            ProductIda::new(a, b)
        })
    }

    /// Number of product IDAs currently cached.
    pub fn cached_ida_count(&self) -> usize {
        self.ida_cache.len()
    }

    /// The (source, target) type pairs whose content models the validator
    /// can actually run an IDA over: starting from `(ℛ(σ), ℛ'(σ))` for
    /// every label σ rooted in both schemas, follow matching child labels of
    /// complex pairs that are neither subsumed nor disjoint (others are
    /// never content-checked). Deterministic order.
    pub fn reachable_pairs(&self) -> Vec<(TypeId, TypeId)> {
        let mut seen: std::collections::HashSet<(TypeId, TypeId)> =
            std::collections::HashSet::new();
        let mut stack: Vec<(TypeId, TypeId)> = Vec::new();
        let mut out: Vec<(TypeId, TypeId)> = Vec::new();
        for (label, s) in self.source.roots() {
            if let Some(t) = self.target.root_type(label) {
                if seen.insert((s, t)) {
                    stack.push((s, t));
                }
            }
        }
        while let Some((s, t)) = stack.pop() {
            if self.options.use_subsumption && self.relations.subsumed(s, t) {
                continue;
            }
            if self.options.use_disjointness && self.relations.disjoint(s, t) {
                continue;
            }
            let (Some(cs), Some(ct)) = (
                self.source.type_def(s).as_complex(),
                self.target.type_def(t).as_complex(),
            ) else {
                continue;
            };
            out.push((s, t));
            for (&label, &child_s) in &cs.child_types {
                if let Some(child_t) = ct.child_type(label) {
                    if seen.insert((child_s, child_t)) {
                        stack.push((child_s, child_t));
                    }
                }
            }
        }
        out
    }

    /// Eagerly builds the product IDAs of every type pair *reachable* from
    /// a shared root label (the pairs the validator can actually encounter),
    /// so that no first-validation latency remains. Returns the number of
    /// IDAs materialized. (The batch engine exposes a parallel variant.)
    pub fn warm_up(&self) -> usize {
        if !self.options.use_ida {
            return 0;
        }
        let pairs = self.reachable_pairs();
        for &(s, t) in &pairs {
            let _ = self.product_ida(s, t);
        }
        pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{AtomicKind, SchemaBuilder, SimpleType};

    /// Figure 1 pair plus documents, shared by the tests.
    struct Fixture {
        source: AbstractSchema,
        target: AbstractSchema,
        alphabet: Alphabet,
    }

    fn po_schema(ab: &mut Alphabet, bill_optional: bool, qty_max: i64) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let mut qty_ty = SimpleType::of(AtomicKind::PositiveInteger);
        qty_ty.facets.max_exclusive = Some(schemacast_schema::BoundValue::Num(
            schemacast_schema::Decimal::from_i64(qty_max),
        ));
        let qty = b.simple("Qty", qty_ty).unwrap();
        let addr = b.declare("USAddress").unwrap();
        b.complex(
            addr,
            "(name, street, city)",
            &[("name", text), ("street", text), ("city", text)],
        )
        .unwrap();
        let item = b.declare("Item").unwrap();
        b.complex(
            item,
            "(productName, quantity, USPrice)",
            &[("productName", text), ("quantity", qty), ("USPrice", text)],
        )
        .unwrap();
        let items = b.declare("Items").unwrap();
        b.complex(items, "item*", &[("item", item)]).unwrap();
        let po = b.declare("POType").unwrap();
        let model = if bill_optional {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", addr), ("billTo", addr), ("items", items)],
        )
        .unwrap();
        b.root("purchaseOrder", po);
        b.finish().unwrap()
    }

    fn fixture(bill_optional_src: bool, src_max: i64, tgt_max: i64) -> Fixture {
        let mut alphabet = Alphabet::new();
        let source = po_schema(&mut alphabet, bill_optional_src, src_max);
        let target = po_schema(&mut alphabet, false, tgt_max);
        Fixture {
            source,
            target,
            alphabet,
        }
    }

    fn po_doc(f: &mut Fixture, with_bill: bool, items: usize, qty: &str) -> Doc {
        let ab = &mut f.alphabet;
        let po = ab.intern("purchaseOrder");
        let ship = ab.intern("shipTo");
        let bill = ab.intern("billTo");
        let items_l = ab.intern("items");
        let item = ab.intern("item");
        let pn = ab.intern("productName");
        let q = ab.intern("quantity");
        let price = ab.intern("USPrice");
        let name = ab.intern("name");
        let street = ab.intern("street");
        let city = ab.intern("city");

        let mut doc = Doc::new(po);
        let addr = |doc: &mut Doc, label| {
            let a = doc.add_element(doc.root(), label);
            for l in [name, street, city] {
                let e = doc.add_element(a, l);
                doc.add_text(e, "v");
            }
        };
        addr(&mut doc, ship);
        if with_bill {
            addr(&mut doc, bill);
        }
        let il = doc.add_element(doc.root(), items_l);
        for _ in 0..items {
            let i = doc.add_element(il, item);
            let e = doc.add_element(i, pn);
            doc.add_text(e, "Widget");
            let e = doc.add_element(i, q);
            doc.add_text(e, qty);
            let e = doc.add_element(i, price);
            doc.add_text(e, "9.99");
        }
        doc
    }

    #[test]
    fn experiment1_accepts_with_billto_in_constant_nodes() {
        let mut f = fixture(true, 100, 100);
        let small = po_doc(&mut f, true, 2, "5");
        let large = po_doc(&mut f, true, 200, "5");
        let ctx = CastContext::new(&f.source, &f.target, &f.alphabet);
        let (out_s, stats_s) = ctx.validate_with_stats(&small);
        let (out_l, stats_l) = ctx.validate_with_stats(&large);
        assert!(out_s.is_valid());
        assert!(out_l.is_valid());
        // The hallmark of Experiment 1: node visits do not grow with the
        // document (billTo presence decides everything).
        assert_eq!(stats_s.nodes_visited, stats_l.nodes_visited);
        assert!(
            stats_s.nodes_visited <= 4,
            "visited {}",
            stats_s.nodes_visited
        );
        assert!(stats_l.subsumed_skips >= 1);
    }

    #[test]
    fn experiment1_rejects_missing_billto_immediately() {
        let mut f = fixture(true, 100, 100);
        let doc = po_doc(&mut f, false, 50, "5");
        // Valid per source (billTo optional), invalid per target.
        assert!(f.source.accepts_document(&doc));
        assert!(!f.target.accepts_document(&doc));
        let ctx = CastContext::new(&f.source, &f.target, &f.alphabet);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(!out.is_valid());
        assert!(stats.nodes_visited <= 2, "visited {}", stats.nodes_visited);
    }

    #[test]
    fn experiment2_checks_each_quantity() {
        // Source maxExclusive=200, target=100.
        let mut f = fixture(false, 200, 100);
        let ok = po_doc(&mut f, true, 10, "99");
        let bad = po_doc(&mut f, true, 10, "150");
        assert!(f.source.accepts_document(&ok));
        assert!(f.source.accepts_document(&bad));
        let ctx = CastContext::new(&f.source, &f.target, &f.alphabet);
        let (out_ok, stats_ok) = ctx.validate_with_stats(&ok);
        assert!(out_ok.is_valid());
        assert_eq!(stats_ok.value_checks, 10);
        // Address subtrees were skipped via subsumption.
        assert!(stats_ok.subsumed_skips >= 2);
        let (out_bad, _) = ctx.validate_with_stats(&bad);
        assert!(!out_bad.is_valid());
    }

    #[test]
    fn cast_agrees_with_full_validation_on_all_options() {
        let mut f = fixture(true, 200, 100);
        let docs = [
            po_doc(&mut f, true, 3, "50"),
            po_doc(&mut f, false, 3, "50"),
            po_doc(&mut f, true, 0, "50"),
            po_doc(&mut f, true, 3, "150"),
            po_doc(&mut f, true, 3, "99"),
        ];
        for opts in [
            CastOptions::default(),
            CastOptions::paper_prototype(),
            CastOptions::baseline(),
            CastOptions {
                use_subsumption: true,
                use_disjointness: false,
                use_ida: true,
            },
        ] {
            let ctx = CastContext::with_options(&f.source, &f.target, &f.alphabet, opts);
            for (i, doc) in docs.iter().enumerate() {
                // Precondition: these documents are valid per the source.
                assert!(f.source.accepts_document(doc), "doc {i} source-valid");
                let expect = f.target.accepts_document(doc);
                assert_eq!(
                    ctx.validate(doc).is_valid(),
                    expect,
                    "doc {i} under {opts:?}"
                );
            }
        }
    }

    #[test]
    fn identical_schemas_skip_everything() {
        let mut f = fixture(true, 100, 100);
        let source2 = po_schema(&mut f.alphabet, true, 100);
        let doc = po_doc(&mut f, true, 100, "5");
        let ctx = CastContext::new(&f.source, &source2, &f.alphabet);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(out.is_valid());
        // Root pair subsumed: one node visited, everything else skipped.
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.subsumed_skips, 1);
    }

    #[test]
    fn warm_up_builds_reachable_idas() {
        let mut f = fixture(true, 200, 100);
        let doc = po_doc(&mut f, true, 5, "50");
        let ctx = CastContext::new(&f.source, &f.target, &f.alphabet);
        let built = ctx.warm_up();
        // The PO pair is the only non-subsumed, non-disjoint complex pair
        // reachable in experiment 2 fixtures… plus Items/Item chains.
        assert!(built >= 1, "built {built}");
        // Verdicts unchanged after warm-up.
        assert!(ctx.validate(&doc).is_valid());
        // Warm-up is idempotent.
        assert_eq!(ctx.warm_up(), built);
    }

    #[test]
    fn root_label_unknown_to_target_is_invalid() {
        let mut f = fixture(true, 100, 100);
        let other = f.alphabet.intern("unknownRoot");
        let doc = Doc::new(other);
        let ctx = CastContext::new(&f.source, &f.target, &f.alphabet);
        assert!(!ctx.validate(&doc).is_valid());
    }

    #[test]
    fn fallback_when_source_precondition_broken() {
        // Root label known to the target but not the source: validate fully.
        let mut alphabet = Alphabet::new();
        let source = {
            let mut b = SchemaBuilder::new(&mut alphabet);
            let t = b.simple("T", SimpleType::string()).unwrap();
            b.root("other", t);
            b.finish().unwrap()
        };
        let target = {
            let mut b = SchemaBuilder::new(&mut alphabet);
            let t = b.simple("T", SimpleType::string()).unwrap();
            b.root("note", t);
            b.finish().unwrap()
        };
        let note = alphabet.lookup("note").unwrap();
        let mut doc = Doc::new(note);
        doc.add_text(doc.root(), "hello");
        let ctx = CastContext::new(&source, &target, &alphabet);
        let (out, stats) = ctx.validate_with_stats(&doc);
        assert!(out.is_valid());
        assert_eq!(stats.full_validations, 1);
    }
}
