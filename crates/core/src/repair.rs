//! Automatic document repair — the paper's stated future work:
//! "exploring how a system may automatically correct a document valid
//! according to one schema so that it conforms to a new schema".
//!
//! Given a document (typically valid for the source schema) and the
//! preprocessed pair, [`Repairer::repair`] produces a *new* document valid
//! for the target schema together with a log of what changed:
//!
//! * subsumed subtrees are copied verbatim (no inspection, as in the cast
//!   validator),
//! * out-of-range simple values are replaced by a deterministic example of
//!   the target simple type,
//! * rejected content models are fixed by a **minimum-edit** repair of the
//!   children-label string ([`schemacast_automata::repair_string`]);
//!   inserted or substituted elements get minimal synthesized subtrees
//!   (shortest witnesses of the target content models).
//!
//! Per-node repairs are cost-minimal; the composition is greedy per level,
//! not globally minimal — computing a globally minimal tree edit script is
//! NP-hard in general and out of scope.

use crate::cast::CastContext;
use schemacast_automata::{repair_string, shortest_witness, BitSet, StringRepairOp};
use schemacast_regex::{Alphabet, Sym};
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId, NodeKind};
use std::fmt;

/// One change made by the repairer, with a slash path into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairAction {
    /// A simple value was replaced.
    SetValue {
        /// Path of the element whose value changed.
        path: String,
        /// Previous value.
        old: String,
        /// New (schema-valid) value.
        new: String,
    },
    /// A new element (with minimal content) was inserted.
    InsertElement {
        /// Path of the inserted element.
        path: String,
    },
    /// An element (and its subtree) was removed.
    DeleteElement {
        /// Path of the removed element.
        path: String,
    },
    /// An element was replaced by one with a different label (fresh minimal
    /// content).
    ReplaceElement {
        /// Path of the replaced element.
        path: String,
        /// Its previous label.
        old_label: String,
        /// The new label.
        new_label: String,
    },
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::SetValue { path, old, new } => {
                write!(f, "set value at {path}: {old:?} -> {new:?}")
            }
            RepairAction::InsertElement { path } => write!(f, "insert element at {path}"),
            RepairAction::DeleteElement { path } => write!(f, "delete element at {path}"),
            RepairAction::ReplaceElement {
                path,
                old_label,
                new_label,
            } => write!(
                f,
                "replace element at {path}: <{old_label}> -> <{new_label}>"
            ),
        }
    }
}

/// Why a document could not be repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The root label is admitted by neither the target's root map nor a
    /// unique alternative.
    NoAdmissibleRoot,
    /// A required type has an empty value space / language.
    Unrepairable {
        /// Path at which repair failed.
        path: String,
    },
    /// Synthesis recursion exceeded the safety bound (pathological schema).
    DepthExceeded,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NoAdmissibleRoot => write!(f, "no admissible root element"),
            RepairError::Unrepairable { path } => write!(f, "unrepairable content at {path}"),
            RepairError::DepthExceeded => write!(f, "synthesis recursion exceeded bound"),
        }
    }
}

impl std::error::Error for RepairError {}

const MAX_SYNTH_DEPTH: usize = 256;

/// Repairs documents against a preprocessed schema pair.
pub struct Repairer<'a, 'b> {
    ctx: &'a CastContext<'b>,
    alphabet: &'a Alphabet,
    /// Productivity of target types (synthesis only uses productive labels).
    productive: Vec<bool>,
}

impl<'a, 'b> Repairer<'a, 'b> {
    /// Prepares a repairer (computes target-type productivity once).
    pub fn new(ctx: &'a CastContext<'b>, alphabet: &'a Alphabet) -> Self {
        let productive = ctx.target().productive(alphabet);
        Repairer {
            ctx,
            alphabet,
            productive,
        }
    }

    fn target(&self) -> &AbstractSchema {
        self.ctx.target()
    }

    /// Repairs `doc` into a target-valid document, returning it with the
    /// change log (empty when the document was already valid).
    pub fn repair(&self, doc: &Doc) -> Result<(Doc, Vec<RepairAction>), RepairError> {
        let root = doc.root();
        let Some(label) = doc.label(root) else {
            return Err(RepairError::NoAdmissibleRoot);
        };
        let mut actions = Vec::new();
        let (out_label, tgt) = match self.target().root_type(label) {
            Some(t) => (label, t),
            None => {
                // Relabel the root if the target admits exactly one root.
                let mut roots: Vec<(Sym, TypeId)> = self.target().roots().collect();
                if roots.len() != 1 {
                    return Err(RepairError::NoAdmissibleRoot);
                }
                let (new_label, t) = roots.pop().expect("len checked");
                actions.push(RepairAction::ReplaceElement {
                    path: format!("/{}", self.alphabet.name(label)),
                    old_label: self.alphabet.name(label).to_owned(),
                    new_label: self.alphabet.name(new_label).to_owned(),
                });
                (new_label, t)
            }
        };
        let src = doc.label(root).and_then(|l| self.ctx.source().root_type(l));
        let mut out = Doc::new(out_label);
        let out_root = out.root();
        let mut path = format!("/{}", self.alphabet.name(out_label));
        self.repair_node(
            doc,
            root,
            src,
            tgt,
            &mut out,
            out_root,
            &mut path,
            &mut actions,
            0,
        )?;
        Ok((out, actions))
    }

    /// Copies `node`'s content into `out_node`, repaired against `tgt`.
    #[allow(clippy::too_many_arguments)]
    fn repair_node(
        &self,
        doc: &Doc,
        node: NodeId,
        src: Option<TypeId>,
        tgt: TypeId,
        out: &mut Doc,
        out_node: NodeId,
        path: &mut String,
        actions: &mut Vec<RepairAction>,
        depth: usize,
    ) -> Result<(), RepairError> {
        if depth > MAX_SYNTH_DEPTH {
            return Err(RepairError::DepthExceeded);
        }
        // Fast path: subsumed pair ⇒ verbatim copy.
        if let Some(s) = src {
            if self.ctx.relations().subsumed(s, tgt) {
                copy_children(doc, node, out, out_node);
                return Ok(());
            }
        }
        match self.target().type_def(tgt) {
            TypeDef::Simple(simple) => {
                let children: Vec<NodeId> = doc.validation_children(node).collect();
                let current: Option<String> = match children.as_slice() {
                    [] => Some(String::new()),
                    [only] => doc.text(*only).map(str::to_owned),
                    _ => None,
                };
                match current {
                    Some(value) if simple.validate(&value) => {
                        if !value.is_empty() {
                            out.add_text(out_node, value);
                        }
                    }
                    other => {
                        let new = simple
                            .example_value()
                            .ok_or_else(|| RepairError::Unrepairable { path: path.clone() })?;
                        actions.push(RepairAction::SetValue {
                            path: path.clone(),
                            old: other.unwrap_or_else(|| "<element content>".to_owned()),
                            new: new.clone(),
                        });
                        if !new.is_empty() {
                            out.add_text(out_node, new);
                        }
                    }
                }
                Ok(())
            }
            TypeDef::Complex(c_tgt) => {
                let children: Vec<NodeId> = doc.validation_children(node).collect();
                // Text in element content is dropped as a repair.
                let mut labels: Vec<Sym> = Vec::new();
                let mut element_children: Vec<NodeId> = Vec::new();
                for &child in &children {
                    match doc.label(child) {
                        Some(l) => {
                            labels.push(l);
                            element_children.push(child);
                        }
                        None => actions.push(RepairAction::DeleteElement {
                            path: format!("{path}/#text"),
                        }),
                    }
                }
                let allowed = self.productive_labels(c_tgt);
                let (ops, _cost) = repair_string(&c_tgt.dfa, &labels, Some(&allowed))
                    .ok_or_else(|| RepairError::Unrepairable { path: path.clone() })?;

                let src_complex = src.and_then(|s| self.ctx.source().type_def(s).as_complex());
                let mut child_iter = element_children.iter();
                let mut position = 0usize;
                for op in ops {
                    match op {
                        StringRepairOp::Keep(label) => {
                            let child = *child_iter.next().expect("op/child alignment");
                            let child_tgt = c_tgt
                                .child_type(label)
                                .ok_or_else(|| RepairError::Unrepairable { path: path.clone() })?;
                            let child_src = src_complex.and_then(|c| c.child_type(label));
                            let out_child = out.add_element(out_node, label);
                            let len = path.len();
                            path.push('/');
                            path.push_str(self.alphabet.name(label));
                            path.push_str(&format!("[{position}]"));
                            self.repair_node(
                                doc,
                                child,
                                child_src,
                                child_tgt,
                                out,
                                out_child,
                                path,
                                actions,
                                depth + 1,
                            )?;
                            path.truncate(len);
                            position += 1;
                        }
                        StringRepairOp::Delete(label) => {
                            let _ = child_iter.next().expect("op/child alignment");
                            actions.push(RepairAction::DeleteElement {
                                path: format!("{path}/{}", self.alphabet.name(label)),
                            });
                        }
                        StringRepairOp::Subst { from, to } => {
                            let _ = child_iter.next().expect("op/child alignment");
                            actions.push(RepairAction::ReplaceElement {
                                path: format!("{path}/{}", self.alphabet.name(from)),
                                old_label: self.alphabet.name(from).to_owned(),
                                new_label: self.alphabet.name(to).to_owned(),
                            });
                            self.synthesize(to, out, out_node, path, depth + 1)?;
                            position += 1;
                        }
                        StringRepairOp::Insert(label) => {
                            actions.push(RepairAction::InsertElement {
                                path: format!("{path}/{}", self.alphabet.name(label)),
                            });
                            self.synthesize(label, out, out_node, path, depth + 1)?;
                            position += 1;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Labels of a content model whose target child types are productive.
    fn productive_labels(&self, c: &schemacast_schema::ComplexType) -> BitSet {
        let mut allowed = BitSet::new(self.alphabet.len());
        for (&label, &t) in &c.child_types {
            if self.productive[t.index()] && label.index() < allowed.capacity() {
                allowed.insert(label.index());
            }
        }
        allowed
    }

    /// Appends a minimal valid element with `label` under `parent`.
    fn synthesize(
        &self,
        label: Sym,
        out: &mut Doc,
        parent: NodeId,
        path: &str,
        depth: usize,
    ) -> Result<(), RepairError> {
        if depth > MAX_SYNTH_DEPTH {
            return Err(RepairError::DepthExceeded);
        }
        // The label's type under the element we are synthesizing into:
        // resolved through the parent's target type is already done by the
        // caller; here we need the target type for `label` in the context
        // of its parent, which the caller knows — so this helper takes the
        // parent's complex def instead. To keep the recursion simple we
        // resolve through the parent element's type each time.
        let parent_tgt = out
            .label(parent)
            .and_then(|l| self.resolve_type_of(parent, out, l));
        let t = match parent_tgt {
            Some(TypeDef::Complex(c)) => c.child_type(label),
            _ => None,
        }
        .ok_or_else(|| RepairError::Unrepairable {
            path: path.to_owned(),
        })?;
        let node = out.add_element(parent, label);
        self.synthesize_content(t, out, node, path, depth + 1)
    }

    /// Resolves the target type definition governing `node` in `out` by
    /// walking up from the root (outputs are always target-typed).
    fn resolve_type_of<'s>(&'s self, node: NodeId, out: &Doc, _label: Sym) -> Option<&'s TypeDef> {
        // Reconstruct the type by the root-to-node label path.
        let mut chain = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            chain.push(out.label(n)?);
            cur = out.parent(n);
        }
        chain.reverse();
        let mut t = self.target().root_type(chain[0])?;
        for &label in &chain[1..] {
            match self.target().type_def(t) {
                TypeDef::Complex(c) => t = c.child_type(label)?,
                TypeDef::Simple(_) => return None,
            }
        }
        Some(self.target().type_def(t))
    }

    /// Fills `node` with minimal content valid for type `t`.
    fn synthesize_content(
        &self,
        t: TypeId,
        out: &mut Doc,
        node: NodeId,
        path: &str,
        depth: usize,
    ) -> Result<(), RepairError> {
        if depth > MAX_SYNTH_DEPTH {
            return Err(RepairError::DepthExceeded);
        }
        match self.target().type_def(t) {
            TypeDef::Simple(s) => {
                let v = s.example_value().ok_or_else(|| RepairError::Unrepairable {
                    path: path.to_owned(),
                })?;
                if !v.is_empty() {
                    out.add_text(node, v);
                }
                Ok(())
            }
            TypeDef::Complex(c) => {
                let allowed = self.productive_labels(c);
                let witness = shortest_witness(&c.dfa, Some(&allowed)).ok_or_else(|| {
                    RepairError::Unrepairable {
                        path: path.to_owned(),
                    }
                })?;
                for label in witness {
                    let ct = c
                        .child_type(label)
                        .ok_or_else(|| RepairError::Unrepairable {
                            path: path.to_owned(),
                        })?;
                    let child = out.add_element(node, label);
                    self.synthesize_content(ct, out, child, path, depth + 1)?;
                }
                Ok(())
            }
        }
    }
}

fn copy_children(doc: &Doc, node: NodeId, out: &mut Doc, out_node: NodeId) {
    for &child in doc.children(node) {
        match doc.kind(child) {
            NodeKind::Element(label) => {
                let out_child = out.add_element(out_node, *label);
                copy_children(doc, child, out, out_child);
            }
            NodeKind::Text(t) => {
                out.add_text(out_node, t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{AtomicKind, BoundValue, Decimal, SchemaBuilder, SimpleType};

    struct Fx {
        source: schemacast_schema::AbstractSchema,
        target: schemacast_schema::AbstractSchema,
        ab: Alphabet,
    }

    fn fx() -> Fx {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, optional: bool, qty_max: i64| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let mut qty_t = SimpleType::of(AtomicKind::PositiveInteger);
            qty_t.facets.max_exclusive = Some(BoundValue::Num(Decimal::from_i64(qty_max)));
            let qty = b.simple("Qty", qty_t).unwrap();
            let addr = b.declare("Addr").unwrap();
            b.complex(addr, "(name, city)", &[("name", text), ("city", text)])
                .unwrap();
            let item = b.declare("Item").unwrap();
            b.complex(item, "(sku, qty)", &[("sku", text), ("qty", qty)])
                .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", item)]).unwrap();
            let po = b.declare("PO").unwrap();
            let model = if optional {
                "(ship, bill?, items)"
            } else {
                "(ship, bill, items)"
            };
            b.complex(
                po,
                model,
                &[("ship", addr), ("bill", addr), ("items", items)],
            )
            .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true, 200);
        let target = mk(&mut ab, false, 100);
        Fx { source, target, ab }
    }

    fn build_doc(ab: &mut Alphabet, with_bill: bool, qtys: &[&str]) -> Doc {
        let po = ab.intern("po");
        let ship = ab.intern("ship");
        let bill = ab.intern("bill");
        let items = ab.intern("items");
        let item = ab.intern("item");
        let sku = ab.intern("sku");
        let qty = ab.intern("qty");
        let name = ab.intern("name");
        let city = ab.intern("city");
        let mut d = Doc::new(po);
        for (l, on) in [(ship, true), (bill, with_bill)] {
            if !on {
                continue;
            }
            let a = d.add_element(d.root(), l);
            for k in [name, city] {
                let e = d.add_element(a, k);
                d.add_text(e, "v");
            }
        }
        let il = d.add_element(d.root(), items);
        for q in qtys {
            let i = d.add_element(il, item);
            let s = d.add_element(i, sku);
            d.add_text(s, "S");
            let e = d.add_element(i, qty);
            d.add_text(e, *q);
        }
        d
    }

    #[test]
    fn valid_documents_repair_to_themselves() {
        let mut f = fx();
        let doc = build_doc(&mut f.ab, true, &["5", "50"]);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions) = r.repair(&doc).expect("repairs");
        assert!(actions.is_empty(), "actions: {actions:?}");
        assert!(f.target.accepts_document(&fixed));
        assert_eq!(fixed.node_count(), doc.node_count());
    }

    #[test]
    fn missing_required_element_is_inserted() {
        let mut f = fx();
        let doc = build_doc(&mut f.ab, false, &["5"]);
        assert!(f.source.accepts_document(&doc));
        assert!(!f.target.accepts_document(&doc));
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions) = r.repair(&doc).expect("repairs");
        assert!(f.target.accepts_document(&fixed));
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], RepairAction::InsertElement { path }
            if path == "/po/bill"));
    }

    #[test]
    fn out_of_range_values_are_clamped_to_examples() {
        let mut f = fx();
        let doc = build_doc(&mut f.ab, true, &["150", "50", "199"]);
        assert!(f.source.accepts_document(&doc));
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions) = r.repair(&doc).expect("repairs");
        assert!(f.target.accepts_document(&fixed));
        let value_fixes: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, RepairAction::SetValue { .. }))
            .collect();
        assert_eq!(value_fixes.len(), 2); // 150 and 199, not 50
    }

    #[test]
    fn foreign_elements_are_deleted() {
        let mut f = fx();
        let mut doc = build_doc(&mut f.ab, true, &["5"]);
        // Inject a bogus element into the po content.
        let bogus = f.ab.intern("bogus");
        doc.insert_element(doc.root(), 1, bogus);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions) = r.repair(&doc).expect("repairs");
        assert!(f.target.accepts_document(&fixed));
        assert!(actions
            .iter()
            .any(|a| matches!(a, RepairAction::DeleteElement { path } if path.contains("bogus"))));
    }

    #[test]
    fn unknown_root_relabeled_when_unique() {
        let mut f = fx();
        let other = f.ab.intern("legacyOrder");
        let doc = Doc::new(other);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions) = r.repair(&doc).expect("repairs");
        assert!(f.target.accepts_document(&fixed));
        assert!(matches!(&actions[0], RepairAction::ReplaceElement { .. }));
    }

    #[test]
    fn repair_is_idempotent() {
        let mut f = fx();
        let doc = build_doc(&mut f.ab, false, &["150"]);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let r = Repairer::new(&ctx, &f.ab);
        let (fixed, actions1) = r.repair(&doc).expect("repairs");
        assert!(!actions1.is_empty());
        let (fixed2, actions2) = r.repair(&fixed).expect("repairs again");
        assert!(actions2.is_empty(), "second pass: {actions2:?}");
        assert!(f.target.accepts_document(&fixed2));
    }

    #[test]
    fn actions_render_readably() {
        let a = RepairAction::SetValue {
            path: "/po/items/item[0]/qty".into(),
            old: "150".into(),
            new: "1".into(),
        };
        assert!(a.to_string().contains("/po/items/item[0]/qty"));
        let b = RepairAction::InsertElement {
            path: "/po/bill".into(),
        };
        assert!(b.to_string().contains("insert"));
    }
}
