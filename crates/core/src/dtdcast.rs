//! DTD-specific cast validation with a label index (§3.4).
//!
//! For DTDs, an element's label determines its type, so top-down typing is
//! unnecessary: with direct access to all instances of each label (a label
//! index, as a database of XML would maintain), only the elements whose
//! (source, target) type pair is neither subsumed nor disjoint need their
//! *immediate* content model checked — each element's descendants are
//! covered by their own labels' verdicts.

use crate::cast::CastContext;
use crate::stats::{CastOutcome, ValidationStats};
use schemacast_automata::IdaOutcome;
use schemacast_regex::Sym;
use schemacast_schema::{TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A label → element-nodes index over one document.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    buckets: HashMap<Sym, Vec<NodeId>>,
}

impl LabelIndex {
    /// Builds the index in one pre-order pass.
    pub fn build(doc: &Doc) -> LabelIndex {
        let mut buckets: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        for node in doc.preorder_iter() {
            if let Some(label) = doc.label(node) {
                buckets.entry(label).or_default().push(node);
            }
        }
        LabelIndex { buckets }
    }

    /// All element nodes with the given label.
    pub fn nodes(&self, label: Sym) -> &[NodeId] {
        self.buckets.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Labels occurring in the document.
    pub fn labels(&self) -> impl Iterator<Item = Sym> + '_ {
        self.buckets.keys().copied()
    }

    /// Number of occurrences of a label.
    pub fn count(&self, label: Sym) -> usize {
        self.nodes(label).len()
    }
}

/// What the preprocessed plan says about a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPlan {
    /// Type pair subsumed: instances need no checking at all.
    Skip,
    /// Type pair disjoint, or the label is unknown to the target: any
    /// instance makes the document invalid.
    RejectIfPresent,
    /// Neither: each instance's immediate content model (or simple value)
    /// must be verified.
    CheckContent {
        /// Source type of the label (`None` when the label is unknown to
        /// the source — such instances are validated in full).
        source: Option<TypeId>,
        /// Target type of the label.
        target: TypeId,
    },
}

/// Error: the schemas are not DTD-style, so label-driven validation is
/// unsound (a label's type depends on context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDtdStyle;

impl fmt::Display for NotDtdStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "label-indexed cast validation requires DTD-style schemas (one type per label)"
        )
    }
}

impl std::error::Error for NotDtdStyle {}

/// A label-driven cast validator for DTD-style schema pairs.
pub struct DtdCastValidator<'a, 'b> {
    ctx: &'a CastContext<'b>,
    plan: HashMap<Sym, LabelPlan>,
}

impl<'a, 'b> DtdCastValidator<'a, 'b> {
    /// Preprocesses the label plan.
    ///
    /// # Errors
    /// Fails with [`NotDtdStyle`] if either schema assigns a label more than
    /// one type.
    pub fn new(ctx: &'a CastContext<'b>, alphabet_len: usize) -> Result<Self, NotDtdStyle> {
        if !ctx.source().is_dtd_style() || !ctx.target().is_dtd_style() {
            return Err(NotDtdStyle);
        }
        let mut plan = HashMap::new();
        for idx in 0..alphabet_len {
            let label = Sym(idx as u32);
            let t_type = ctx.target().label_type(label);
            let s_type = ctx.source().label_type(label);
            let entry = match (s_type, t_type) {
                (_, None) => LabelPlan::RejectIfPresent,
                (None, Some(t)) => LabelPlan::CheckContent {
                    source: None,
                    target: t,
                },
                (Some(s), Some(t)) => {
                    // Honor the context's ablation switches so that a
                    // baseline-configured context measures the baseline here
                    // too, not a silently optimized plan.
                    if ctx.options().use_subsumption && ctx.relations().subsumed(s, t) {
                        LabelPlan::Skip
                    } else if ctx.options().use_disjointness && ctx.relations().disjoint(s, t) {
                        LabelPlan::RejectIfPresent
                    } else {
                        LabelPlan::CheckContent {
                            source: Some(s),
                            target: t,
                        }
                    }
                }
            };
            plan.insert(label, entry);
        }
        Ok(DtdCastValidator { ctx, plan })
    }

    /// The plan entry for a label (diagnostics / benchmarks).
    pub fn plan(&self, label: Sym) -> Option<LabelPlan> {
        self.plan.get(&label).copied()
    }

    /// Validates via the label index. The document must be valid with
    /// respect to the source schema (the usual cast precondition).
    pub fn validate(&self, doc: &Doc, index: &LabelIndex) -> CastOutcome {
        self.validate_with_stats(doc, index).0
    }

    /// Like [`DtdCastValidator::validate`], with cost counters.
    pub fn validate_with_stats(
        &self,
        doc: &Doc,
        index: &LabelIndex,
    ) -> (CastOutcome, ValidationStats) {
        let mut stats = ValidationStats::default();
        // Root admissibility.
        let Some(root_label) = doc.label(doc.root()) else {
            return (CastOutcome::Invalid, stats);
        };
        if self.ctx.target().root_type(root_label).is_none() {
            return (CastOutcome::Invalid, stats);
        }
        for label in index.labels() {
            match self.plan.get(&label) {
                None | Some(LabelPlan::RejectIfPresent) => {
                    if index.count(label) > 0 {
                        stats.disjoint_rejects += 1;
                        return (CastOutcome::Invalid, stats);
                    }
                }
                Some(LabelPlan::Skip) => {
                    stats.subsumed_skips += 1;
                }
                Some(LabelPlan::CheckContent { source, target }) => {
                    for &node in index.nodes(label) {
                        if !self.check_node(doc, node, *source, *target, &mut stats) {
                            return (CastOutcome::Invalid, stats);
                        }
                    }
                }
            }
        }
        (CastOutcome::Valid, stats)
    }

    /// Checks one element's immediate content (not its descendants).
    fn check_node(
        &self,
        doc: &Doc,
        node: NodeId,
        source: Option<TypeId>,
        target: TypeId,
        stats: &mut ValidationStats,
    ) -> bool {
        stats.nodes_visited += 1;
        match self.ctx.target().type_def(target) {
            TypeDef::Simple(s) => {
                stats.value_checks += 1;
                crate::full::validate_simple_content(doc, node, |t| s.validate(t), stats)
            }
            TypeDef::Complex(c_tgt) => {
                let mut labels: Vec<Sym> = Vec::new();
                for child in doc.validation_children(node) {
                    match doc.label(child) {
                        Some(l) => labels.push(l),
                        None => return false,
                    }
                }
                let use_ida = self.ctx.options().use_ida
                    && source.is_some_and(|s| self.ctx.source().type_def(s).as_complex().is_some());
                if use_ida {
                    let ida = self.ctx.product_ida(source.expect("checked above"), target);
                    let out = ida.run(&labels);
                    stats.content_symbols_scanned += out.consumed();
                    match out {
                        IdaOutcome::Accept { early, .. } => {
                            if early {
                                stats.ida_early_accepts += 1;
                            }
                            true
                        }
                        IdaOutcome::Reject { early, .. } => {
                            if early {
                                stats.ida_early_rejects += 1;
                            }
                            false
                        }
                    }
                } else {
                    stats.content_symbols_scanned += labels.len();
                    c_tgt.dfa.accepts(&labels)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::parse_dtd;

    const SRC_DTD: &str = r#"
        <!ELEMENT po (ship, bill?, items)>
        <!ELEMENT ship (name)>
        <!ELEMENT bill (name)>
        <!ELEMENT items (item*)>
        <!ELEMENT item (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
    "#;
    const TGT_DTD: &str = r#"
        <!ELEMENT po (ship, bill, items)>
        <!ELEMENT ship (name)>
        <!ELEMENT bill (name)>
        <!ELEMENT items (item*)>
        <!ELEMENT item (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
    "#;

    fn build_doc(ab: &mut Alphabet, with_bill: bool, items: usize) -> Doc {
        let po = ab.intern("po");
        let ship = ab.intern("ship");
        let bill = ab.intern("bill");
        let items_l = ab.intern("items");
        let item = ab.intern("item");
        let name = ab.intern("name");
        let mut d = Doc::new(po);
        for (l, yes) in [(ship, true), (bill, with_bill)] {
            if !yes {
                continue;
            }
            let a = d.add_element(d.root(), l);
            let n = d.add_element(a, name);
            d.add_text(n, "x");
        }
        let il = d.add_element(d.root(), items_l);
        for _ in 0..items {
            let i = d.add_element(il, item);
            d.add_text(i, "v");
        }
        d
    }

    #[test]
    fn dtd_cast_checks_only_po_elements() {
        let mut ab = Alphabet::new();
        let source = parse_dtd(SRC_DTD, Some("po"), &mut ab).unwrap();
        let target = parse_dtd(TGT_DTD, Some("po"), &mut ab).unwrap();
        let ctx = CastContext::new(&source, &target, &ab);
        let v = DtdCastValidator::new(&ctx, ab.len()).unwrap();

        // Only "po" needs checking; all other labels are subsumed.
        let po = ab.lookup("po").unwrap();
        let ship = ab.lookup("ship").unwrap();
        assert!(matches!(v.plan(po), Some(LabelPlan::CheckContent { .. })));
        assert_eq!(v.plan(ship), Some(LabelPlan::Skip));

        let good = build_doc(&mut ab, true, 50);
        let bad = build_doc(&mut ab, false, 50);
        let gi = LabelIndex::build(&good);
        let bi = LabelIndex::build(&bad);
        let (out, stats) = v.validate_with_stats(&good, &gi);
        assert!(out.is_valid());
        // Exactly one element (the po root) was examined.
        assert_eq!(stats.nodes_visited, 1);
        assert!(!v.validate(&bad, &bi).is_valid());
    }

    #[test]
    fn unknown_label_rejects() {
        let mut ab = Alphabet::new();
        let source = parse_dtd(SRC_DTD, Some("po"), &mut ab).unwrap();
        // Target lacking "bill" entirely.
        let target = parse_dtd(
            r#"<!ELEMENT po (ship, items)>
               <!ELEMENT ship (name)>
               <!ELEMENT items (item*)>
               <!ELEMENT item (#PCDATA)>
               <!ELEMENT name (#PCDATA)>"#,
            Some("po"),
            &mut ab,
        )
        .unwrap();
        let ctx = CastContext::new(&source, &target, &ab);
        let v = DtdCastValidator::new(&ctx, ab.len()).unwrap();
        let with_bill = build_doc(&mut ab, true, 3);
        let without = build_doc(&mut ab, false, 3);
        assert!(!v
            .validate(&with_bill, &LabelIndex::build(&with_bill))
            .is_valid());
        assert!(v
            .validate(&without, &LabelIndex::build(&without))
            .is_valid());
    }

    #[test]
    fn agrees_with_tree_cast_on_value_narrowing() {
        // Source item is plain text, target restricts nothing — but make the
        // target's items require at least one item to exercise CheckContent.
        let mut ab = Alphabet::new();
        let source = parse_dtd(SRC_DTD, Some("po"), &mut ab).unwrap();
        let target = parse_dtd(
            r#"<!ELEMENT po (ship, bill?, items)>
               <!ELEMENT ship (name)>
               <!ELEMENT bill (name)>
               <!ELEMENT items (item+)>
               <!ELEMENT item (#PCDATA)>
               <!ELEMENT name (#PCDATA)>"#,
            Some("po"),
            &mut ab,
        )
        .unwrap();
        let ctx = CastContext::new(&source, &target, &ab);
        let v = DtdCastValidator::new(&ctx, ab.len()).unwrap();
        for (with_bill, items) in [(true, 0), (true, 3), (false, 0), (false, 2)] {
            let doc = build_doc(&mut ab, with_bill, items);
            let idx = LabelIndex::build(&doc);
            let via_index = v.validate(&doc, &idx).is_valid();
            let via_tree = ctx.validate(&doc).is_valid();
            let via_full = target.accepts_document(&doc);
            assert_eq!(via_index, via_full, "bill={with_bill} items={items}");
            assert_eq!(via_tree, via_full, "bill={with_bill} items={items}");
        }
    }

    #[test]
    fn rejects_non_dtd_style() {
        // An XSD-style schema where label x has two types.
        let mut ab = Alphabet::new();
        let source = {
            let mut b = schemacast_schema::SchemaBuilder::new(&mut ab);
            let s1 = b
                .simple("S1", schemacast_schema::SimpleType::string())
                .unwrap();
            let s2 = b
                .simple(
                    "S2",
                    schemacast_schema::SimpleType::of(schemacast_schema::AtomicKind::Integer),
                )
                .unwrap();
            let c1 = b.declare("C1").unwrap();
            b.complex(c1, "(x)", &[("x", s1)]).unwrap();
            let c2 = b.declare("C2").unwrap();
            b.complex(c2, "(x)", &[("x", s2)]).unwrap();
            b.root("c1", c1);
            b.root("c2", c2);
            b.finish().unwrap()
        };
        let target = source.clone();
        let ctx = CastContext::new(&source, &target, &ab);
        let err = DtdCastValidator::new(&ctx, ab.len())
            .err()
            .expect("must fail");
        assert_eq!(err, NotDtdStyle);
    }
}
