//! Whole-script static analysis: group a Δ edit script by touched site,
//! normalize each site's effect, and decide the script against the target
//! schema without applying a single edit.
//!
//! The per-edit fast path ([`CastContext::validate_edited_static`]) is
//! universally quantified — a verdict must hold for *every* source word
//! and position — and restricted to one edit per site. This layer lifts
//! both limits. Each touched node's edits are replayed into one
//! [`NetEffect`] (insert/delete cancellation, rename-back cancellation,
//! and overwrite collapse fall out of the replay), and the decision runs
//! over the *concrete* child word the document actually has:
//!
//! * net word ∉ target content model ⇒ the site, hence the document, can
//!   never be target-valid — **reject**;
//! * a fresh (inserted) child whose target type rejects a childless leaf
//!   ⇒ **reject**; one that accepts it needs no further look;
//! * a kept or renamed child is source-valid for its source child type,
//!   so `R_sub` on the `(source child, target child)` pair proves it
//!   stays valid, `R_dis` proves it never can (**reject**), and anything
//!   else sends the script to the dynamic path;
//! * all sites decided ⇒ **accept**, discharged by the same edit-exempt
//!   walk as the per-edit path (identity-effect sites are *not* exempted:
//!   their subtrees are untouched and get checked normally).
//!
//! Grouping is conservative: text edits, root relabels, inserts under
//! inserted nodes, nested sites, unresolvable site typing, and sites with
//! text children all bail to the dynamic Δ-revalidation path (`None`).
//! Node ids of inserted nodes are simulated exactly as
//! [`schemacast_tree::DeltaDoc`] assigns them (sequential arena pushes),
//! so scripts that edit their own insertions resolve without applying
//! anything.

use crate::cast::CastContext;
use crate::safety::accepts_childless;
use schemacast_automata::effect::{EarlySettle, EffectOp, NetEffect, Provenance};
use schemacast_regex::Sym;
use schemacast_schema::TypeId;
use schemacast_tree::{Doc, Edit, NodeId, NodeKind};
use std::collections::{HashMap, HashSet};

/// The justification for rejecting one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The net child word is not in the target content model.
    Membership,
    /// A freshly inserted child's target type rejects a childless leaf.
    FreshInvalid {
        /// Net-word position of the fresh child.
        pos: usize,
    },
    /// A kept/renamed child's `(source, target)` child types are disjoint:
    /// its source-valid subtree can never be target-valid.
    DisjointChild {
        /// Net-word position of the child.
        pos: usize,
    },
}

/// The decision for one touched site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteDecision {
    /// The net effect is the identity — the site is effectively untouched.
    Identity,
    /// The edited site is statically proven target-valid.
    Accept,
    /// The edited site can never be target-valid.
    Reject(RejectReason),
    /// Not statically decidable; the dynamic path must look.
    Undecided,
}

/// One kept/renamed net-word position and the child-type facts consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildCheck {
    /// Net-word position.
    pub pos: usize,
    /// Source child type (of the original label).
    pub source: TypeId,
    /// Target child type (of the current label).
    pub target: TypeId,
    /// Whether the pair is in `R_sub`.
    pub subsumed: bool,
    /// Whether the pair is in `R_dis`.
    pub disjoint: bool,
}

/// One fresh net-word position and the childless-leaf fact consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshCheck {
    /// Net-word position.
    pub pos: usize,
    /// Target child type of the inserted label, if the target types it.
    pub target: Option<TypeId>,
    /// Whether that type accepts a childless element.
    pub childless_ok: bool,
}

/// The analysis of one touched site: its typing, normalized effect, the
/// per-child facts consulted, and the decision.
#[derive(Debug, Clone)]
pub struct ScriptSite {
    /// The node whose child list the script edits.
    pub site: NodeId,
    /// Source typing of the site.
    pub source_type: TypeId,
    /// Target typing of the site.
    pub target_type: TypeId,
    /// The normalized effect (original word, ops, trace, net word,
    /// provenance).
    pub net: NetEffect,
    /// Kept/renamed-child subsumption/disjointness facts, by net position.
    pub kept: Vec<ChildCheck>,
    /// Fresh-child childless-leaf facts, by net position.
    pub fresh: Vec<FreshCheck>,
    /// How the IDA settled the membership run early, if it did.
    pub early: Option<EarlySettle>,
    /// The site decision.
    pub decision: SiteDecision,
}

/// The script-level verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptVerdict {
    /// Every site decided valid: the edited document is target-valid iff
    /// the edit-exempt walk of the untouched remainder passes.
    Accept,
    /// Some site can never be target-valid: the edited document is
    /// invalid.
    Reject,
    /// At least one site is undecided (and none rejects).
    Undecided,
}

/// The whole-script analysis: per-site decisions and the folded verdict.
#[derive(Debug, Clone)]
pub struct ScriptAnalysis {
    /// One entry per touched site, in first-touch order.
    pub sites: Vec<ScriptSite>,
    /// The folded verdict.
    pub verdict: ScriptVerdict,
}

impl ScriptAnalysis {
    /// Whether any site's trace contains a genuine normalization rewrite
    /// (cancellation or overwrite) — the scripts whose net effect is
    /// smaller than the script.
    pub fn normalized(&self) -> bool {
        self.sites.iter().any(|s| s.net.normalized())
    }

    /// The sites the accept-path exemption walk skips: decided non-identity
    /// sites. Identity-effect sites are untouched and validated normally.
    pub fn exempt_sites(&self) -> Vec<NodeId> {
        self.sites
            .iter()
            .filter(|s| s.decision == SiteDecision::Accept)
            .map(|s| s.site)
            .collect()
    }
}

/// One simulated child-list entry during grouping.
#[derive(Debug, Clone, Copy)]
struct SimChild {
    id: NodeId,
    deleted: bool,
}

/// One site's simulated child list and accumulated effect ops.
struct SiteBuild {
    site: NodeId,
    word: Vec<Sym>,
    entries: Vec<SimChild>,
    ops: Vec<EffectOp>,
}

impl SiteBuild {
    fn index_of(&self, id: NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }
}

impl<'a> CastContext<'a> {
    /// Whether `node` exists in `doc` and is an element.
    fn live_element(doc: &Doc, node: NodeId) -> bool {
        node.index() < doc.node_count() && matches!(doc.kind(node), NodeKind::Element(_))
    }

    /// Groups `edits` by touched site, simulating inserted node ids the
    /// way [`schemacast_tree::DeltaDoc`] assigns them. `None` on any
    /// condition the static analysis does not cover (see module docs).
    fn group_script(doc: &Doc, edits: &[Edit]) -> Option<Vec<SiteBuild>> {
        let mut sites: Vec<SiteBuild> = Vec::new();
        let mut by_site: HashMap<NodeId, usize> = HashMap::new();
        // Inserted node id → index of its site.
        let mut inserted_at: HashMap<NodeId, usize> = HashMap::new();
        let mut next_id = doc.node_count() as u32;

        // Lazily opens the view of an original site, capturing its
        // pre-edit child word (all children must be elements).
        fn open_site(
            doc: &Doc,
            sites: &mut Vec<SiteBuild>,
            by_site: &mut HashMap<NodeId, usize>,
            site: NodeId,
        ) -> Option<usize> {
            if let Some(&i) = by_site.get(&site) {
                return Some(i);
            }
            let mut word = Vec::new();
            let mut entries = Vec::new();
            for &c in doc.children(site) {
                word.push(doc.label(c)?); // text child ⇒ bail
                entries.push(SimChild {
                    id: c,
                    deleted: false,
                });
            }
            sites.push(SiteBuild {
                site,
                word,
                entries,
                ops: Vec::new(),
            });
            by_site.insert(site, sites.len() - 1);
            Some(sites.len() - 1)
        }

        for edit in edits {
            match edit {
                Edit::InsertText { .. } | Edit::SetText { .. } => return None,
                Edit::InsertElement {
                    parent,
                    position,
                    label,
                } => {
                    if inserted_at.contains_key(parent) {
                        // Inserting under a node this script inserted:
                        // outside the one-word-per-site model.
                        return None;
                    }
                    if !Self::live_element(doc, *parent) {
                        return None;
                    }
                    let i = open_site(doc, &mut sites, &mut by_site, *parent)?;
                    let view = &mut sites[i];
                    if *position > view.entries.len() {
                        return None;
                    }
                    let id = NodeId(next_id);
                    next_id += 1;
                    view.entries
                        .insert(*position, SimChild { id, deleted: false });
                    view.ops.push(EffectOp::Insert {
                        pos: *position,
                        sym: *label,
                    });
                    inserted_at.insert(id, i);
                }
                Edit::DeleteLeaf { node } => {
                    if let Some(&i) = inserted_at.get(node) {
                        let view = &mut sites[i];
                        let pos = view.index_of(*node)?;
                        view.entries.remove(pos);
                        view.ops.push(EffectOp::Delete { pos });
                        inserted_at.remove(node);
                    } else {
                        // Original node: must be a true element leaf (a
                        // text child would make the dynamic apply fail).
                        if !Self::live_element(doc, *node) || !doc.children(*node).is_empty() {
                            return None;
                        }
                        let site = doc.parent(*node)?;
                        let i = open_site(doc, &mut sites, &mut by_site, site)?;
                        let view = &mut sites[i];
                        let pos = view.index_of(*node)?;
                        if view.entries[pos].deleted {
                            return None;
                        }
                        view.entries[pos].deleted = true;
                        view.ops.push(EffectOp::Delete { pos });
                    }
                }
                Edit::Relabel { node, label } => {
                    if let Some(&i) = inserted_at.get(node) {
                        let view = &mut sites[i];
                        let pos = view.index_of(*node)?;
                        view.ops.push(EffectOp::Relabel { pos, sym: *label });
                    } else {
                        if !Self::live_element(doc, *node) {
                            return None;
                        }
                        // Relabeling the root changes ℛ-typing, not a word.
                        let site = doc.parent(*node)?;
                        let i = open_site(doc, &mut sites, &mut by_site, site)?;
                        let view = &mut sites[i];
                        let pos = view.index_of(*node)?;
                        if view.entries[pos].deleted {
                            return None;
                        }
                        view.ops.push(EffectOp::Relabel { pos, sym: *label });
                    }
                }
            }
        }

        // Non-nested sites: no site strictly inside another site's
        // subtree. (Multiple edits per site are the whole point here, so
        // unlike the per-edit path, duplicates are fine.)
        let site_set: HashSet<NodeId> = sites.iter().map(|s| s.site).collect();
        for view in &sites {
            let mut cur = view.site;
            while let Some(p) = doc.parent(cur) {
                if site_set.contains(&p) {
                    return None;
                }
                cur = p;
            }
        }
        Some(sites)
    }

    /// Analyzes a whole edit script against the schema pair without
    /// applying it: per-site net effects, concrete-word membership with
    /// IA/IR early exit, and child-type facts. `None` when the script
    /// falls outside the supported shape (see module docs) — the dynamic
    /// Δ-revalidation path then decides.
    ///
    /// Precondition: `doc` (pre-edit) is valid for the source schema.
    pub fn script_analysis(&self, doc: &Doc, edits: &[Edit]) -> Option<ScriptAnalysis> {
        let builds = Self::group_script(doc, edits)?;
        let mut out = Vec::with_capacity(builds.len());
        let mut any_reject = false;
        let mut any_undecided = false;
        for b in builds {
            let (s, t) = self.site_type_pair(doc, b.site)?;
            let cs = self.source().type_def(s).as_complex()?;
            let ct = self.target().type_def(t).as_complex()?;
            let net = NetEffect::compose(&b.word, &b.ops)?;

            if net.is_identity() {
                out.push(ScriptSite {
                    site: b.site,
                    source_type: s,
                    target_type: t,
                    net,
                    kept: Vec::new(),
                    fresh: Vec::new(),
                    early: None,
                    decision: SiteDecision::Identity,
                });
                continue;
            }

            let ida = self.product_ida(s, t);
            let outcome = net.decide(&cs.dfa, &ct.dfa, &ida);

            // Per-net-position child facts, consulted whether or not the
            // word was accepted: a disjoint kept child rejects on its own,
            // and the certificate records every fact either way.
            let mut kept = Vec::new();
            let mut fresh = Vec::new();
            let mut decision = if outcome.accepted {
                SiteDecision::Accept
            } else {
                SiteDecision::Reject(RejectReason::Membership)
            };
            let mut undecided = false;
            for (pos, (&sym, &prov)) in net.word().iter().zip(net.provenance().iter()).enumerate() {
                match prov {
                    Provenance::Fresh => {
                        let target = ct.child_type(sym);
                        let childless_ok =
                            target.is_some_and(|bt| accepts_childless(self.target(), bt));
                        fresh.push(FreshCheck {
                            pos,
                            target,
                            childless_ok,
                        });
                        match target {
                            Some(_) if childless_ok => {}
                            Some(_) => {
                                // The fresh leaf itself can never be valid.
                                if decision == SiteDecision::Accept {
                                    decision =
                                        SiteDecision::Reject(RejectReason::FreshInvalid { pos });
                                }
                            }
                            // Untyped but word-accepted: should be
                            // unreachable (an untyped label steps the
                            // target DFA to its sink); stay conservative.
                            None => undecided = true,
                        }
                    }
                    Provenance::Kept(o) | Provenance::Renamed(o) => {
                        let (Some(a_c), Some(b_c)) =
                            (cs.child_type(net.orig()[o]), ct.child_type(sym))
                        else {
                            undecided = true;
                            continue;
                        };
                        let subsumed = self.relations().subsumed(a_c, b_c);
                        let disjoint = self.relations().disjoint(a_c, b_c);
                        kept.push(ChildCheck {
                            pos,
                            source: a_c,
                            target: b_c,
                            subsumed,
                            disjoint,
                        });
                        if disjoint {
                            // The kept subtree is source-valid for a_c; a
                            // disjoint target type can never accept it.
                            if decision == SiteDecision::Accept {
                                decision =
                                    SiteDecision::Reject(RejectReason::DisjointChild { pos });
                            }
                        } else if !subsumed {
                            undecided = true;
                        }
                    }
                }
            }
            if undecided && decision == SiteDecision::Accept {
                decision = SiteDecision::Undecided;
            }
            match decision {
                SiteDecision::Reject(_) => any_reject = true,
                SiteDecision::Undecided => any_undecided = true,
                _ => {}
            }
            out.push(ScriptSite {
                site: b.site,
                source_type: s,
                target_type: t,
                net,
                kept,
                fresh,
                early: outcome.early,
                decision,
            });
        }
        let verdict = if any_reject {
            ScriptVerdict::Reject
        } else if any_undecided {
            ScriptVerdict::Undecided
        } else {
            ScriptVerdict::Accept
        };
        Some(ScriptAnalysis {
            sites: out,
            verdict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{AbstractSchema, SchemaBuilder, SimpleType};
    use schemacast_tree::DeltaDoc;

    fn po_schema(ab: &mut Alphabet, bill_optional: bool) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let po = b.declare("PO").unwrap();
        let model = if bill_optional {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", text), ("billTo", text), ("items", text)],
        )
        .unwrap();
        b.root("po", po);
        b.finish().unwrap()
    }

    fn po_doc(ab: &mut Alphabet, with_bill: bool) -> Doc {
        let po = ab.intern("po");
        let ship = ab.intern("shipTo");
        let bill = ab.intern("billTo");
        let items = ab.intern("items");
        let mut doc = Doc::new(po);
        doc.add_element(doc.root(), ship);
        if with_bill {
            doc.add_element(doc.root(), bill);
        }
        doc.add_element(doc.root(), items);
        doc
    }

    /// Apply-then-revalidate oracle.
    fn oracle(target: &AbstractSchema, doc: &Doc, edits: &[Edit]) -> bool {
        let mut dd = DeltaDoc::new(doc.clone());
        dd.apply_all(edits).expect("oracle apply");
        target.accepts_document(&dd.committed())
    }

    #[test]
    fn concrete_word_decides_what_per_edit_cannot() {
        // billTo optional → required. Per-edit verdict for inserting
        // billTo is Dynamic; the script analyzer sees the concrete word.
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let doc = po_doc(&mut ab, false);
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let bill = ab.lookup("billTo").unwrap();

        let good = vec![Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: bill,
        }];
        assert!(ctx.validate_edited_static(&doc, &good).is_none());
        let an = ctx.script_analysis(&doc, &good).expect("grouped");
        assert_eq!(an.verdict, ScriptVerdict::Accept);
        assert!(oracle(&target, &doc, &good));

        let bad = vec![Edit::InsertElement {
            parent: doc.root(),
            position: 0,
            label: bill,
        }];
        let an = ctx.script_analysis(&doc, &bad).expect("grouped");
        assert_eq!(an.verdict, ScriptVerdict::Reject);
        assert!(matches!(
            an.sites[0].decision,
            SiteDecision::Reject(RejectReason::Membership)
        ));
        assert!(!oracle(&target, &doc, &bad));
    }

    #[test]
    fn insert_then_delete_normalizes_to_identity() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false); // would reject most edits
        let doc = po_doc(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let ghost = ab.intern("ghost");
        // Insert a bogus element then delete it: net identity, and the
        // analyzer must see through it (the per-edit path cannot even
        // group two edits on one site).
        let inserted = NodeId(doc.node_count() as u32);
        let edits = vec![
            Edit::InsertElement {
                parent: doc.root(),
                position: 1,
                label: ghost,
            },
            Edit::DeleteLeaf { node: inserted },
        ];
        assert!(ctx.validate_edited_static(&doc, &edits).is_none());
        let an = ctx.script_analysis(&doc, &edits).expect("grouped");
        assert_eq!(an.verdict, ScriptVerdict::Accept);
        assert_eq!(an.sites[0].decision, SiteDecision::Identity);
        assert!(an.normalized());
        assert!(an.exempt_sites().is_empty());
        assert!(oracle(&target, &doc, &edits));
    }

    #[test]
    fn overwritten_relabels_judge_only_the_last() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, true);
        let doc = po_doc(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let ghost = ab.intern("ghost");
        let bill = ab.lookup("billTo").unwrap();
        let bill_node = doc.children(doc.root())[1];
        // billTo → ghost → billTo: a rename and its rename-back cancel.
        let edits = vec![
            Edit::Relabel {
                node: bill_node,
                label: ghost,
            },
            Edit::Relabel {
                node: bill_node,
                label: bill,
            },
        ];
        let an = ctx.script_analysis(&doc, &edits).expect("grouped");
        assert_eq!(an.verdict, ScriptVerdict::Accept);
        assert_eq!(an.sites[0].decision, SiteDecision::Identity);
        assert!(an.normalized());
        assert!(oracle(&target, &doc, &edits));
    }

    #[test]
    fn unsupported_scripts_bail() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, true);
        let doc = po_doc(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let x = ab.intern("x");
        // Text edit.
        assert!(ctx
            .script_analysis(
                &doc,
                &[Edit::InsertText {
                    parent: doc.root(),
                    position: 0,
                    text: "t".into()
                }]
            )
            .is_none());
        // Root relabel.
        assert!(ctx
            .script_analysis(
                &doc,
                &[Edit::Relabel {
                    node: doc.root(),
                    label: x
                }]
            )
            .is_none());
        // Insert under an inserted node.
        let inserted = NodeId(doc.node_count() as u32);
        assert!(ctx
            .script_analysis(
                &doc,
                &[
                    Edit::InsertElement {
                        parent: doc.root(),
                        position: 0,
                        label: x
                    },
                    Edit::InsertElement {
                        parent: inserted,
                        position: 0,
                        label: x
                    }
                ]
            )
            .is_none());
        // Nested sites (root and a child of root).
        let ship_node = doc.children(doc.root())[0];
        assert!(ctx
            .script_analysis(
                &doc,
                &[
                    Edit::InsertElement {
                        parent: doc.root(),
                        position: 0,
                        label: x
                    },
                    Edit::InsertElement {
                        parent: ship_node,
                        position: 0,
                        label: x
                    }
                ]
            )
            .is_none());
    }

    #[test]
    fn empty_script_is_accept_with_no_sites() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, true);
        let doc = po_doc(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let an = ctx.script_analysis(&doc, &[]).expect("grouped");
        assert_eq!(an.verdict, ScriptVerdict::Accept);
        assert!(an.sites.is_empty());
        assert!(!an.normalized());
    }
}
