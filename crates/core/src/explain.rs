//! Diagnostic validation: *why* is a document not valid for the target?
//!
//! [`CastContext::validate`] answers yes/no as fast as possible; tooling
//! (the CLI, editors, brokers that log rejects) wants the failing path and
//! reason. [`explain`] re-runs the cast algorithm without early-exit
//! shortcuts on the failing branch and reports the first failure in
//! document order.

use crate::cast::CastContext;
use crate::diag::{pop_segment, push_segment, root_path, Diagnostic, Severity};
use crate::stats::ValidationStats;
use schemacast_regex::{Alphabet, Sym};
use schemacast_schema::{TypeDef, TypeId};
use schemacast_tree::{Doc, NodeId};
use std::fmt;

/// A validation failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationFailure {
    /// Slash path (with sibling indices) to the offending element.
    pub path: String,
    /// What went wrong.
    pub kind: FailureKind,
}

/// The reason a subtree fails target validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The root label has no target root type.
    RootNotAllowed {
        /// The root label.
        label: String,
    },
    /// The children labels do not match the content model.
    ContentModel {
        /// Target type name.
        type_name: String,
        /// The children labels found.
        found: Vec<String>,
    },
    /// The source/target types are disjoint: no tree valid for the source
    /// type can satisfy the target type.
    DisjointTypes {
        /// Source type name.
        source_type: String,
        /// Target type name.
        target_type: String,
    },
    /// A simple value violates the target simple type.
    InvalidValue {
        /// Target type name.
        type_name: String,
        /// The offending value.
        value: String,
    },
    /// Character data inside element-only content.
    TextInElementContent,
    /// Simple content with more than one child / an element child.
    NotSimpleContent,
}

impl ValidationFailure {
    /// Stable rule id in the `SC03xx` (document validation) namespace.
    pub fn rule_id(&self) -> &'static str {
        match self.kind {
            FailureKind::RootNotAllowed { .. } => "SC0301",
            FailureKind::ContentModel { .. } => "SC0302",
            FailureKind::DisjointTypes { .. } => "SC0303",
            FailureKind::InvalidValue { .. } => "SC0304",
            FailureKind::TextInElementContent => "SC0305",
            FailureKind::NotSimpleContent => "SC0306",
        }
    }

    /// Converts the failure into the shared [`Diagnostic`] model used by the
    /// lint subsystem, preserving the path and naming the target type.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let d = Diagnostic::new(self.rule_id(), Severity::Error, self.to_string())
            .with_path(self.path.clone());
        match &self.kind {
            FailureKind::ContentModel { type_name, .. }
            | FailureKind::InvalidValue { type_name, .. } => d.with_type_name(type_name.clone()),
            FailureKind::DisjointTypes { target_type, .. } => d.with_type_name(target_type.clone()),
            _ => d,
        }
    }
}

impl fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::RootNotAllowed { label } => {
                write!(
                    f,
                    "{}: root element <{label}> is not declared in the target schema",
                    self.path
                )
            }
            FailureKind::ContentModel { type_name, found } => write!(
                f,
                "{}: children ({}) do not match the content model of {type_name}",
                self.path,
                found.join(", ")
            ),
            FailureKind::DisjointTypes {
                source_type,
                target_type,
            } => write!(
                f,
                "{}: source type {source_type} and target type {target_type} are disjoint",
                self.path
            ),
            FailureKind::InvalidValue { type_name, value } => write!(
                f,
                "{}: value {value:?} is not valid for {type_name}",
                self.path
            ),
            FailureKind::TextInElementContent => {
                write!(f, "{}: character data in element-only content", self.path)
            }
            FailureKind::NotSimpleContent => {
                write!(f, "{}: expected simple (text-only) content", self.path)
            }
        }
    }
}

/// Explains the first failure of `doc` against the context's target schema,
/// or returns `Ok(())` if the document is valid.
///
/// Uses the same subsumption skips as the fast validator, so explaining a
/// *valid* document is as cheap as validating it.
pub fn explain(
    ctx: &CastContext<'_>,
    doc: &Doc,
    alphabet: &Alphabet,
) -> Result<(), ValidationFailure> {
    let root = doc.root();
    let Some(label) = doc.label(root) else {
        return Err(ValidationFailure {
            path: "/".into(),
            kind: FailureKind::RootNotAllowed {
                label: "#text".into(),
            },
        });
    };
    let Some(tgt) = ctx.target().root_type(label) else {
        return Err(ValidationFailure {
            path: root_path(alphabet.name(label)),
            kind: FailureKind::RootNotAllowed {
                label: alphabet.name(label).to_owned(),
            },
        });
    };
    let src = ctx.source().root_type(label);
    let mut path = root_path(alphabet.name(label));
    explain_node(ctx, doc, root, src, tgt, alphabet, &mut path)
}

fn explain_node(
    ctx: &CastContext<'_>,
    doc: &Doc,
    node: NodeId,
    src: Option<TypeId>,
    tgt: TypeId,
    alphabet: &Alphabet,
    path: &mut String,
) -> Result<(), ValidationFailure> {
    if let Some(s) = src {
        if ctx.relations().subsumed(s, tgt) {
            return Ok(());
        }
        if ctx.relations().disjoint(s, tgt) {
            // Disjointness proves failure, but descend for a more precise
            // reason when cheap; report the type-level fact as the cause.
            return Err(ValidationFailure {
                path: path.clone(),
                kind: FailureKind::DisjointTypes {
                    source_type: ctx.source().type_name(s).to_owned(),
                    target_type: ctx.target().type_name(tgt).to_owned(),
                },
            });
        }
    }
    match ctx.target().type_def(tgt) {
        TypeDef::Simple(simple) => {
            let children: Vec<NodeId> = doc.validation_children(node).collect();
            let value = match children.as_slice() {
                [] => String::new(),
                [only] => match doc.text(*only) {
                    Some(t) => t.to_owned(),
                    None => {
                        return Err(ValidationFailure {
                            path: path.clone(),
                            kind: FailureKind::NotSimpleContent,
                        })
                    }
                },
                _ => {
                    return Err(ValidationFailure {
                        path: path.clone(),
                        kind: FailureKind::NotSimpleContent,
                    })
                }
            };
            if simple.validate(&value) {
                Ok(())
            } else {
                Err(ValidationFailure {
                    path: path.clone(),
                    kind: FailureKind::InvalidValue {
                        type_name: ctx.target().type_name(tgt).to_owned(),
                        value,
                    },
                })
            }
        }
        TypeDef::Complex(c_tgt) => {
            let mut labels: Vec<Sym> = Vec::new();
            for child in doc.validation_children(node) {
                match doc.label(child) {
                    Some(l) => labels.push(l),
                    None => {
                        return Err(ValidationFailure {
                            path: path.clone(),
                            kind: FailureKind::TextInElementContent,
                        })
                    }
                }
            }
            if !c_tgt.dfa.accepts(&labels) {
                return Err(ValidationFailure {
                    path: path.clone(),
                    kind: FailureKind::ContentModel {
                        type_name: ctx.target().type_name(tgt).to_owned(),
                        found: labels
                            .iter()
                            .map(|&l| alphabet.name(l).to_owned())
                            .collect(),
                    },
                });
            }
            let src_complex = src.and_then(|s| ctx.source().type_def(s).as_complex());
            let children: Vec<NodeId> = doc.validation_children(node).collect();
            for (i, (child, &label)) in children.iter().zip(labels.iter()).enumerate() {
                let Some(child_tgt) = c_tgt.child_type(label) else {
                    return Err(ValidationFailure {
                        path: path.clone(),
                        kind: FailureKind::ContentModel {
                            type_name: ctx.target().type_name(tgt).to_owned(),
                            found: labels
                                .iter()
                                .map(|&l| alphabet.name(l).to_owned())
                                .collect(),
                        },
                    });
                };
                let child_src = src_complex.and_then(|c| c.child_type(label));
                let len = push_segment(path, alphabet.name(label), i);
                explain_node(ctx, doc, *child, child_src, child_tgt, alphabet, path)?;
                pop_segment(path, len);
            }
            Ok(())
        }
    }
}

/// Convenience: validate and, on failure, explain — one call for tooling.
pub fn validate_explained(
    ctx: &CastContext<'_>,
    doc: &Doc,
    alphabet: &Alphabet,
) -> Result<ValidationStats, ValidationFailure> {
    let (out, stats) = ctx.validate_with_stats(doc);
    if out.is_valid() {
        Ok(stats)
    } else {
        explain(ctx, doc, alphabet).map(|()| stats).and_then(|_| {
            // The fast path said invalid but the explainer found nothing:
            // can only happen if the fast path used a disjointness prune
            // on a branch the explainer skipped via subsumption — not
            // possible, since both use the same relations. Treat as a
            // generic failure at the root for robustness.
            Err(ValidationFailure {
                path: "/".into(),
                kind: FailureKind::NotSimpleContent,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cast::CastContext;
    use schemacast_schema::{AtomicKind, BoundValue, Decimal, SchemaBuilder, SimpleType};

    fn schemas() -> (
        schemacast_schema::AbstractSchema,
        schemacast_schema::AbstractSchema,
        Alphabet,
    ) {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, optional: bool, max: i64| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let mut qt = SimpleType::of(AtomicKind::PositiveInteger);
            qt.facets.max_exclusive = Some(BoundValue::Num(Decimal::from_i64(max)));
            let qty = b.simple("Qty", qt).unwrap();
            let item = b.declare("Item").unwrap();
            b.complex(item, "(sku, qty)", &[("sku", text), ("qty", qty)])
                .unwrap();
            let po = b.declare("PO").unwrap();
            let model = if optional {
                "(item*, note?)"
            } else {
                "(item+, note?)"
            };
            b.complex(po, model, &[("item", item), ("note", text)])
                .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true, 200);
        let target = mk(&mut ab, false, 100);
        (source, target, ab)
    }

    fn build(ab: &mut Alphabet, qtys: &[&str]) -> Doc {
        let po = ab.intern("po");
        let item = ab.intern("item");
        let sku = ab.intern("sku");
        let qty = ab.intern("qty");
        let mut d = Doc::new(po);
        for q in qtys {
            let i = d.add_element(d.root(), item);
            let s = d.add_element(i, sku);
            d.add_text(s, "S");
            let e = d.add_element(i, qty);
            d.add_text(e, *q);
        }
        d
    }

    #[test]
    fn explains_content_model_violation() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let doc = build(&mut ab, &[]); // item+ requires at least one
        let err = explain(&ctx, &doc, &ab).unwrap_err();
        assert_eq!(err.path, "/po");
        assert!(matches!(err.kind, FailureKind::ContentModel { .. }));
        assert!(err.to_string().contains("content model"));
    }

    #[test]
    fn explains_value_violation_with_path() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let doc = build(&mut ab, &["50", "150", "20"]);
        let err = explain(&ctx, &doc, &ab).unwrap_err();
        assert_eq!(err.path, "/po/item[1]/qty[1]");
        assert!(matches!(&err.kind, FailureKind::InvalidValue { value, .. } if value == "150"));
    }

    #[test]
    fn explains_unknown_root() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let other = ab.intern("unknown");
        let doc = Doc::new(other);
        let err = explain(&ctx, &doc, &ab).unwrap_err();
        assert!(matches!(err.kind, FailureKind::RootNotAllowed { .. }));
    }

    #[test]
    fn valid_documents_explain_ok() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let doc = build(&mut ab, &["1", "99"]);
        assert!(explain(&ctx, &doc, &ab).is_ok());
        assert!(validate_explained(&ctx, &doc, &ab).is_ok());
    }

    #[test]
    fn failures_convert_to_shared_diagnostics() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let doc = build(&mut ab, &["150"]);
        let err = explain(&ctx, &doc, &ab).unwrap_err();
        let d = err.to_diagnostic();
        assert_eq!(d.rule_id, "SC0304");
        assert_eq!(d.severity, crate::diag::Severity::Error);
        assert_eq!(d.path.as_deref(), Some("/po/item[0]/qty[1]"));
        assert_eq!(d.type_name.as_deref(), Some("Qty"));
    }

    #[test]
    fn explanation_agrees_with_fast_verdict() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        for qtys in [
            &["1"][..],
            &["199"][..],
            &[][..],
            &["1", "2", "3"][..],
            &["99", "100"][..],
        ] {
            let doc = build(&mut ab, qtys);
            let fast = ctx.validate(&doc).is_valid();
            let explained = explain(&ctx, &doc, &ab).is_ok();
            assert_eq!(fast, explained, "qtys {qtys:?}");
        }
    }
}
