//! Static update-safety analysis: classify edits as Safe / Unsafe / Dynamic
//! against a schema pair *before* touching any document.
//!
//! The word-level machinery lives in [`schemacast_automata::safety`]: for a
//! `(source, target)` content-model pair, the product IDA's `IA`/`IR` sets
//! decide whether inserting, deleting, or relabelling one symbol always,
//! never, or sometimes preserves membership in the target language. This
//! module lifts those word verdicts to *tree* verdicts over type pairs:
//!
//! * **Insert ℓ** is `Safe` when the word verdict is safe, the target child
//!   type of ℓ accepts a childless leaf (a simple type validating `""`, or
//!   a nullable content model — a freshly inserted element has no
//!   children), and every sibling subtree stays valid
//!   ([`PairSafety::child_sub_stable`]); it is `Unsafe` when the word
//!   verdict is unsafe or the inserted leaf can never be valid.
//! * **Delete ℓ** is `Safe` when the word verdict is safe and siblings are
//!   stable; `Unsafe` when no word survives the deletion.
//! * **Relabel ℓ→m** additionally consults `R_sub`/`R_dis` on the child
//!   type pair `(types_τ(ℓ), types_τ'(m))`: subsumption is required for
//!   `Safe`, disjointness forces `Unsafe` (the kept subtree is source-valid
//!   for ℓ's type, so a disjoint target type can never accept it).
//!
//! `Safe`/`Unsafe` verdicts are *universally* quantified — over every
//! source-valid document and every position the edit shape can apply to —
//! which is what makes the engine's fast path sound: an `Unsafe` edit
//! rejects the document without looking at it, and an all-`Safe` script
//! reduces revalidation to a walk that skips every edited subtree
//! ([`CastContext::validate_with_exemptions`]). Everything else falls back
//! to the dynamic Δ-revalidation path (`Dynamic` is genuinely
//! data-dependent; `Inapplicable` shapes let the runtime surface the edit
//! error).
//!
//! Analyses are interned per type pair in a sharded publish-once cache (the
//! same discipline as the product-IDA cache), so batch workers share them
//! contention-free.

use crate::cast::CastContext;
use crate::stats::{CastOutcome, ValidationStats};
use loomlite::sync::Arc;
use schemacast_automata::safety::EditWordAnalysis;
use schemacast_regex::Sym;
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};
use schemacast_tree::shapes::{extract_shapes, EditShape, EditShapeKind};
use schemacast_tree::{Doc, Edit, NodeId};
use std::collections::{HashMap, HashSet};

pub use schemacast_automata::safety::SafetyVerdict as Verdict;

/// Subtrees the exemption-aware cast walk skips or refuses to prune
/// (see [`CastContext::cast_validate_exempt`]).
pub(crate) struct Exemptions {
    /// Edited sites: their subtrees are counted valid without inspection.
    pub(crate) skip: HashSet<NodeId>,
    /// Strict ancestors of edited sites: subsumption/disjointness pruning
    /// is disabled because their subtrees are not source-valid post-edit.
    pub(crate) unpruned: HashSet<NodeId>,
}

/// A symbol no schema ever interns: steps every DFA into its sink, standing
/// in for "any label outside both content models".
const FOREIGN: Sym = Sym(u32::MAX);

/// The static edit-safety analysis of one `(source, target)` complex type
/// pair: a verdict per (edit kind, label) over the labels either content
/// model mentions, plus the sibling-stability flag the tree-level verdicts
/// are conditioned on.
#[derive(Debug)]
pub struct PairSafety {
    /// Union of both content models' labels, sorted for deterministic
    /// rendering.
    labels: Vec<Sym>,
    insert: HashMap<Sym, Verdict>,
    delete: HashMap<Sym, Verdict>,
    relabel: HashMap<(Sym, Sym), Verdict>,
    /// Verdict for inserting a label foreign to both models.
    insert_foreign: Verdict,
    /// Per-`from` verdict for relabelling to a foreign label.
    relabel_foreign: HashMap<Sym, Verdict>,
    /// Whether every label that can occur in a source word maps to a
    /// subsumed child type pair — the condition under which untouched
    /// sibling subtrees are guaranteed to stay target-valid.
    child_sub_stable: bool,
}

impl PairSafety {
    /// The labels the analysis covers (union of both content models),
    /// sorted by symbol index.
    pub fn labels(&self) -> &[Sym] {
        &self.labels
    }

    /// Whether untouched child subtrees are guaranteed target-valid: every
    /// label occurring in some source word has child types related by
    /// `R_sub`.
    pub fn child_sub_stable(&self) -> bool {
        self.child_sub_stable
    }

    /// The tree-level verdict for an edit shape under this type pair.
    /// Labels outside both content models resolve to the precomputed
    /// foreign verdicts.
    pub fn verdict(&self, kind: EditShapeKind) -> Verdict {
        match kind {
            EditShapeKind::Insert(l) => self.insert.get(&l).copied().unwrap_or(self.insert_foreign),
            EditShapeKind::Delete(l) => self
                .delete
                .get(&l)
                .copied()
                .unwrap_or(Verdict::Inapplicable),
            EditShapeKind::Relabel { from, to } => {
                self.relabel.get(&(from, to)).copied().unwrap_or_else(|| {
                    self.relabel_foreign
                        .get(&from)
                        .copied()
                        .unwrap_or(Verdict::Inapplicable)
                })
            }
        }
    }

    /// Counts of (safe, unsafe, dynamic, inapplicable) verdicts across all
    /// stored entries (insert + delete + relabel).
    pub fn verdict_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for v in self
            .insert
            .values()
            .chain(self.delete.values())
            .chain(self.relabel.values())
        {
            let i = match v {
                Verdict::Safe => 0,
                Verdict::Unsafe => 1,
                Verdict::Dynamic => 2,
                Verdict::Inapplicable => 3,
            };
            counts[i] += 1;
        }
        counts
    }
}

/// Whether a childless element is valid for `t` in `schema`: a simple type
/// accepting the empty string, or a complex type with a nullable model.
pub(crate) fn accepts_childless(schema: &AbstractSchema, t: TypeId) -> bool {
    match schema.type_def(t) {
        TypeDef::Simple(s) => s.validate(""),
        TypeDef::Complex(c) => c.regex.nullable(),
    }
}

/// One interned safety matrix row: a type pair and its analysis.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// The source type.
    pub source: TypeId,
    /// The target type.
    pub target: TypeId,
    /// The pair's edit-safety analysis.
    pub safety: Arc<PairSafety>,
}

/// The full safety matrix of a schema pair: one row per analyzable
/// (reachable complex × complex) type pair, in deterministic order.
#[derive(Debug, Clone, Default)]
pub struct SafetyMatrix {
    entries: Vec<MatrixEntry>,
}

impl SafetyMatrix {
    /// The rows, sorted by (source, target) type index.
    pub fn entries(&self) -> &[MatrixEntry] {
        &self.entries
    }

    /// Number of analyzed pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair was analyzable.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> CastContext<'a> {
    /// Complex type pairs the static analyzer covers: starting from
    /// `(ℛ(σ), ℛ'(σ))` for every label rooted in both schemas, follow
    /// matching child labels of complex pairs — **without** the
    /// subsumption/disjointness pruning of
    /// [`CastContext::reachable_pairs`], because an edit can occur inside a
    /// subtree the validator would prune (the analyzer must still classify
    /// it). Sorted by type index.
    pub fn analyzable_pairs(&self) -> Vec<(TypeId, TypeId)> {
        let mut seen: HashSet<(TypeId, TypeId)> = HashSet::new();
        let mut stack: Vec<(TypeId, TypeId)> = Vec::new();
        let mut out: Vec<(TypeId, TypeId)> = Vec::new();
        for (label, s) in self.source().roots() {
            if let Some(t) = self.target().root_type(label) {
                if seen.insert((s, t)) {
                    stack.push((s, t));
                }
            }
        }
        while let Some((s, t)) = stack.pop() {
            let (Some(cs), Some(ct)) = (
                self.source().type_def(s).as_complex(),
                self.target().type_def(t).as_complex(),
            ) else {
                continue;
            };
            out.push((s, t));
            for (&label, &child_s) in &cs.child_types {
                if let Some(child_t) = ct.child_type(label) {
                    if seen.insert((child_s, child_t)) {
                        stack.push((child_s, child_t));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(s, t)| (s.index(), t.index()));
        out
    }

    /// The interned edit-safety analysis for a complex type pair, or `None`
    /// if either side is simple (simple content has no child word to edit).
    ///
    /// Cached per pair with the same sharded publish-once discipline as the
    /// product IDAs; racing batch workers converge on one `Arc`.
    pub fn pair_safety(&self, s: TypeId, t: TypeId) -> Option<Arc<PairSafety>> {
        if self.source().type_def(s).as_complex().is_none()
            || self.target().type_def(t).as_complex().is_none()
        {
            return None;
        }
        Some(
            self.safety_cache
                .get_or_insert_with((s, t), || self.build_pair_safety(s, t)),
        )
    }

    /// The full safety matrix over [`CastContext::analyzable_pairs`].
    pub fn safety_matrix(&self) -> SafetyMatrix {
        let entries = self
            .analyzable_pairs()
            .into_iter()
            .filter_map(|(s, t)| {
                self.pair_safety(s, t).map(|safety| MatrixEntry {
                    source: s,
                    target: t,
                    safety,
                })
            })
            .collect();
        SafetyMatrix { entries }
    }

    fn build_pair_safety(&self, s: TypeId, t: TypeId) -> PairSafety {
        let cs = self
            .source()
            .type_def(s)
            .as_complex()
            .expect("pair_safety requires complex source");
        let ct = self
            .target()
            .type_def(t)
            .as_complex()
            .expect("pair_safety requires complex target");
        let ida = self.product_ida(s, t);
        let analysis = EditWordAnalysis::new(&cs.dfa, &ct.dfa, &ida);

        // Sibling stability: every label occurring in a source word must
        // map to an R_sub-related child type pair (missing target typing is
        // conservatively unstable).
        let child_sub_stable = cs.dfa.useful_symbols().iter().all(|i| {
            let sym = Sym(i as u32);
            match (cs.child_type(sym), ct.child_type(sym)) {
                (Some(a), Some(b)) => self.relations().subsumed(a, b),
                _ => false,
            }
        });

        let mut labels: Vec<Sym> = cs
            .child_types
            .keys()
            .chain(ct.child_types.keys())
            .copied()
            .collect();
        labels.sort_unstable();
        labels.dedup();

        let insert_tree = |label: Sym| -> Verdict {
            match analysis.insert(label) {
                Verdict::Inapplicable => Verdict::Inapplicable,
                Verdict::Unsafe => Verdict::Unsafe,
                word => match ct.child_type(label) {
                    // A fresh element leaf must itself be target-valid.
                    Some(child_t) if !accepts_childless(self.target(), child_t) => Verdict::Unsafe,
                    Some(_) if word == Verdict::Safe && child_sub_stable => Verdict::Safe,
                    // `None` is unreachable in practice: a label outside the
                    // target model makes the word verdict Unsafe already.
                    _ => Verdict::Dynamic,
                },
            }
        };
        let delete_tree = |label: Sym| -> Verdict {
            match analysis.delete(label) {
                Verdict::Safe if child_sub_stable => Verdict::Safe,
                Verdict::Safe => Verdict::Dynamic,
                word => word,
            }
        };
        let relabel_tree = |from: Sym, to: Sym| -> Verdict {
            match analysis.relabel(from, to) {
                Verdict::Inapplicable => Verdict::Inapplicable,
                Verdict::Unsafe => Verdict::Unsafe,
                word => match (cs.child_type(from), ct.child_type(to)) {
                    // The kept subtree is source-valid for `from`'s type; a
                    // disjoint target type can never accept it.
                    (Some(a), Some(b)) if self.relations().disjoint(a, b) => Verdict::Unsafe,
                    (Some(a), Some(b))
                        if word == Verdict::Safe
                            && child_sub_stable
                            && self.relations().subsumed(a, b) =>
                    {
                        Verdict::Safe
                    }
                    _ => Verdict::Dynamic,
                },
            }
        };

        let insert = labels.iter().map(|&l| (l, insert_tree(l))).collect();
        let delete = labels.iter().map(|&l| (l, delete_tree(l))).collect();
        let mut relabel = HashMap::with_capacity(labels.len() * labels.len());
        for &from in &labels {
            for &to in &labels {
                relabel.insert((from, to), relabel_tree(from, to));
            }
        }
        let insert_foreign = match analysis.insert(FOREIGN) {
            // No target typing exists for a foreign label; the word verdict
            // is decisive (Unsafe unless the pair admits no word at all).
            Verdict::Inapplicable => Verdict::Inapplicable,
            _ => Verdict::Unsafe,
        };
        let relabel_foreign = labels
            .iter()
            .map(|&from| (from, analysis.relabel(from, FOREIGN)))
            .collect();

        PairSafety {
            labels,
            insert,
            delete,
            relabel,
            insert_foreign,
            relabel_foreign,
            child_sub_stable,
        }
    }

    /// Packages the certificate trace of one safety-matrix row: the static
    /// facts its Safe/Unsafe verdicts consumed, resolved against the
    /// already-assigned certificate indices. Returns `Err` when a consumed
    /// fact has no certificate to point at — an emission failure the caller
    /// reports as `SC0401` (the verdicts themselves are then uncertified
    /// and `--certify` fails closed).
    pub(crate) fn safety_certificate(
        &self,
        entry: &MatrixEntry,
        ida_ref: u32,
        sub_idx: &HashMap<(TypeId, TypeId), u32>,
        dis_idx: &HashMap<(TypeId, TypeId), u32>,
    ) -> Result<schemacast_certify::SafetyCert, String> {
        use schemacast_certify::{RelabelLink, SafetyCert, SubObligation};
        let (s, t) = (entry.source, entry.target);
        let cs = self
            .source()
            .type_def(s)
            .as_complex()
            .ok_or("safety entry with simple source")?;
        let ct = self
            .target()
            .type_def(t)
            .as_complex()
            .ok_or("safety entry with simple target")?;

        // The stability claim: one R_sub obligation per useful source label.
        let stable = if entry.safety.child_sub_stable() {
            let mut obligations = Vec::new();
            for i in cs.dfa.useful_symbols().iter() {
                let sym = Sym(i as u32);
                let (Some(a), Some(b)) = (cs.child_type(sym), ct.child_type(sym)) else {
                    return Err(format!("stable label {i} lacks child typing"));
                };
                let child_ref = *sub_idx.get(&(a, b)).ok_or_else(|| {
                    format!("stable label {i}: child pair has no sub certificate")
                })?;
                obligations.push(SubObligation {
                    symbol: i as u32,
                    child_source: a.index() as u32,
                    child_target: b.index() as u32,
                    child_ref,
                });
            }
            Some(obligations)
        } else {
            None
        };

        // Every R_sub / R_dis fact a relabel verdict consulted.
        let mut sub_links = Vec::new();
        let mut dis_links = Vec::new();
        for &from in entry.safety.labels() {
            for &to in entry.safety.labels() {
                let (Some(a), Some(b)) = (cs.child_type(from), ct.child_type(to)) else {
                    continue;
                };
                let link = |cert_ref: u32| RelabelLink {
                    from: from.0,
                    to: to.0,
                    child_source: a.index() as u32,
                    child_target: b.index() as u32,
                    cert_ref,
                };
                if self.relations().subsumed(a, b) {
                    let r = *sub_idx
                        .get(&(a, b))
                        .ok_or("relabel pair lacks a sub certificate for its child types")?;
                    sub_links.push(link(r));
                }
                if self.relations().disjoint(a, b) {
                    let r = *dis_idx
                        .get(&(a, b))
                        .ok_or("relabel pair lacks a dis certificate for its child types")?;
                    dis_links.push(link(r));
                }
            }
        }
        Ok(SafetyCert {
            source_type: s.index() as u32,
            target_type: t.index() as u32,
            ida_ref,
            stable,
            sub_links,
            dis_links,
        })
    }

    /// The (source, target) typing of `site` obtained by walking its root
    /// path through both schemas' `ℛ` and `types_τ` maps — the pair the
    /// validator would check the site against. `None` when the path does
    /// not resolve in either schema (no static verdict applies; the dynamic
    /// path decides).
    pub fn site_type_pair(&self, doc: &Doc, site: NodeId) -> Option<(TypeId, TypeId)> {
        let mut path: Vec<Sym> = Vec::new();
        let mut cur = site;
        while let Some(parent) = doc.parent(cur) {
            path.push(doc.label(cur)?);
            cur = parent;
        }
        let root_label = doc.label(cur)?;
        let mut s = self.source().root_type(root_label)?;
        let mut t = self.target().root_type(root_label)?;
        for &label in path.iter().rev() {
            s = self.source().type_def(s).as_complex()?.child_type(label)?;
            t = self.target().type_def(t).as_complex()?.child_type(label)?;
        }
        Some((s, t))
    }

    /// The static verdict for one edit against `doc`, or `None` when the
    /// edit's shape is unsupported or its site's typing does not resolve.
    pub fn edit_verdict(&self, doc: &Doc, edit: &Edit) -> Option<Verdict> {
        let shapes = extract_shapes(doc, std::slice::from_ref(edit))?;
        let shape = shapes.first()?;
        let (s, t) = self.site_type_pair(doc, shape.site)?;
        Some(self.pair_safety(s, t)?.verdict(shape.kind))
    }

    /// Tries to decide an edited document statically, without applying the
    /// script: returns the outcome (plus stats crediting `static_rejects`
    /// or `static_skips`) when every edit is statically decided, `None`
    /// when any edit needs the dynamic Δ-revalidation path.
    ///
    /// Precondition: `doc` (pre-edit) is valid for the source schema — the
    /// same precondition as [`CastContext::validate`].
    ///
    /// * Any `Unsafe` edit ⇒ `Invalid` instantly: its site subtree can
    ///   never be target-valid, and no other (distinct, non-nested) site's
    ///   edit can repair it.
    /// * All edits `Safe` ⇒ the exemption walk: a §3.2 cast of the
    ///   *original* document that skips every edited site subtree (the
    ///   verdicts prove them target-valid post-edit) and disables
    ///   subsumption/disjointness pruning on their ancestor chains (those
    ///   subtrees are no longer source-valid, which both prunings assume).
    pub fn validate_edited_static(
        &self,
        doc: &Doc,
        edits: &[Edit],
    ) -> Option<(CastOutcome, ValidationStats)> {
        let shapes = extract_shapes(doc, edits)?;
        if shapes.is_empty() {
            // Nothing changes: a plain cast of the document is exact.
            return Some(self.validate_with_stats(doc));
        }
        let mut decided: Vec<&EditShape> = Vec::with_capacity(shapes.len());
        for shape in &shapes {
            let (s, t) = self.site_type_pair(doc, shape.site)?;
            match self.pair_safety(s, t)?.verdict(shape.kind) {
                Verdict::Unsafe => {
                    let stats = ValidationStats {
                        static_rejects: 1,
                        ..Default::default()
                    };
                    return Some((CastOutcome::Invalid, stats));
                }
                Verdict::Safe => decided.push(shape),
                Verdict::Dynamic | Verdict::Inapplicable => return None,
            }
        }
        let sites: Vec<NodeId> = decided.iter().map(|s| s.site).collect();
        let (outcome, mut stats) = self.validate_with_exemptions(doc, &sites);
        stats.static_skips += 1;
        Some((outcome, stats))
    }

    /// The exemption walk backing the all-`Safe` fast path: validates `doc`
    /// as in [`CastContext::validate_with_stats`], except that each site in
    /// `exempt_sites` is skipped (counted valid) and pruning is disabled on
    /// every strict ancestor of a site. See
    /// [`CastContext::validate_edited_static`] for the soundness argument.
    pub fn validate_with_exemptions(
        &self,
        doc: &Doc,
        exempt_sites: &[NodeId],
    ) -> (CastOutcome, ValidationStats) {
        let mut skip: HashSet<NodeId> = HashSet::with_capacity(exempt_sites.len());
        let mut unpruned: HashSet<NodeId> = HashSet::new();
        for &site in exempt_sites {
            skip.insert(site);
            let mut cur = site;
            while let Some(parent) = doc.parent(cur) {
                unpruned.insert(parent);
                cur = parent;
            }
        }
        let exemptions = Exemptions { skip, unpruned };

        let mut stats = ValidationStats::default();
        let root = doc.root();
        let Some(label) = doc.label(root) else {
            return (CastOutcome::Invalid, stats);
        };
        let Some(tgt_type) = self.target().root_type(label) else {
            return (CastOutcome::Invalid, stats);
        };
        let Some(src_type) = self.source().root_type(label) else {
            // No source typing: the callers above never get here (site
            // typing resolved through the source), but degrade gracefully.
            return (CastOutcome::Invalid, stats);
        };
        let ok = self.cast_validate_exempt(doc, root, src_type, tgt_type, &mut stats, &exemptions);
        (CastOutcome::from_bool(ok), stats)
    }

    /// Tries to decide an edited document via the *script-level* analyzer
    /// ([`CastContext::script_analysis`]): per-site net effects instead of
    /// per-edit universal verdicts. Returns the outcome (crediting
    /// `script_rejects` or `script_skips`) when the whole script is
    /// decided, `None` when any site stays undecided or the script falls
    /// outside the supported shape.
    ///
    /// Same precondition as [`CastContext::validate_edited_static`]; meant
    /// to run *after* it (the per-edit path is cheaper and its counters
    /// keep their meaning) and *before* dynamic Δ-revalidation.
    ///
    /// * Script `Reject` ⇒ `Invalid`: some site's net child word (or a
    ///   child's typing) can never be target-valid, and no other
    ///   (non-nested) site can repair it.
    /// * Script `Accept` ⇒ the same exemption walk as the per-edit path,
    ///   skipping decided non-identity sites; identity-effect sites are
    ///   untouched and validated normally.
    pub fn validate_edited_script(
        &self,
        doc: &Doc,
        edits: &[Edit],
    ) -> Option<(CastOutcome, ValidationStats)> {
        let analysis = self.script_analysis(doc, edits)?;
        match analysis.verdict {
            crate::script::ScriptVerdict::Reject => {
                let stats = ValidationStats {
                    script_rejects: 1,
                    ..Default::default()
                };
                Some((CastOutcome::Invalid, stats))
            }
            crate::script::ScriptVerdict::Accept => {
                let sites = analysis.exempt_sites();
                let (outcome, mut stats) = self.validate_with_exemptions(doc, &sites);
                stats.script_skips += 1;
                Some((outcome, stats))
            }
            crate::script::ScriptVerdict::Undecided => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{SchemaBuilder, SimpleType};
    use schemacast_tree::DeltaDoc;

    /// A feed-like schema: root "feed" with `(entry | note)*`, where entry
    /// requires a title and note is a simple string.
    fn feed_schema(ab: &mut Alphabet, allow_note: bool) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let entry = b.declare("Entry").unwrap();
        b.complex(entry, "(title)", &[("title", text)]).unwrap();
        let feed = b.declare("Feed").unwrap();
        if allow_note {
            b.complex(feed, "(entry | note)*", &[("entry", entry), ("note", text)])
                .unwrap();
        } else {
            b.complex(feed, "entry*", &[("entry", entry)]).unwrap();
        }
        b.root("feed", feed);
        b.finish().unwrap()
    }

    fn feed_doc(ab: &mut Alphabet, entries: usize, notes: usize) -> Doc {
        let feed = ab.intern("feed");
        let entry = ab.intern("entry");
        let note = ab.intern("note");
        let title = ab.intern("title");
        let mut doc = Doc::new(feed);
        for i in 0..entries.max(notes) {
            if i < entries {
                let e = doc.add_element(doc.root(), entry);
                let t = doc.add_element(e, title);
                doc.add_text(t, "hello");
            }
            if i < notes {
                let n = doc.add_element(doc.root(), note);
                doc.add_text(n, "a note");
            }
        }
        doc
    }

    #[test]
    fn note_edits_under_same_schema_are_safe() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let s = source.type_by_name("Feed").unwrap();
        let t = target.type_by_name("Feed").unwrap();
        let safety = ctx.pair_safety(s, t).expect("complex pair");
        let note = ab.lookup("note").unwrap();
        let entry = ab.lookup("entry").unwrap();
        assert!(safety.child_sub_stable());
        assert_eq!(safety.verdict(EditShapeKind::Insert(note)), Verdict::Safe);
        assert_eq!(safety.verdict(EditShapeKind::Delete(note)), Verdict::Safe);
        // Inserting an *entry* leaf is Unsafe: Entry requires a title child.
        assert_eq!(
            safety.verdict(EditShapeKind::Insert(entry)),
            Verdict::Unsafe
        );
        // Deleting an entry is fine word-wise and tree-wise.
        assert_eq!(safety.verdict(EditShapeKind::Delete(entry)), Verdict::Safe);
    }

    #[test]
    fn note_dropped_from_target_makes_insert_unsafe() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);
        let s = source.type_by_name("Feed").unwrap();
        let t = target.type_by_name("Feed").unwrap();
        let safety = ctx.pair_safety(s, t).expect("complex pair");
        let note = ab.lookup("note").unwrap();
        assert_eq!(safety.verdict(EditShapeKind::Insert(note)), Verdict::Unsafe);
        // Deleting one note is data-dependent: other notes may remain in
        // the word, and the target forbids them all.
        assert_eq!(
            safety.verdict(EditShapeKind::Delete(note)),
            Verdict::Dynamic
        );
        assert!(!safety.child_sub_stable());
    }

    #[test]
    fn foreign_labels_resolve_via_fallbacks() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let ghost = ab.intern("ghost");
        let ctx = CastContext::new(&source, &target, &ab);
        let s = source.type_by_name("Feed").unwrap();
        let t = target.type_by_name("Feed").unwrap();
        let safety = ctx.pair_safety(s, t).expect("complex pair");
        let note = ab.lookup("note").unwrap();
        assert_eq!(
            safety.verdict(EditShapeKind::Insert(ghost)),
            Verdict::Unsafe
        );
        assert_eq!(
            safety.verdict(EditShapeKind::Delete(ghost)),
            Verdict::Inapplicable
        );
        assert_eq!(
            safety.verdict(EditShapeKind::Relabel {
                from: note,
                to: ghost
            }),
            Verdict::Unsafe
        );
        assert_eq!(
            safety.verdict(EditShapeKind::Relabel {
                from: ghost,
                to: note
            }),
            Verdict::Inapplicable
        );
    }

    #[test]
    fn pair_safety_is_interned() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        let s = source.type_by_name("Feed").unwrap();
        let t = target.type_by_name("Feed").unwrap();
        let a = ctx.pair_safety(s, t).unwrap();
        let b = ctx.pair_safety(s, t).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Simple pairs are not analyzable.
        let text_s = source.type_by_name("Text").unwrap();
        let text_t = target.type_by_name("Text").unwrap();
        assert!(ctx.pair_safety(text_s, text_t).is_none());
    }

    #[test]
    fn matrix_covers_pruned_pairs_too() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let ctx = CastContext::new(&source, &target, &ab);
        // Identical schemas: the validator prunes everything by subsumption
        // (reachable_pairs is empty), but the analyzer still needs the
        // pairs — edits occur inside pruned subtrees.
        assert!(ctx.reachable_pairs().is_empty());
        let matrix = ctx.safety_matrix();
        assert_eq!(matrix.len(), 2, "Feed and Entry pairs");
        assert!(!matrix.is_empty());
    }

    #[test]
    fn static_decision_accepts_safe_insert_and_matches_oracle() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let doc = feed_doc(&mut ab, 3, 1);
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let note = ab.lookup("note").unwrap();
        let edits = vec![Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: note,
        }];
        let (outcome, stats) = ctx
            .validate_edited_static(&doc, &edits)
            .expect("statically decided");
        assert!(outcome.is_valid());
        assert_eq!(stats.static_skips, 1);
        assert_eq!(stats.static_rejects, 0);
        // Oracle: apply and fully validate.
        let mut dd = DeltaDoc::new(doc.clone());
        dd.apply_all(&edits).unwrap();
        assert!(target.accepts_document(&dd.committed()));
    }

    #[test]
    fn static_decision_rejects_unsafe_insert() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, false);
        let doc = feed_doc(&mut ab, 2, 0);
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let note = ab.lookup("note").unwrap();
        let edits = vec![Edit::InsertElement {
            parent: doc.root(),
            position: 0,
            label: note,
        }];
        let (outcome, stats) = ctx
            .validate_edited_static(&doc, &edits)
            .expect("statically decided");
        assert!(!outcome.is_valid());
        assert_eq!(stats.static_rejects, 1);
        // Oracle agrees.
        let mut dd = DeltaDoc::new(doc.clone());
        dd.apply_all(&edits).unwrap();
        assert!(!target.accepts_document(&dd.committed()));
    }

    #[test]
    fn dynamic_edits_defer_to_runtime() {
        // billTo optional → required: inserting billTo is position-dependent.
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, optional: bool| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let po = b.declare("PO").unwrap();
            let model = if optional {
                "(shipTo, billTo?, items)"
            } else {
                "(shipTo, billTo, items)"
            };
            b.complex(
                po,
                model,
                &[("shipTo", text), ("billTo", text), ("items", text)],
            )
            .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true);
        let target = mk(&mut ab, false);
        let po = ab.lookup("po").unwrap();
        let ship = ab.lookup("shipTo").unwrap();
        let bill = ab.lookup("billTo").unwrap();
        let items = ab.lookup("items").unwrap();
        let mut doc = Doc::new(po);
        for l in [ship, items] {
            let e = doc.add_element(doc.root(), l);
            doc.add_text(e, "v");
        }
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let edit = Edit::InsertElement {
            parent: doc.root(),
            position: 1,
            label: bill,
        };
        assert_eq!(ctx.edit_verdict(&doc, &edit), Some(Verdict::Dynamic));
        assert!(ctx.validate_edited_static(&doc, &[edit]).is_none());
    }

    #[test]
    fn exemption_walk_disables_pruning_on_ancestors_only() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let doc = feed_doc(&mut ab, 2, 1);
        let ctx = CastContext::new(&source, &target, &ab);
        // Exempting a deep site forces the walk past the (subsumed) root
        // pair instead of skipping at it.
        let first_entry = doc.children(doc.root())[0];
        let (out, stats) = ctx.validate_with_exemptions(&doc, &[first_entry]);
        assert!(out.is_valid());
        // The root could not be subsumption-skipped (it is an ancestor of
        // the site) but the sibling entry/note subtrees could.
        assert!(stats.subsumed_skips >= 1);
        assert!(stats.nodes_visited >= 1);
        // With no exemptions the walk degenerates to the plain cast.
        let (out_plain, stats_plain) = ctx.validate_with_exemptions(&doc, &[]);
        let (out_ref, stats_ref) = ctx.validate_with_stats(&doc);
        assert_eq!(out_plain.is_valid(), out_ref.is_valid());
        assert_eq!(stats_plain, stats_ref);
    }

    #[test]
    fn multi_site_scripts_mix_into_one_decision() {
        let mut ab = Alphabet::new();
        let source = feed_schema(&mut ab, true);
        let target = feed_schema(&mut ab, true);
        let doc = feed_doc(&mut ab, 2, 2);
        assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let title = ab.lookup("title").unwrap();
        let note = ab.lookup("note").unwrap();
        // Site 1: insert a note under the root. Site 2: delete a title from
        // an entry (Unsafe: Entry requires its title).
        let entry_node = doc.children(doc.root())[0];
        let title_node = doc.children(entry_node)[0];
        assert_eq!(doc.label(title_node), Some(title));
        let edits = vec![
            Edit::InsertElement {
                parent: doc.root(),
                position: 0,
                label: note,
            },
            Edit::DeleteLeaf { node: title_node },
        ];
        // The title node has a text child, so its shape is unsupported →
        // dynamic. Remove the text first? That nests sites. Either way the
        // static path must decline, not misjudge.
        assert!(ctx.validate_edited_static(&doc, &edits).is_none());
    }
}
