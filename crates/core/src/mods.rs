//! Schema-cast validation *with* modifications (§3.3).
//!
//! Validates a Δ-encoded edited tree `T'` against the target schema,
//! exploiting (a) the `modified(v)` trie to fall back to the plain cast
//! algorithm on untouched subtrees, and (b) the string
//! revalidation-with-modifications machinery of §4.3 for the content models
//! of nodes whose child lists changed: the changed region is scanned with
//! `b_immed` and the unchanged remainder with the product IDA, entering at
//! the state pair obtained from the old and new prefixes (Prop. 2).

use crate::cast::CastContext;
use crate::full::FullValidator;
use crate::idacache::ShardedCache;
use crate::stats::{CastOutcome, ValidationStats};
use loomlite::sync::Arc;
use schemacast_automata::StringCast;
use schemacast_regex::Sym;
use schemacast_schema::{TypeDef, TypeId};
use schemacast_tree::{DeltaDoc, DeltaState, NodeId, ProjLabel, TrieCursor};

/// Validator for edited documents over a preprocessed [`CastContext`].
pub struct ModsValidator<'a, 'b> {
    ctx: &'a CastContext<'b>,
    /// Per type pair: preprocessed string-cast machinery (with reverse
    /// automata) for content-model revalidation after edits, in the same
    /// sharded publish-once cache the product IDAs use.
    string_casts: ShardedCache<StringCast>,
}

impl<'a, 'b> ModsValidator<'a, 'b> {
    /// Wraps a cast context.
    pub fn new(ctx: &'a CastContext<'b>) -> Self {
        ModsValidator {
            ctx,
            string_casts: ShardedCache::new(),
        }
    }

    /// Decides whether the edited document is valid with respect to the
    /// target schema, given that the *original* document was valid with
    /// respect to the source schema.
    pub fn validate(&self, dd: &DeltaDoc) -> CastOutcome {
        self.validate_with_stats(dd).0
    }

    /// Like [`ModsValidator::validate`], with cost counters.
    pub fn validate_with_stats(&self, dd: &DeltaDoc) -> (CastOutcome, ValidationStats) {
        let mut stats = ValidationStats::default();
        let doc = dd.doc();
        let root = doc.root();
        let Some(ProjLabel::Elem(new_label)) = dd.proj_new(root) else {
            return (CastOutcome::Invalid, stats);
        };
        let Some(tgt) = self.ctx.target().root_type(new_label) else {
            return (CastOutcome::Invalid, stats);
        };
        let src = match dd.proj_old(root) {
            Some(ProjLabel::Elem(old_label)) => self.ctx.source().root_type(old_label),
            _ => None,
        };
        let cursor = dd.trie().cursor();
        let ok = self.validate_node(dd, root, src, tgt, cursor, &mut stats);
        (CastOutcome::from_bool(ok), stats)
    }

    /// The §3.3 case analysis for one subtree.
    fn validate_node(
        &self,
        dd: &DeltaDoc,
        node: NodeId,
        src: Option<TypeId>,
        tgt: TypeId,
        cursor: TrieCursor<'_>,
        stats: &mut ValidationStats,
    ) -> bool {
        let doc = dd.doc();
        // Case 3: inserted subtree — no prior knowledge, validate fully.
        if matches!(dd.delta(node), DeltaState::Inserted) {
            stats.full_validations += 1;
            return FullValidator::new(self.ctx.target()).validate_node(doc, node, tgt, stats);
        }
        // Case 1: untouched subtree — plain schema cast (§3.2).
        if !cursor.subtree_modified() {
            match src {
                Some(s) => return self.ctx.cast_validate(doc, node, s, tgt, stats),
                None => {
                    stats.full_validations += 1;
                    return FullValidator::new(self.ctx.target())
                        .validate_node(doc, node, tgt, stats);
                }
            }
        }
        // Case 4: node present in both versions, but its label or content
        // (or something below) changed.
        stats.nodes_visited += 1;
        match self.ctx.target().type_def(tgt) {
            TypeDef::Simple(simple) => {
                stats.value_checks += 1;
                // New-view children, ignoring ignorable whitespace.
                let live: Vec<NodeId> = dd
                    .new_children(node)
                    .filter(|&c| !doc.is_ignorable_ws(c))
                    .collect();
                match live.as_slice() {
                    [] => simple.validate(""),
                    [only] => {
                        stats.nodes_visited += 1;
                        match doc.text(*only) {
                            Some(text) => simple.validate(text),
                            None => false,
                        }
                    }
                    _ => false,
                }
            }
            TypeDef::Complex(c_tgt) => {
                // Proj_new over the live children.
                let mut new_labels: Vec<Sym> = Vec::new();
                for c in dd.new_children(node) {
                    if doc.is_ignorable_ws(c) {
                        continue;
                    }
                    match dd.proj_new(c) {
                        Some(ProjLabel::Elem(l)) => new_labels.push(l),
                        Some(ProjLabel::Chi) => return false, // text in element content
                        None => unreachable!("new_children filters deleted nodes"),
                    }
                }
                let src_complex = src.and_then(|s| self.ctx.source().type_def(s).as_complex());
                // Content-model check, with §4.3 machinery when the source
                // content model is available and the old children are all
                // elements.
                let content_ok = if self.ctx.options().use_ida {
                    if let (Some(_), Some(s)) = (src_complex, src) {
                        let mut old_labels: Vec<Sym> = Vec::with_capacity(new_labels.len());
                        let mut old_ok = true;
                        for c in dd.old_children(node) {
                            if doc.is_ignorable_ws(c) {
                                continue;
                            }
                            match dd.proj_old(c) {
                                Some(ProjLabel::Elem(l)) => old_labels.push(l),
                                _ => {
                                    old_ok = false;
                                    break;
                                }
                            }
                        }
                        if old_ok {
                            let sc = self.string_cast(s, tgt);
                            let d = sc.revalidate_with_mods(&old_labels, &new_labels);
                            stats.content_symbols_scanned += d.symbols_scanned;
                            d.accepted
                        } else {
                            stats.content_symbols_scanned += new_labels.len();
                            c_tgt.dfa.accepts(&new_labels)
                        }
                    } else {
                        stats.content_symbols_scanned += new_labels.len();
                        c_tgt.dfa.accepts(&new_labels)
                    }
                } else {
                    stats.content_symbols_scanned += new_labels.len();
                    c_tgt.dfa.accepts(&new_labels)
                };
                if !content_ok {
                    return false;
                }
                // Recurse into live children, navigating the trie by the
                // child's index in the *full* child list (Dewey coordinates).
                let mut label_idx = 0;
                for (full_idx, &c) in doc.children(node).iter().enumerate() {
                    if matches!(dd.delta(c), DeltaState::Deleted) || doc.is_ignorable_ws(c) {
                        continue;
                    }
                    // Text children were rejected above for complex content.
                    let label = new_labels[label_idx];
                    label_idx += 1;
                    let Some(child_tgt) = c_tgt.child_type(label) else {
                        return false;
                    };
                    let child_src = match dd.proj_old(c) {
                        Some(ProjLabel::Elem(old_label)) => {
                            src_complex.and_then(|sc| sc.child_type(old_label))
                        }
                        _ => None,
                    };
                    let child_cursor = cursor.child(full_idx as u32);
                    if !self.validate_node(dd, c, child_src, child_tgt, child_cursor, stats) {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn string_cast(&self, src: TypeId, tgt: TypeId) -> Arc<StringCast> {
        self.string_casts.get_or_insert_with((src, tgt), || {
            let a = self
                .ctx
                .source()
                .type_def(src)
                .as_complex()
                .expect("string cast requires complex source")
                .dfa
                .clone();
            let b = self
                .ctx
                .target()
                .type_def(tgt)
                .as_complex()
                .expect("string cast requires complex target")
                .dfa
                .clone();
            StringCast::new(a, b).with_reverse()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{AbstractSchema, SchemaBuilder, SimpleType};
    use schemacast_tree::{Doc, Edit};

    fn schema(ab: &mut Alphabet, bill_optional: bool) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let addr = b.declare("USAddress").unwrap();
        b.complex(addr, "(name, city)", &[("name", text), ("city", text)])
            .unwrap();
        let item = b.declare("Item").unwrap();
        b.complex(item, "(sku, qty)", &[("sku", text), ("qty", text)])
            .unwrap();
        let items = b.declare("Items").unwrap();
        b.complex(items, "item*", &[("item", item)]).unwrap();
        let po = b.declare("POType").unwrap();
        let model = if bill_optional {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", addr), ("billTo", addr), ("items", items)],
        )
        .unwrap();
        b.root("purchaseOrder", po);
        b.finish().unwrap()
    }

    struct Fx {
        source: AbstractSchema,
        target: AbstractSchema,
        ab: Alphabet,
    }

    fn fx() -> Fx {
        let mut ab = Alphabet::new();
        let source = schema(&mut ab, true);
        let target = schema(&mut ab, false);
        Fx { source, target, ab }
    }

    fn doc(ab: &mut Alphabet, with_bill: bool, items: usize) -> Doc {
        let po = ab.intern("purchaseOrder");
        let ship = ab.intern("shipTo");
        let bill = ab.intern("billTo");
        let items_l = ab.intern("items");
        let item = ab.intern("item");
        let sku = ab.intern("sku");
        let qty = ab.intern("qty");
        let name = ab.intern("name");
        let city = ab.intern("city");
        let mut d = Doc::new(po);
        for (label, yes) in [(ship, true), (bill, with_bill)] {
            if !yes {
                continue;
            }
            let a = d.add_element(d.root(), label);
            for l in [name, city] {
                let e = d.add_element(a, l);
                d.add_text(e, "v");
            }
        }
        let il = d.add_element(d.root(), items_l);
        for k in 0..items {
            let i = d.add_element(il, item);
            let e = d.add_element(i, sku);
            d.add_text(e, format!("SKU-{k}"));
            let e = d.add_element(i, qty);
            d.add_text(e, "1");
        }
        d
    }

    /// Ground truth: materialize the edited doc and validate fully.
    fn oracle(f: &Fx, dd: &DeltaDoc) -> bool {
        f.target.accepts_document(&dd.committed())
    }

    #[test]
    fn no_edits_reduces_to_plain_cast() {
        let mut f = fx();
        let d = doc(&mut f.ab, true, 5);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);
        let dd = DeltaDoc::new(d);
        let (out, stats) = mv.validate_with_stats(&dd);
        assert!(out.is_valid());
        assert!(stats.nodes_visited <= 4);
    }

    #[test]
    fn inserting_billto_fixes_missing_required_element() {
        let mut f = fx();
        let d = doc(&mut f.ab, false, 5);
        assert!(f.source.accepts_document(&d));
        assert!(!f.target.accepts_document(&d));

        let bill = f.ab.lookup("billTo").unwrap();
        let name = f.ab.lookup("name").unwrap();
        let city = f.ab.lookup("city").unwrap();
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);

        let mut dd = DeltaDoc::new(d);
        // Without the edit, invalid.
        assert!(!mv.validate(&dd).is_valid());

        // Insert billTo (with its children) after shipTo.
        let root = dd.doc().root();
        dd.apply(&Edit::InsertElement {
            parent: root,
            position: 1,
            label: bill,
        })
        .unwrap();
        let bill_node = dd.doc().children(root)[1];
        dd.apply(&Edit::InsertElement {
            parent: bill_node,
            position: 0,
            label: name,
        })
        .unwrap();
        let name_node = dd.doc().children(bill_node)[0];
        dd.apply(&Edit::InsertText {
            parent: name_node,
            position: 0,
            text: "N".into(),
        })
        .unwrap();
        dd.apply(&Edit::InsertElement {
            parent: bill_node,
            position: 1,
            label: city,
        })
        .unwrap();
        let city_node = dd.doc().children(bill_node)[1];
        dd.apply(&Edit::InsertText {
            parent: city_node,
            position: 0,
            text: "C".into(),
        })
        .unwrap();

        let (out, stats) = mv.validate_with_stats(&dd);
        assert!(out.is_valid());
        assert!(oracle(&f, &dd));
        // The untouched items subtree was never entered: far fewer visits
        // than nodes.
        assert!(stats.nodes_visited < dd.doc().node_count() / 2);
    }

    #[test]
    fn deleting_required_child_is_caught() {
        let mut f = fx();
        let d = doc(&mut f.ab, true, 3);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);
        let mut dd = DeltaDoc::new(d);
        // Delete the qty leaf of item 1.
        let root = dd.doc().root();
        let items = dd.doc().children(root)[2];
        let item1 = dd.doc().children(items)[1];
        let qty = dd.doc().children(item1)[1];
        let qty_text = dd.doc().children(qty)[0];
        dd.apply(&Edit::DeleteLeaf { node: qty_text }).unwrap();
        dd.apply(&Edit::DeleteLeaf { node: qty }).unwrap();
        assert!(!mv.validate(&dd).is_valid());
        assert!(!oracle(&f, &dd));
    }

    #[test]
    fn relabeling_and_value_edits() {
        let mut f = fx();
        let d = doc(&mut f.ab, true, 4);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);

        // Edit a qty value: stays valid (Text type).
        let mut dd = DeltaDoc::new(d.clone());
        let root = dd.doc().root();
        let items = dd.doc().children(root)[2];
        let item0 = dd.doc().children(items)[0];
        let qty = dd.doc().children(item0)[1];
        let t = dd.doc().children(qty)[0];
        dd.apply(&Edit::SetText {
            node: t,
            text: "999".into(),
        })
        .unwrap();
        assert!(mv.validate(&dd).is_valid());
        assert!(oracle(&f, &dd));

        // Relabel an item to an unknown label: invalid.
        let mut dd2 = DeltaDoc::new(d);
        let root = dd2.doc().root();
        let items = dd2.doc().children(root)[2];
        let item0 = dd2.doc().children(items)[0];
        let bogus = f.ab.intern("bogus");
        dd2.apply(&Edit::Relabel {
            node: item0,
            label: bogus,
        })
        .unwrap();
        assert!(!mv.validate(&dd2).is_valid());
        assert!(!oracle(&f, &dd2));
    }

    #[test]
    fn append_items_validates_with_bounded_scanning() {
        let mut f = fx();
        let d = doc(&mut f.ab, true, 200);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);
        let mut dd = DeltaDoc::new(d);
        let root = dd.doc().root();
        let items = dd.doc().children(root)[2];
        let item = f.ab.lookup("item").unwrap();
        let sku = f.ab.lookup("sku").unwrap();
        let qty = f.ab.lookup("qty").unwrap();
        // Append one item subtree at the end.
        let pos = dd.doc().children(items).len();
        dd.apply(&Edit::InsertElement {
            parent: items,
            position: pos,
            label: item,
        })
        .unwrap();
        let new_item = dd.doc().children(items)[pos];
        for (i, l) in [(0usize, sku), (1, qty)] {
            dd.apply(&Edit::InsertElement {
                parent: new_item,
                position: i,
                label: l,
            })
            .unwrap();
            let e = dd.doc().children(new_item)[i];
            dd.apply(&Edit::InsertText {
                parent: e,
                position: 0,
                text: "v".into(),
            })
            .unwrap();
        }
        let (out, stats) = mv.validate_with_stats(&dd);
        assert!(out.is_valid());
        assert!(oracle(&f, &dd));
        // Each sibling of the edited child list is *entered* once (the §3.3
        // recursion) but immediately skipped by subsumption — so visits are
        // bounded by the sibling count plus the new subtree, far below the
        // ~1800 nodes of the document.
        assert!(
            stats.nodes_visited < 230,
            "visited {} nodes",
            stats.nodes_visited
        );
        assert!(stats.subsumed_skips >= 200);
        // Content model of items: the item* automaton never rescans the
        // unchanged prefix thanks to the backward strategy of §4.3.
        assert!(
            stats.content_symbols_scanned < 30,
            "scanned {} symbols",
            stats.content_symbols_scanned
        );
    }

    #[test]
    fn mods_validator_agrees_with_oracle_on_random_edits() {
        let mut f = fx();
        let base = doc(&mut f.ab, true, 6);
        let ctx = CastContext::new(&f.source, &f.target, &f.ab);
        let mv = ModsValidator::new(&ctx);
        let item = f.ab.lookup("item").unwrap();
        let sku = f.ab.lookup("sku").unwrap();

        // A small battery of edit scripts (some valid, some not).
        let scripts: Vec<Vec<Edit>> = {
            let d = &base;
            let root = d.root();
            let items = d.children(root)[2];
            let item0 = d.children(items)[0];
            let sku0 = d.children(item0)[0];
            let sku0_text = d.children(sku0)[0];
            vec![
                vec![],
                vec![Edit::SetText {
                    node: sku0_text,
                    text: "NEW".into(),
                }],
                // Insert a bare item (missing children): invalid.
                vec![Edit::InsertElement {
                    parent: items,
                    position: 0,
                    label: item,
                }],
                // Relabel sku→sku (no-op relabel still marks): valid.
                vec![Edit::Relabel {
                    node: sku0,
                    label: sku,
                }],
                // Delete a sku text then the sku: invalid (item needs sku).
                vec![
                    Edit::DeleteLeaf { node: sku0_text },
                    Edit::DeleteLeaf { node: sku0 },
                ],
            ]
        };
        for (i, script) in scripts.iter().enumerate() {
            let mut dd = DeltaDoc::new(base.clone());
            dd.apply_all(script).unwrap();
            let got = mv.validate(&dd).is_valid();
            let want = oracle(&f, &dd);
            assert_eq!(got, want, "script {i}");
        }
    }
}
