//! Streaming schema-cast validation.
//!
//! The paper's closing claim: "the memory requirement of our algorithm does
//! not vary with the size of the document, but depends solely on the sizes
//! of the schemas". This module makes that literal: [`StreamingCast`]
//! consumes a [`PullEvent`] stream and validates
//! against both schemas in parallel **without building the document tree**
//! — state is one frame per open element (O(depth)) plus the preprocessed
//! schema-pair structures.
//!
//! Subsumed subtrees are skipped by depth counting (events are consumed but
//! no work is done); disjoint pairs and immediate-reject automaton states
//! abort the scan at the earliest event the decision procedure permits.

use crate::cast::CastContext;
use crate::stats::{CastOutcome, ValidationStats};
use schemacast_automata::{ProductIda, StateId};
use schemacast_regex::Alphabet;
use schemacast_schema::{TypeDef, TypeId};
use schemacast_xml::{PullEvent, PullParser, XmlError};
use std::sync::Arc;

/// A streaming validator over a preprocessed [`CastContext`].
pub struct StreamingCast<'a, 'b> {
    ctx: &'a CastContext<'b>,
}

enum Frame {
    /// Target type is simple: accumulate character data.
    Simple { tgt: TypeId, text: String },
    /// Target type is complex: run the content model as children arrive.
    Complex {
        src: Option<TypeId>,
        tgt: TypeId,
        content: Content,
    },
}

enum Content {
    /// Product IDA over (source, target) content models (§4 integration).
    Ida {
        ida: Arc<ProductIda>,
        q: StateId,
        /// Early decision, if the IDA reached IA (`Some(true)`).
        /// Immediate rejects abort the whole scan instead.
        accepted_early: bool,
    },
    /// Plain target-DFA scan (no source content model, or IDA disabled).
    Dfa { q: StateId },
}

impl<'a, 'b> StreamingCast<'a, 'b> {
    /// Wraps a cast context.
    pub fn new(ctx: &'a CastContext<'b>) -> Self {
        StreamingCast { ctx }
    }

    /// Validates XML text end to end (parse + cast in one streaming pass).
    ///
    /// # Errors
    /// Returns `Err` only for malformed XML; validity verdicts are in the
    /// `Ok` payload.
    pub fn validate_str(
        &self,
        text: &str,
        alphabet: &Alphabet,
    ) -> Result<(CastOutcome, ValidationStats), XmlError> {
        self.validate_events(PullParser::new(text), alphabet)
    }

    /// Validates a pull-event stream.
    ///
    /// The stream is consumed until a verdict is reached; on early rejection
    /// the remaining events are not pulled (useful over sockets).
    pub fn validate_events<I>(
        &self,
        events: I,
        alphabet: &Alphabet,
    ) -> Result<(CastOutcome, ValidationStats), XmlError>
    where
        I: IntoIterator<Item = Result<PullEvent, XmlError>>,
    {
        let mut stats = ValidationStats::default();
        let mut stack: Vec<Frame> = Vec::new();
        let mut skip_depth: usize = 0;
        let mut seen_root = false;

        for event in events {
            match event? {
                PullEvent::Doctype { .. } => {}
                PullEvent::Start { name, .. } => {
                    if skip_depth > 0 {
                        skip_depth += 1;
                        continue;
                    }
                    let Some(sym) = alphabet.lookup(&name) else {
                        // A label neither schema has ever seen cannot be
                        // admitted by the target.
                        return Ok((CastOutcome::Invalid, stats));
                    };
                    if stack.is_empty() {
                        if seen_root {
                            return Ok((CastOutcome::Invalid, stats));
                        }
                        seen_root = true;
                        let Some(tgt) = self.ctx.target().root_type(sym) else {
                            return Ok((CastOutcome::Invalid, stats));
                        };
                        let src = self.ctx.source().root_type(sym);
                        match self.enter(src, tgt, &mut stats) {
                            Entered::Frame(f) => stack.push(f),
                            Entered::Skip => skip_depth = 1,
                            Entered::Reject => return Ok((CastOutcome::Invalid, stats)),
                        }
                    } else {
                        let top = stack.last_mut().expect("non-empty");
                        match top {
                            Frame::Simple { .. } => {
                                // Element content inside a simple type.
                                return Ok((CastOutcome::Invalid, stats));
                            }
                            Frame::Complex { src, tgt, content } => {
                                // Step the content model.
                                match content {
                                    Content::Ida {
                                        ida,
                                        q,
                                        accepted_early,
                                    } => {
                                        if !*accepted_early {
                                            stats.content_symbols_scanned += 1;
                                            *q = ida.ida().dfa().step(*q, sym);
                                            if ida.ida().is_ir(*q) {
                                                stats.ida_early_rejects += 1;
                                                return Ok((CastOutcome::Invalid, stats));
                                            }
                                            if ida.ida().is_ia(*q) {
                                                stats.ida_early_accepts += 1;
                                                *accepted_early = true;
                                            }
                                        }
                                    }
                                    Content::Dfa { q } => {
                                        stats.content_symbols_scanned += 1;
                                        let dfa = &self
                                            .ctx
                                            .target()
                                            .type_def(*tgt)
                                            .as_complex()
                                            .expect("complex frame")
                                            .dfa;
                                        *q = dfa.step(*q, sym);
                                        if *q == dfa.sink() {
                                            return Ok((CastOutcome::Invalid, stats));
                                        }
                                    }
                                }
                                // Type the child.
                                let tgt_def = self
                                    .ctx
                                    .target()
                                    .type_def(*tgt)
                                    .as_complex()
                                    .expect("complex frame");
                                let Some(child_tgt) = tgt_def.child_type(sym) else {
                                    return Ok((CastOutcome::Invalid, stats));
                                };
                                let child_src = src.and_then(|s| {
                                    self.ctx
                                        .source()
                                        .type_def(s)
                                        .as_complex()
                                        .and_then(|c| c.child_type(sym))
                                });
                                match self.enter(child_src, child_tgt, &mut stats) {
                                    Entered::Frame(f) => stack.push(f),
                                    Entered::Skip => skip_depth = 1,
                                    Entered::Reject => return Ok((CastOutcome::Invalid, stats)),
                                }
                            }
                        }
                    }
                }
                PullEvent::Text(t) => {
                    if skip_depth > 0 {
                        continue;
                    }
                    match stack.last_mut() {
                        Some(Frame::Simple { text, .. }) => text.push_str(&t),
                        Some(Frame::Complex { .. }) => {
                            if !t.chars().all(char::is_whitespace) {
                                return Ok((CastOutcome::Invalid, stats));
                            }
                        }
                        None => {
                            if !t.chars().all(char::is_whitespace) {
                                return Ok((CastOutcome::Invalid, stats));
                            }
                        }
                    }
                }
                PullEvent::End { .. } => {
                    if skip_depth > 0 {
                        skip_depth -= 1;
                        continue;
                    }
                    let frame = stack.pop().expect("balanced events");
                    let ok = match frame {
                        Frame::Simple { tgt, text } => {
                            stats.value_checks += 1;
                            let simple = self
                                .ctx
                                .target()
                                .type_def(tgt)
                                .as_simple()
                                .expect("simple frame");
                            // Whitespace-only content is treated as the
                            // empty value, matching the tree validators
                            // (Doc::validation_children drops ignorable
                            // whitespace before simple-value checks).
                            if text.chars().all(char::is_whitespace) {
                                simple.validate("")
                            } else {
                                simple.validate(&text)
                            }
                        }
                        Frame::Complex { content, tgt, .. } => match content {
                            Content::Ida {
                                ida,
                                q,
                                accepted_early,
                            } => accepted_early || ida.ida().dfa().is_final(q),
                            Content::Dfa { q } => {
                                let dfa = &self
                                    .ctx
                                    .target()
                                    .type_def(tgt)
                                    .as_complex()
                                    .expect("complex frame")
                                    .dfa;
                                dfa.is_final(q)
                            }
                        },
                    };
                    if !ok {
                        return Ok((CastOutcome::Invalid, stats));
                    }
                }
            }
        }
        if !seen_root || !stack.is_empty() || skip_depth != 0 {
            return Ok((CastOutcome::Invalid, stats));
        }
        Ok((CastOutcome::Valid, stats))
    }

    /// Decides how to process an element with type pair `(src?, tgt)`.
    fn enter(&self, src: Option<TypeId>, tgt: TypeId, stats: &mut ValidationStats) -> Entered {
        stats.nodes_visited += 1;
        let opts = self.ctx.options();
        if let Some(s) = src {
            if opts.use_subsumption && self.ctx.relations().subsumed(s, tgt) {
                stats.subsumed_skips += 1;
                return Entered::Skip;
            }
            if opts.use_disjointness && self.ctx.relations().disjoint(s, tgt) {
                stats.disjoint_rejects += 1;
                return Entered::Reject;
            }
        } else {
            stats.full_validations += 1;
        }
        match self.ctx.target().type_def(tgt) {
            TypeDef::Simple(_) => Entered::Frame(Frame::Simple {
                tgt,
                text: String::new(),
            }),
            TypeDef::Complex(c) => {
                let src_complex =
                    src.filter(|&s| self.ctx.source().type_def(s).as_complex().is_some());
                let content = match (opts.use_ida, src_complex) {
                    (true, Some(s)) => {
                        let ida = self.ctx.product_ida(s, tgt);
                        let q = ida.ida().dfa().start();
                        // The start state may already be decisive.
                        if ida.ida().is_ir(q) {
                            stats.ida_early_rejects += 1;
                            return Entered::Reject;
                        }
                        let accepted_early = ida.ida().is_ia(q);
                        if accepted_early {
                            stats.ida_early_accepts += 1;
                        }
                        Content::Ida {
                            ida,
                            q,
                            accepted_early,
                        }
                    }
                    _ => Content::Dfa { q: c.dfa.start() },
                };
                Entered::Frame(Frame::Complex { src, tgt, content })
            }
        }
    }
}

enum Entered {
    Frame(Frame),
    Skip,
    Reject,
}

/// One-call convenience: preprocess nothing, reuse an existing context.
pub fn validate_xml_stream(
    ctx: &CastContext<'_>,
    xml_text: &str,
    alphabet: &Alphabet,
) -> Result<(CastOutcome, ValidationStats), XmlError> {
    StreamingCast::new(ctx).validate_str(xml_text, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{SchemaBuilder, SimpleType};
    use schemacast_tree::{Doc, WhitespaceMode};

    fn schemas() -> (
        schemacast_schema::AbstractSchema,
        schemacast_schema::AbstractSchema,
        Alphabet,
    ) {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, optional: bool| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let addr = b.declare("Addr").unwrap();
            b.complex(addr, "(name, city)", &[("name", text), ("city", text)])
                .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", text)]).unwrap();
            let po = b.declare("PO").unwrap();
            let model = if optional {
                "(ship, bill?, items)"
            } else {
                "(ship, bill, items)"
            };
            b.complex(
                po,
                model,
                &[("ship", addr), ("bill", addr), ("items", items)],
            )
            .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true);
        let target = mk(&mut ab, false);
        (source, target, ab)
    }

    const VALID: &str = "<po>\n  <ship><name>A</name><city>C</city></ship>\n  \
                         <bill><name>B</name><city>C</city></bill>\n  \
                         <items><item>x</item><item>y</item></items>\n</po>";
    const NO_BILL: &str =
        "<po><ship><name>A</name><city>C</city></ship><items><item>x</item></items></po>";

    #[test]
    fn streaming_accepts_valid_documents() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc.validate_str(VALID, &ab).expect("well-formed");
        assert!(out.is_valid());
        // ship/bill/items pairs are subsumed: their subtrees were skipped.
        assert!(stats.subsumed_skips >= 3);
        assert!(stats.nodes_visited <= 4);
    }

    #[test]
    fn streaming_rejects_early_without_draining() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc.validate_str(NO_BILL, &ab).expect("well-formed");
        assert!(!out.is_valid());
        // Decided within the root content model (ship, then items ⇒ IR).
        assert!(stats.ida_early_rejects >= 1 || stats.disjoint_rejects >= 1);
    }

    #[test]
    fn streaming_agrees_with_tree_validator() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        for text in [
            VALID,
            NO_BILL,
            "<po><ship><name>A</name><city>C</city></ship>\
             <bill><name>B</name><city>C</city></bill><items/></po>",
            "<po><items/></po>",
            "<other/>",
        ] {
            let (stream_out, _) = sc.validate_str(text, &ab).expect("well-formed");
            let xml = schemacast_xml::parse_document(text).expect("dom");
            let doc = Doc::from_xml(&xml.root, &mut ab, WhitespaceMode::Trim);
            let tree_out = ctx.validate(&doc);
            let truth = target.accepts_document(&doc);
            // Cast verdicts are guaranteed only under the precondition;
            // every input here except "<other/>" is source-valid, and
            // "<other/>" has no source root type so both validators fall
            // back to full checking.
            assert_eq!(stream_out.is_valid(), truth, "stream vs truth on {text}");
            assert_eq!(tree_out.is_valid(), truth, "tree vs truth on {text}");
        }
    }

    #[test]
    fn streaming_checks_simple_values() {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, max: i64| {
            let mut b = SchemaBuilder::new(ab);
            let mut qty = SimpleType::of(schemacast_schema::AtomicKind::PositiveInteger);
            qty.facets.max_exclusive = Some(schemacast_schema::BoundValue::Num(
                schemacast_schema::Decimal::from_i64(max),
            ));
            let q = b.simple("Qty", qty).unwrap();
            let root = b.declare("Root").unwrap();
            b.complex(root, "qty+", &[("qty", q)]).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, 200);
        let target = mk(&mut ab, 100);
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc
            .validate_str("<r><qty>50</qty><qty>99</qty></r>", &ab)
            .expect("ok");
        assert!(out.is_valid());
        assert_eq!(stats.value_checks, 2);
        let (out, _) = sc
            .validate_str("<r><qty>50</qty><qty>150</qty></r>", &ab)
            .expect("ok");
        assert!(!out.is_valid());
    }

    #[test]
    fn streaming_rejects_malformed_xml_as_error() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        assert!(sc.validate_str("<po><ship></po>", &ab).is_err());
    }

    #[test]
    fn streaming_text_in_element_content_is_invalid() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, _) = sc
            .validate_str("<po>stray text<ship/><bill/><items/></po>", &ab)
            .expect("well-formed");
        assert!(!out.is_valid());
    }
}
