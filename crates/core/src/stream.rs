//! Streaming schema-cast validation.
//!
//! The paper's closing claim: "the memory requirement of our algorithm does
//! not vary with the size of the document, but depends solely on the sizes
//! of the schemas". This module makes that literal: [`StreamingCast`]
//! consumes a [`PullEvent`] stream and validates
//! against both schemas in parallel **without building the document tree**
//! — state is one frame per open element (O(depth)) plus the preprocessed
//! schema-pair structures.
//!
//! Two execution paths share the frame machinery:
//!
//! * [`StreamingCast::validate_pull`] (and [`validate_str`] on top of it) —
//!   the production fast path. It drives the zero-copy pull parser
//!   directly: element labels arrive pre-interned as dense [`NameId`]s and
//!   are resolved to schema symbols through a reusable
//!   [`SymCache`] (one alphabet hash per *distinct* name per document), and
//!   a subsumed subtree (`(source, target) ∈ R_sub`) is skipped
//!   **lexically** with [`PullParser::skip_subtree`] — a raw byte scan to
//!   the matching end tag, no tokenization. The bytes and tag events so
//!   avoided are recorded in [`ValidationStats::bytes_skipped`] /
//!   [`ValidationStats::events_avoided`].
//! * [`StreamingCast::validate_events`] — the generic path over any event
//!   iterator (sockets, replay logs, tests). Subsumed subtrees are skipped
//!   by depth counting: events are consumed but no work is done. This is
//!   also the oracle the property tests compare the lexical path against.
//!
//! Disjoint pairs and immediate-reject automaton states abort the scan at
//! the earliest event the decision procedure permits on both paths.
//!
//! [`validate_str`]: StreamingCast::validate_str
//! [`NameId`]: schemacast_xml::NameId

use crate::cast::CastContext;
use crate::stats::{CastOutcome, ValidationStats};
use loomlite::sync::Arc;
use schemacast_automata::hot::state_flags;
use schemacast_automata::{HotDfa, ProductIda, StateId};
use schemacast_regex::{Alphabet, Sym, SymCache};
use schemacast_schema::{ComplexType, SimpleType, TypeDef, TypeId};
use schemacast_xml::{PullEvent, PullParser, StructuralIndex, XmlError};
use std::borrow::Cow;
use std::time::Instant;

/// A streaming validator over a preprocessed [`CastContext`].
pub struct StreamingCast<'a, 'b> {
    ctx: &'a CastContext<'b>,
}

/// Reusable per-worker scratch state for the streaming fast path.
///
/// Holds the lifetime-free [`SymCache`], the stage-1 structural tape
/// buffer ([`StructuralIndex`], rebuilt in place per document), and the
/// per-document product-IDA memo, so batch workers resolve labels, index
/// documents, and fetch pair automata with zero steady-state allocation
/// across documents. Create one per worker (or per call site) and pass it
/// to [`StreamingCast::validate_str_with`] /
/// [`StreamingCast::validate_pull`].
#[derive(Debug, Default)]
pub struct StreamScratch {
    syms: SymCache,
    tape: StructuralIndex,
    pairs: PairMemo,
}

/// Per-document memo of product IDAs by type pair. The context's sharded
/// cache already dedups construction globally; this layer removes the
/// mutex + hash lookup from the per-element path for pairs the current
/// document has already used. [`TypeId`]s are small dense indices, so the
/// memo is a `#source_types × #target_types` matrix — one indexed load
/// per element, no hashing at all. Re-dimensioned (and cleared) at the
/// start of every document so a scratch can safely move between contexts
/// (type ids are per-schema).
#[derive(Debug, Default)]
struct PairMemo {
    slots: Vec<Option<Arc<ProductIda>>>,
    tgt_width: usize,
}

impl PairMemo {
    /// Clears the memo and re-dimensions it for a schema pair.
    fn begin(&mut self, src_types: usize, tgt_types: usize) {
        self.slots.clear();
        self.slots.resize(src_types * tgt_types, None);
        self.tgt_width = tgt_types;
    }

    /// The memoized product IDA for `(s, t)`, building it on first use.
    #[inline]
    fn get_or_insert(
        &mut self,
        s: TypeId,
        t: TypeId,
        build: impl FnOnce() -> Arc<ProductIda>,
    ) -> &Arc<ProductIda> {
        self.slots[s.index() * self.tgt_width + t.index()].get_or_insert_with(build)
    }
}

/// One open element's validation state. Borrows simple-typed character data
/// from the document (`'t`) until a second run forces an owned buffer, and
/// caches the schema-side definitions (`'a`) so the per-event hot loop
/// never repeats a `type_def` lookup.
enum Frame<'a, 't> {
    /// Target type is simple: accumulate character data.
    Simple {
        simple: &'a SimpleType,
        text: Option<Cow<'t, str>>,
    },
    /// Target type is complex: run the content model as children arrive.
    Complex {
        /// This element's *source* complex definition, if any — types the
        /// children on the source side.
        src_cx: Option<&'a ComplexType>,
        /// This element's target complex definition.
        tgt_cx: &'a ComplexType,
        content: Content<'a>,
    },
}

enum Content<'a> {
    /// Product IDA over (source, target) content models (§4 integration).
    Ida {
        ida: Arc<ProductIda>,
        q: StateId,
        /// Early decision, if the IDA reached IA (`Some(true)`).
        /// Immediate rejects abort the whole scan instead.
        accepted_early: bool,
    },
    /// Plain target-DFA scan (no source content model, or IDA disabled),
    /// stepped through the cached branchless hot table.
    Dfa { hot: &'a HotDfa, q: StateId },
}

/// What a `Start` event did to the frame stack.
enum StartAction {
    /// A frame was pushed (or the content model absorbed it); keep going.
    Entered,
    /// The child's type pair is subsumed: skip its whole subtree.
    Skip,
    /// The document is invalid; stop.
    Invalid,
}

impl<'a, 'b> StreamingCast<'a, 'b> {
    /// Wraps a cast context.
    pub fn new(ctx: &'a CastContext<'b>) -> Self {
        StreamingCast { ctx }
    }

    /// Validates XML text end to end (parse + cast in one streaming pass)
    /// using the zero-copy fast path with lexical subtree skipping.
    ///
    /// # Errors
    /// Returns `Err` only for malformed XML; validity verdicts are in the
    /// `Ok` payload.
    pub fn validate_str(
        &self,
        text: &str,
        alphabet: &Alphabet,
    ) -> Result<(CastOutcome, ValidationStats), XmlError> {
        let mut scratch = StreamScratch::default();
        self.validate_str_with(text, alphabet, &mut scratch)
    }

    /// [`validate_str`](StreamingCast::validate_str) with caller-provided
    /// scratch state — the batch engine passes one [`StreamScratch`] per
    /// worker so repeated documents share allocations, including the
    /// structural tape buffer, which is rebuilt in place here (timed into
    /// [`ValidationStats::index_build_micros`]) and fed to the parser by
    /// reference.
    ///
    /// # Errors
    /// Returns `Err` only for malformed XML.
    pub fn validate_str_with(
        &self,
        text: &str,
        alphabet: &Alphabet,
        scratch: &mut StreamScratch,
    ) -> Result<(CastOutcome, ValidationStats), XmlError> {
        // Destructure so the parser can borrow the tape while the driver
        // mutably uses the other scratch parts.
        let StreamScratch { syms, tape, pairs } = scratch;
        let started = Instant::now();
        tape.rebuild(text);
        let index_build_micros =
            usize::try_from(started.elapsed().as_micros()).unwrap_or(usize::MAX);
        let mut parser = PullParser::with_index(text, tape);
        let (outcome, mut stats) = self.validate_pull_inner(&mut parser, alphabet, syms, pairs)?;
        stats.index_build_micros += index_build_micros;
        Ok((outcome, stats))
    }

    /// Validates by driving a pull parser directly — the production fast
    /// path.
    ///
    /// Compared to [`validate_events`](StreamingCast::validate_events),
    /// this path (a) resolves labels through the parser's lexer-level
    /// interner plus a dense [`SymCache`] instead of hashing every start
    /// tag, and (b) skips subsumed subtrees *lexically* via
    /// [`PullParser::skip_subtree`], so the skipped bytes are never
    /// tokenized at all. Outcomes and decision counters are identical to
    /// the generic path (property-tested); only
    /// [`ValidationStats::bytes_skipped`] and
    /// [`ValidationStats::events_avoided`] differ (the generic path leaves
    /// them 0).
    ///
    /// # Errors
    /// Returns `Err` only for malformed XML.
    pub fn validate_pull<'t>(
        &self,
        parser: &mut PullParser<'t>,
        alphabet: &Alphabet,
        scratch: &mut StreamScratch,
    ) -> Result<(CastOutcome, ValidationStats), XmlError> {
        self.validate_pull_inner(parser, alphabet, &mut scratch.syms, &mut scratch.pairs)
    }

    fn validate_pull_inner<'t>(
        &self,
        parser: &mut PullParser<'t>,
        alphabet: &Alphabet,
        syms: &mut SymCache,
        pairs: &mut PairMemo,
    ) -> Result<(CastOutcome, ValidationStats), XmlError> {
        syms.begin();
        pairs.begin(
            self.ctx.source().type_count(),
            self.ctx.target().type_count(),
        );
        let mut stats = ValidationStats {
            tape_events: parser.tape().len(),
            ..ValidationStats::default()
        };
        let mut stack: Vec<Frame<'a, 't>> = Vec::new();
        let mut seen_root = false;

        while let Some(event) = parser.next() {
            match event? {
                PullEvent::Doctype { .. } => {}
                PullEvent::Start { name, id, .. } => {
                    let sym = syms.resolve(alphabet, id.index(), name);
                    match self.on_start(sym, &mut stack, &mut seen_root, pairs, &mut stats) {
                        StartAction::Entered => {}
                        StartAction::Skip => {
                            let skipped = parser.skip_subtree()?;
                            stats.bytes_skipped += skipped.bytes;
                            stats.events_avoided += skipped.events;
                            stats.tape_skip_hops += skipped.hops;
                        }
                        StartAction::Invalid => return Ok((CastOutcome::Invalid, stats)),
                    }
                }
                PullEvent::Text(t) => {
                    // The tape classified whitespace-only spans at build
                    // time; the flag settles them without re-scanning.
                    let known_ws = parser.last_text_all_ws();
                    if !on_text(&mut stack, t, known_ws) {
                        return Ok((CastOutcome::Invalid, stats));
                    }
                }
                PullEvent::End { .. } => {
                    let frame = stack.pop().expect("balanced events");
                    if !self.on_end(frame, &mut stats) {
                        return Ok((CastOutcome::Invalid, stats));
                    }
                }
            }
        }
        if !seen_root || !stack.is_empty() {
            return Ok((CastOutcome::Invalid, stats));
        }
        Ok((CastOutcome::Valid, stats))
    }

    /// Validates a pull-event stream from any iterator — the generic path,
    /// and the depth-counting oracle for the lexical fast path.
    ///
    /// The stream is consumed until a verdict is reached; on early rejection
    /// the remaining events are not pulled (useful over sockets). Subsumed
    /// subtrees are skipped by depth counting: their events are still
    /// tokenized and consumed, so [`ValidationStats::bytes_skipped`] /
    /// [`ValidationStats::events_avoided`] stay 0 on this path.
    pub fn validate_events<'t, I>(
        &self,
        events: I,
        alphabet: &Alphabet,
    ) -> Result<(CastOutcome, ValidationStats), XmlError>
    where
        I: IntoIterator<Item = Result<PullEvent<'t>, XmlError>>,
    {
        let mut stats = ValidationStats::default();
        let mut stack: Vec<Frame<'a, 't>> = Vec::new();
        let mut skip_depth: usize = 0;
        let mut seen_root = false;
        let mut pairs = PairMemo::default();
        pairs.begin(
            self.ctx.source().type_count(),
            self.ctx.target().type_count(),
        );

        for event in events {
            match event? {
                PullEvent::Doctype { .. } => {}
                PullEvent::Start { name, .. } => {
                    if skip_depth > 0 {
                        skip_depth += 1;
                        continue;
                    }
                    let sym = alphabet.lookup(name);
                    match self.on_start(sym, &mut stack, &mut seen_root, &mut pairs, &mut stats) {
                        StartAction::Entered => {}
                        StartAction::Skip => skip_depth = 1,
                        StartAction::Invalid => return Ok((CastOutcome::Invalid, stats)),
                    }
                }
                PullEvent::Text(t) => {
                    if skip_depth > 0 {
                        continue;
                    }
                    if !on_text(&mut stack, t, false) {
                        return Ok((CastOutcome::Invalid, stats));
                    }
                }
                PullEvent::End { .. } => {
                    if skip_depth > 0 {
                        skip_depth -= 1;
                        continue;
                    }
                    let frame = stack.pop().expect("balanced events");
                    if !self.on_end(frame, &mut stats) {
                        return Ok((CastOutcome::Invalid, stats));
                    }
                }
            }
        }
        if !seen_root || !stack.is_empty() || skip_depth != 0 {
            return Ok((CastOutcome::Invalid, stats));
        }
        Ok((CastOutcome::Valid, stats))
    }

    /// Handles a start tag: types the element, steps the enclosing content
    /// model, and decides whether to descend, skip, or reject.
    ///
    /// This is the per-element hot loop. Content models are stepped through
    /// [`HotDfa`] tables — one multiply, one clamped (branchless) load, one
    /// flag-byte test — and child types resolve through the dense
    /// [`ComplexType::child_index`] instead of a hash map.
    fn on_start<'t>(
        &self,
        sym: Option<Sym>,
        stack: &mut Vec<Frame<'a, 't>>,
        seen_root: &mut bool,
        pairs: &mut PairMemo,
        stats: &mut ValidationStats,
    ) -> StartAction {
        let Some(sym) = sym else {
            // A label neither schema has ever seen cannot be admitted by
            // the target.
            return StartAction::Invalid;
        };
        if stack.is_empty() {
            if *seen_root {
                return StartAction::Invalid;
            }
            *seen_root = true;
            let Some(tgt) = self.ctx.target().root_type(sym) else {
                return StartAction::Invalid;
            };
            let src = self.ctx.source().root_type(sym);
            match self.enter(src, tgt, pairs, stats) {
                Entered::Frame(f) => {
                    stack.push(f);
                    StartAction::Entered
                }
                Entered::Skip => StartAction::Skip,
                Entered::Reject => StartAction::Invalid,
            }
        } else {
            let top = stack.last_mut().expect("non-empty");
            match top {
                Frame::Simple { .. } => {
                    // Element content inside a simple type.
                    StartAction::Invalid
                }
                Frame::Complex {
                    src_cx,
                    tgt_cx,
                    content,
                } => {
                    // Step the content model.
                    match content {
                        Content::Ida {
                            ida,
                            q,
                            accepted_early,
                        } => {
                            if !*accepted_early {
                                stats.content_symbols_scanned += 1;
                                let hot = ida.ida().hot();
                                *q = hot.step(*q, sym.index());
                                let flags = hot.flags(*q);
                                if flags & state_flags::IR != 0 {
                                    stats.ida_early_rejects += 1;
                                    return StartAction::Invalid;
                                }
                                if flags & state_flags::IA != 0 {
                                    stats.ida_early_accepts += 1;
                                    *accepted_early = true;
                                }
                            }
                        }
                        Content::Dfa { hot, q } => {
                            stats.content_symbols_scanned += 1;
                            *q = hot.step(*q, sym.index());
                            if *q == hot.sink() {
                                return StartAction::Invalid;
                            }
                        }
                    }
                    // Type the child (dense index: no hashing).
                    let Some(child_tgt) = tgt_cx.child_type_dense(sym) else {
                        return StartAction::Invalid;
                    };
                    let child_src = src_cx.and_then(|c| c.child_type_dense(sym));
                    match self.enter(child_src, child_tgt, pairs, stats) {
                        Entered::Frame(f) => {
                            stack.push(f);
                            StartAction::Entered
                        }
                        Entered::Skip => StartAction::Skip,
                        Entered::Reject => StartAction::Invalid,
                    }
                }
            }
        }
    }

    /// Closes a frame: final simple-value / content-model acceptance check.
    /// Returns whether the element was valid.
    fn on_end(&self, frame: Frame<'a, '_>, stats: &mut ValidationStats) -> bool {
        match frame {
            Frame::Simple { simple, text } => {
                stats.value_checks += 1;
                let text = text.as_deref().unwrap_or("");
                // Whitespace-only content is treated as the empty value,
                // matching the tree validators (Doc::validation_children
                // drops ignorable whitespace before simple-value checks).
                if all_xml_whitespace(text) {
                    simple.validate("")
                } else {
                    simple.validate(text)
                }
            }
            Frame::Complex { content, .. } => match content {
                Content::Ida {
                    ida,
                    q,
                    accepted_early,
                } => accepted_early || ida.ida().hot().is_final(q),
                Content::Dfa { hot, q } => hot.is_final(q),
            },
        }
    }

    /// Decides how to process an element with type pair `(src?, tgt)`.
    fn enter<'t>(
        &self,
        src: Option<TypeId>,
        tgt: TypeId,
        pairs: &mut PairMemo,
        stats: &mut ValidationStats,
    ) -> Entered<'a, 't> {
        stats.nodes_visited += 1;
        let opts = self.ctx.options();
        if let Some(s) = src {
            if opts.use_subsumption && self.ctx.relations().subsumed(s, tgt) {
                stats.subsumed_skips += 1;
                return Entered::Skip;
            }
            if opts.use_disjointness && self.ctx.relations().disjoint(s, tgt) {
                stats.disjoint_rejects += 1;
                return Entered::Reject;
            }
        } else {
            stats.full_validations += 1;
        }
        match self.ctx.target().type_def(tgt) {
            TypeDef::Simple(simple) => Entered::Frame(Frame::Simple { simple, text: None }),
            TypeDef::Complex(c) => {
                let src_cx = src.and_then(|s| self.ctx.source().type_def(s).as_complex());
                let content = match (opts.use_ida, src, src_cx) {
                    (true, Some(s), Some(_)) => {
                        let ida = pairs
                            .get_or_insert(s, tgt, || self.ctx.product_ida(s, tgt))
                            .clone();
                        let hot = ida.ida().hot();
                        let q = hot.start();
                        // The start state may already be decisive.
                        let flags = hot.flags(q);
                        if flags & state_flags::IR != 0 {
                            stats.ida_early_rejects += 1;
                            return Entered::Reject;
                        }
                        let accepted_early = flags & state_flags::IA != 0;
                        if accepted_early {
                            stats.ida_early_accepts += 1;
                        }
                        Content::Ida {
                            ida,
                            q,
                            accepted_early,
                        }
                    }
                    _ => Content::Dfa {
                        hot: &c.hot,
                        q: c.hot.start(),
                    },
                };
                Entered::Frame(Frame::Complex {
                    src_cx,
                    tgt_cx: c,
                    content,
                })
            }
        }
    }
}

/// Handles character data against the innermost frame. Returns whether the
/// text is admissible. The first run of a simple value stays borrowed; only
/// a second run (CDATA boundary, comment split) forces an owned buffer.
///
/// `known_ws` is the tape's build-time classification: `true` proves the
/// run is all ASCII whitespace (so mixed-content admissibility needs no
/// re-scan), `false` means unknown and the full check runs — which also
/// covers Unicode whitespace the tape never classifies.
fn on_text<'t>(stack: &mut [Frame<'_, 't>], t: Cow<'t, str>, known_ws: bool) -> bool {
    match stack.last_mut() {
        Some(Frame::Simple { text, .. }) => {
            match text {
                None => *text = Some(t),
                Some(prev) => prev.to_mut().push_str(&t),
            }
            true
        }
        Some(Frame::Complex { .. }) | None => known_ws || all_xml_whitespace(&t),
    }
}

/// Whether `s` is all whitespace, with a byte-wise fast path for the four
/// ASCII whitespace characters (the overwhelmingly common case between
/// element tags). The first clause decides every ASCII string — it fails
/// on any non-whitespace ASCII byte — and only strings containing
/// non-ASCII bytes fall through to the full Unicode check, preserving the
/// `char::is_whitespace` semantics the tree validators use.
#[inline]
fn all_xml_whitespace(s: &str) -> bool {
    s.bytes().all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        || (!s.is_ascii() && s.chars().all(char::is_whitespace))
}

enum Entered<'a, 't> {
    Frame(Frame<'a, 't>),
    Skip,
    Reject,
}

/// One-call convenience: preprocess nothing, reuse an existing context.
pub fn validate_xml_stream(
    ctx: &CastContext<'_>,
    xml_text: &str,
    alphabet: &Alphabet,
) -> Result<(CastOutcome, ValidationStats), XmlError> {
    StreamingCast::new(ctx).validate_str(xml_text, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{SchemaBuilder, SimpleType};
    use schemacast_tree::{Doc, WhitespaceMode};

    fn schemas() -> (
        schemacast_schema::AbstractSchema,
        schemacast_schema::AbstractSchema,
        Alphabet,
    ) {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, optional: bool| {
            let mut b = SchemaBuilder::new(ab);
            let text = b.simple("Text", SimpleType::string()).unwrap();
            let addr = b.declare("Addr").unwrap();
            b.complex(addr, "(name, city)", &[("name", text), ("city", text)])
                .unwrap();
            let items = b.declare("Items").unwrap();
            b.complex(items, "item*", &[("item", text)]).unwrap();
            let po = b.declare("PO").unwrap();
            let model = if optional {
                "(ship, bill?, items)"
            } else {
                "(ship, bill, items)"
            };
            b.complex(
                po,
                model,
                &[("ship", addr), ("bill", addr), ("items", items)],
            )
            .unwrap();
            b.root("po", po);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, true);
        let target = mk(&mut ab, false);
        (source, target, ab)
    }

    const VALID: &str = "<po>\n  <ship><name>A</name><city>C</city></ship>\n  \
                         <bill><name>B</name><city>C</city></bill>\n  \
                         <items><item>x</item><item>y</item></items>\n</po>";
    const NO_BILL: &str =
        "<po><ship><name>A</name><city>C</city></ship><items><item>x</item></items></po>";

    #[test]
    fn streaming_accepts_valid_documents() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc.validate_str(VALID, &ab).expect("well-formed");
        assert!(out.is_valid());
        // ship/bill/items pairs are subsumed: their subtrees were skipped.
        assert!(stats.subsumed_skips >= 3);
        assert!(stats.nodes_visited <= 4);
        // And skipped *lexically*: bytes inside them were never tokenized.
        assert!(stats.bytes_skipped > 0);
        assert!(stats.events_avoided > 0);
        // Every non-self-closing skip was an O(1) tape hop — no rescans.
        assert!(stats.tape_skip_hops >= 3);
        // The tape-fed path records its stage-1 instrumentation.
        assert!(stats.tape_events > 0);
    }

    #[test]
    fn streaming_rejects_early_without_draining() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc.validate_str(NO_BILL, &ab).expect("well-formed");
        assert!(!out.is_valid());
        // Decided within the root content model (ship, then items ⇒ IR).
        assert!(stats.ida_early_rejects >= 1 || stats.disjoint_rejects >= 1);
    }

    #[test]
    fn streaming_agrees_with_tree_validator() {
        let (source, target, mut ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        for text in [
            VALID,
            NO_BILL,
            "<po><ship><name>A</name><city>C</city></ship>\
             <bill><name>B</name><city>C</city></bill><items/></po>",
            "<po><items/></po>",
            "<other/>",
        ] {
            let (stream_out, _) = sc.validate_str(text, &ab).expect("well-formed");
            let xml = schemacast_xml::parse_document(text).expect("dom");
            let doc = Doc::from_xml(&xml.root, &mut ab, WhitespaceMode::Trim);
            let tree_out = ctx.validate(&doc);
            let truth = target.accepts_document(&doc);
            // Cast verdicts are guaranteed only under the precondition;
            // every input here except "<other/>" is source-valid, and
            // "<other/>" has no source root type so both validators fall
            // back to full checking.
            assert_eq!(stream_out.is_valid(), truth, "stream vs truth on {text}");
            assert_eq!(tree_out.is_valid(), truth, "tree vs truth on {text}");
        }
    }

    #[test]
    fn lexical_path_agrees_with_depth_counting_oracle() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        for text in [
            VALID,
            NO_BILL,
            "<po><items/></po>",
            "<other/>",
            "<po>stray<ship/></po>",
        ] {
            let (fast_out, fast_stats) = sc.validate_str(text, &ab).expect("well-formed");
            let (oracle_out, oracle_stats) = sc
                .validate_events(PullParser::new(text), &ab)
                .expect("well-formed");
            assert_eq!(fast_out, oracle_out, "outcome on {text}");
            // Decision counters are identical; only the lexical counters
            // differ (the oracle tokenizes everything).
            let mut fast_cmp = fast_stats;
            fast_cmp.bytes_skipped = 0;
            fast_cmp.events_avoided = 0;
            fast_cmp.index_build_micros = 0;
            fast_cmp.tape_events = 0;
            fast_cmp.tape_skip_hops = 0;
            assert_eq!(fast_cmp, oracle_stats, "stats on {text}");
            assert_eq!(oracle_stats.bytes_skipped, 0);
            assert_eq!(oracle_stats.events_avoided, 0);
            assert_eq!(oracle_stats.tape_events, 0);
            assert_eq!(oracle_stats.tape_skip_hops, 0);
            assert!(fast_stats.tape_events > 0, "tape built on {text}");
        }
    }

    #[test]
    fn streaming_checks_simple_values() {
        let mut ab = Alphabet::new();
        let mk = |ab: &mut Alphabet, max: i64| {
            let mut b = SchemaBuilder::new(ab);
            let mut qty = SimpleType::of(schemacast_schema::AtomicKind::PositiveInteger);
            qty.facets.max_exclusive = Some(schemacast_schema::BoundValue::Num(
                schemacast_schema::Decimal::from_i64(max),
            ));
            let q = b.simple("Qty", qty).unwrap();
            let root = b.declare("Root").unwrap();
            b.complex(root, "qty+", &[("qty", q)]).unwrap();
            b.root("r", root);
            b.finish().unwrap()
        };
        let source = mk(&mut ab, 200);
        let target = mk(&mut ab, 100);
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, stats) = sc
            .validate_str("<r><qty>50</qty><qty>99</qty></r>", &ab)
            .expect("ok");
        assert!(out.is_valid());
        assert_eq!(stats.value_checks, 2);
        let (out, _) = sc
            .validate_str("<r><qty>50</qty><qty>150</qty></r>", &ab)
            .expect("ok");
        assert!(!out.is_valid());
    }

    #[test]
    fn streaming_rejects_malformed_xml_as_error() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        assert!(sc.validate_str("<po><ship></po>", &ab).is_err());
        assert!(sc
            .validate_events(PullParser::new("<po><ship></po>"), &ab)
            .is_err());
    }

    #[test]
    fn streaming_text_in_element_content_is_invalid() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let (out, _) = sc
            .validate_str("<po>stray text<ship/><bill/><items/></po>", &ab)
            .expect("well-formed");
        assert!(!out.is_valid());
    }

    #[test]
    fn scratch_is_reusable_across_documents() {
        let (source, target, ab) = schemas();
        let ctx = CastContext::new(&source, &target, &ab);
        let sc = StreamingCast::new(&ctx);
        let mut scratch = StreamScratch::default();
        for _ in 0..3 {
            let (out, _) = sc
                .validate_str_with(VALID, &ab, &mut scratch)
                .expect("well-formed");
            assert!(out.is_valid());
            let (out, _) = sc
                .validate_str_with("<other/>", &ab, &mut scratch)
                .expect("well-formed");
            assert!(!out.is_valid());
        }
    }
}
