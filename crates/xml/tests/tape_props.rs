//! Differential properties: the tape-fed pull parser ≡ the scalar lexer.
//!
//! [`PullParser`] runs off the stage-1 structural index;
//! [`ScalarParser`] is the preserved per-byte reference implementation.
//! These tests demand the two produce **identical** event streams —
//! payloads, interner ids, text-run splits, and (when the document is
//! malformed) the terminal error with its exact position and message — on
//! a randomized corpus whose payloads are chosen to derail a structural
//! classifier: CDATA sections containing `</…>`, comments containing
//! quotes and fake close tags, processing instructions, entity and
//! character references, self-closing tags, and a `DOCTYPE` prolog.
//!
//! An anti-vacuity floor (like `tests/lexical_skip_props.rs` at the
//! workspace root) proves the corpus actually exercises every adversarial
//! construct, so the equivalence above cannot pass by never generating
//! the hard cases.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_xml::pull::{PullEvent, PullParser};
use schemacast_xml::{ScalarParser, XmlError};
use std::borrow::Cow;

// ---------------------------------------------------------------------------
// Random document generator with adversarial payloads.
// ---------------------------------------------------------------------------

const LABELS: &[&str] = &["a", "b", "item", "po", "shipTo", "x-y", "ns:tag", "s"];
/// Text payloads chosen to confuse a structural classifier.
const TEXTS: &[&str] = &[
    "plain",
    "  spaced out  ",
    "]]>",
    "a ]] > b",
    "greater > than",
    "quote \" and ' here",
    "&amp; &lt; entity",
    "&#65;&#x41; char refs",
    "mixed &gt; text",
];
const ATTR_VALUES: &[&str] = &[
    "v",
    "a > b",
    "/>",
    "fake/close",
    "x&amp;y",
    "&quot;q&quot;",
    "']]>'",
];
/// Non-element markup whose payloads mimic tags and quotes.
const NOISE: &[&str] = &[
    "<!-- a comment with <child>, \"quotes\", 'more' and ]]> inside -->",
    "<!--- tricky dashes -- >< ---->",
    "<![CDATA[raw <markup> & </fake> here]]>",
    "<![CDATA[]]]><![CDATA[> split sentinel]]>",
    "<?pi data with > and </fake> and \"quotes\" ?>",
    "<?x?>",
];

fn gen_element(rng: &mut SmallRng, depth: usize, out: &mut String) {
    let label = LABELS[rng.gen_range(0..LABELS.len())];
    out.push('<');
    out.push_str(label);
    for i in 0..rng.gen_range(0..3u32) {
        let value = ATTR_VALUES[rng.gen_range(0..ATTR_VALUES.len())];
        let quote = if value.contains('"') { '\'' } else { '"' };
        out.push_str(&format!(" at{i}={quote}{value}{quote}"));
    }
    if depth == 0 || rng.gen_bool(0.3) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for _ in 0..rng.gen_range(0..4u32) {
        match rng.gen_range(0..7u32) {
            0 | 1 => gen_element(rng, depth - 1, out),
            2 | 3 => out.push_str(TEXTS[rng.gen_range(0..TEXTS.len())]),
            _ => out.push_str(NOISE[rng.gen_range(0..NOISE.len())]),
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

fn gen_document(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    if rng.gen_bool(0.3) {
        out.push_str("<?xml version=\"1.0\"?>");
    }
    if rng.gen_bool(0.25) {
        out.push_str("<!-- leading comment with <tags> and \"quotes\" -->");
    }
    if rng.gen_bool(0.25) {
        out.push_str("<!DOCTYPE root [ <!ELEMENT a ANY> ]>");
    }
    if rng.gen_bool(0.2) {
        out.push_str("\n  \t ");
    }
    let depth = rng.gen_range(1..5);
    gen_element(&mut rng, depth, &mut out);
    if rng.gen_bool(0.2) {
        out.push_str("<!-- trailing comment -->");
    }
    out
}

// ---------------------------------------------------------------------------
// The differential harness.
// ---------------------------------------------------------------------------

type Stream<'a> = Vec<Result<PullEvent<'a>, XmlError>>;

/// Drains both parsers and demands bit-identical streams: every event
/// (names, interner ids, attributes, text runs and their split points) and,
/// if the document is malformed, the same terminal error at the same
/// offset/line/column with the same message — errors are lazy on both
/// sides, so the events *before* the error must match too.
fn assert_parsers_agree(input: &str) {
    let tape: Stream<'_> = PullParser::new(input).collect();
    let scalar: Stream<'_> = ScalarParser::new(input).collect();
    assert_eq!(tape, scalar, "streams diverge on {input:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn tape_parser_matches_scalar_reference(seed in 0u64..200_000) {
        assert_parsers_agree(&gen_document(seed));
    }
}

#[test]
fn handcrafted_adversarial_payloads() {
    for doc in [
        // CDATA containing a fake close for the open element.
        "<r><s><![CDATA[</s>]]></s></r>",
        // CDATA whose `]]>` sentinel is split across two sections.
        "<r><![CDATA[a]]]><![CDATA[]>b]]></r>",
        // Comment containing quotes, a fake close, and lone dashes.
        "<r><!-- \"</r>\" 'still - a - comment' --></r>",
        // PI with quotes and markup inside.
        "<r><?target \"</r>\" <fake> ?></r>",
        // Entity and character references, in text and attribute values.
        "<r a=\"x&amp;y&#33;\">one &lt; two &#x41;</r>",
        // Self-closing tags, with and without attributes.
        "<r><a/><b x='1'/><c  /></r>",
        // DOCTYPE with an internal subset containing '>'.
        "<!DOCTYPE r [ <!ELEMENT r ANY> ]><r/>",
        // Whitespace-heavy prolog and epilog.
        "  \n<?xml version=\"1.0\"?>\n  <r/>\n  ",
        // Text runs split by comments and CDATA at every boundary.
        "<r>a<!--x-->b<![CDATA[c]]>d<?p?>e</r>",
        // ']]>' as ordinary element text.
        "<r>]]></r>",
    ] {
        assert_parsers_agree(doc);
    }
}

#[test]
fn malformed_documents_error_identically() {
    for doc in [
        "",
        "   ",
        "no markup at all",
        "<",
        "<r",
        "<r>",
        "<r a=>",
        "<r a='unterminated>",
        "<r></x>",
        "<r></r",
        "<r><!-- unterminated",
        "<r><![CDATA[ unterminated",
        "<![CDATA[outside prolog]]>",
        "<r><?pi unterminated",
        "<!DOCTYPE r",
        "<!DOCTYPE r [ <!ELEMENT r ANY>",
        "<r/><r/>",
        "<r>&unknown;</r>",
        "<r>&#xZZ;</r>",
        "<r>&#1114112;</r>",
        "</orphan>",
        "text<r/>",
        "<r/>trailing",
        "<>",
        "</>",
        "<r><a></r></a>",
    ] {
        assert_parsers_agree(doc);
    }
}

// ---------------------------------------------------------------------------
// Anti-vacuity floor.
// ---------------------------------------------------------------------------

/// The equivalence property is meaningless if the generator never emits
/// the constructs it claims to test, so a deterministic slice of the same
/// corpus must demonstrably contain each of them — and the parser must
/// produce the event shapes they imply (owned text from entity expansion,
/// split text runs from CDATA, start/end pairs from self-closing tags).
#[test]
fn corpus_exercises_every_adversarial_construct() {
    let mut cdata_docs = 0usize;
    let mut comment_docs = 0usize;
    let mut pi_docs = 0usize;
    let mut doctype_events = 0usize;
    let mut owned_text_events = 0usize;
    let mut self_closing = 0usize;
    let mut attr_entities = 0usize;
    for seed in 0..300u64 {
        let doc = gen_document(seed);
        cdata_docs += usize::from(doc.contains("<![CDATA["));
        comment_docs += usize::from(doc.contains("<!--"));
        pi_docs += usize::from(doc.contains("<?pi") || doc.contains("<?x"));
        self_closing += usize::from(doc.contains("/>"));
        for event in PullParser::new(&doc) {
            match event.expect("generated documents are well-formed") {
                PullEvent::Doctype { .. } => doctype_events += 1,
                PullEvent::Text(Cow::Owned(_)) => owned_text_events += 1,
                PullEvent::Start { attributes, .. } => {
                    attr_entities += attributes
                        .iter()
                        .filter(|(_, v)| matches!(v, Cow::Owned(_)))
                        .count();
                }
                _ => {}
            }
        }
    }
    for (what, n) in [
        ("CDATA sections", cdata_docs),
        ("comments", comment_docs),
        ("processing instructions", pi_docs),
        ("DOCTYPE declarations", doctype_events),
        ("entity-expanded text runs", owned_text_events),
        ("self-closing tags", self_closing),
        ("entity-expanded attribute values", attr_entities),
    ] {
        assert!(
            n > 0,
            "corpus never produced {what} — the differential property is \
             vacuous for that construct"
        );
    }
}
