//! Table-driven conformance tests for the XML parser: accepted documents
//! with their expected shapes, and rejected documents with the reason the
//! error message must mention. Both the DOM and the pull parser are run on
//! every case and must agree.

use schemacast_xml::{parse_document, PullEvent, PullParser};

struct Accept {
    input: &'static str,
    root: &'static str,
    children: usize,
    text: &'static str,
}

const ACCEPTED: &[Accept] = &[
    Accept {
        input: "<a/>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<a></a>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<a>x</a>",
        root: "a",
        children: 1,
        text: "x",
    },
    Accept {
        input: "<a><b/><c/></a>",
        root: "a",
        children: 2,
        text: "",
    },
    Accept {
        input: "<a>x<b/>y</a>",
        root: "a",
        children: 3,
        text: "xy",
    },
    Accept {
        input: "<a>&#x41;&#66;</a>",
        root: "a",
        children: 1,
        text: "AB",
    },
    Accept {
        input: "<a>&amp;&lt;&gt;&quot;&apos;</a>",
        root: "a",
        children: 1,
        text: "&<>\"'",
    },
    Accept {
        input: "<a><![CDATA[<not-a-tag/>]]></a>",
        root: "a",
        children: 1,
        text: "<not-a-tag/>",
    },
    Accept {
        input: "<a><!-- <ignored/> --></a>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<a><?pi with data?></a>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<?xml version=\"1.0\"?>\n<a/>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<ns:a xmlns:ns=\"urn:x\"><ns:b/></ns:a>",
        root: "ns:a",
        children: 1,
        text: "",
    },
    Accept {
        input: "<a x=\"1\" y='2'/>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<a>\u{1F980} crab</a>",
        root: "a",
        children: 1,
        text: "\u{1F980} crab",
    },
    Accept {
        input: "<_under.score-dash/>",
        root: "_under.score-dash",
        children: 0,
        text: "",
    },
    Accept {
        input: "<!DOCTYPE a><a/>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<!DOCTYPE a SYSTEM \"a.dtd\"><a/>",
        root: "a",
        children: 0,
        text: "",
    },
    Accept {
        input: "<a>one &amp; two<![CDATA[ & three]]></a>",
        root: "a",
        children: 1,
        text: "one & two & three",
    },
];

const REJECTED: &[(&str, &str)] = &[
    ("", "expected"),
    ("<", "name"),
    ("<a", "tag"),
    ("<a>", "end of input"),
    ("</a>", "name"),
    ("<a></b>", "mismatched"),
    ("<a><b></a></b>", "mismatched"),
    ("<a/><b/>", "after document element"),
    ("text", "expected"),
    ("<a>&nosuch;</a>", "entity"),
    ("<a>&#xZZ;</a>", "hexadecimal"),
    ("<a>&#99999999;</a>", "out of range"),
    ("<a x=1/>", "quoted"),
    ("<a x=\"1\" x=\"2\"/>", "duplicate"),
    ("<a x=\"<\"/>", "'<'"),
    ("<a><![CDATA[open</a>", "CDATA"),
    ("<a><!-- open</a>", "comment"),
    ("<a ,bad/>", "tag"),
    ("<a>&unterminated", "entity"),
];

#[test]
fn accepted_documents_parse_with_expected_shape() {
    for case in ACCEPTED {
        let doc = parse_document(case.input)
            .unwrap_or_else(|e| panic!("{:?} should parse: {e}", case.input));
        assert_eq!(doc.root.name, case.root, "root of {:?}", case.input);
        assert_eq!(
            doc.root.children.len(),
            case.children,
            "children of {:?}",
            case.input
        );
        assert_eq!(doc.root.text(), case.text, "text of {:?}", case.input);
    }
}

#[test]
fn rejected_documents_fail_with_informative_errors() {
    for (input, needle) in REJECTED {
        let err = parse_document(input)
            .err()
            .unwrap_or_else(|| panic!("{input:?} should be rejected"));
        assert!(
            err.message.to_lowercase().contains(&needle.to_lowercase()),
            "error for {input:?} should mention {needle:?}, got: {}",
            err.message
        );
    }
}

#[test]
fn pull_parser_agrees_on_every_case() {
    for case in ACCEPTED {
        let events: Result<Vec<_>, _> = PullParser::new(case.input).collect();
        let events = events.unwrap_or_else(|e| panic!("pull rejects {:?}: {e}", case.input));
        let starts = events
            .iter()
            .filter(|e| matches!(e, PullEvent::Start { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, PullEvent::End { .. }))
            .count();
        assert_eq!(starts, ends, "balanced events for {:?}", case.input);
        assert!(starts >= 1);
    }
    for (input, _) in REJECTED {
        let result: Result<Vec<_>, _> = PullParser::new(input).collect();
        assert!(result.is_err(), "pull should reject {input:?}");
    }
}

#[test]
fn round_trip_is_stable() {
    for case in ACCEPTED {
        let doc = parse_document(case.input).expect("parses");
        let text = schemacast_xml::to_string(&doc.root);
        let doc2 = parse_document(&text).expect("round-trip parses");
        // Serialization may differ (e.g. CDATA becomes escaped text), but
        // a second round trip is a fixed point.
        let text2 = schemacast_xml::to_string(&doc2.root);
        assert_eq!(text, text2, "fixed point for {:?}", case.input);
        // Text content is preserved exactly.
        assert_eq!(doc.root.text(), doc2.root.text());
    }
}

#[test]
fn deeply_nested_documents_parse_iteratively() {
    // 50k nesting: both parsers are iterative.
    let mut input = String::new();
    for _ in 0..50_000 {
        input.push_str("<d>");
    }
    input.push('x');
    for _ in 0..50_000 {
        input.push_str("</d>");
    }
    let events: Result<Vec<_>, _> = PullParser::new(&input).collect();
    assert_eq!(events.expect("parses").len(), 100_001);
}
