//! Zero-copy and lexical-skip guarantees of the pull parser.
//!
//! Two families of properties over randomly generated documents:
//!
//! 1. **Zero-copy**: on documents without entity references, every event
//!    payload (element name, attribute name/value, text run) is
//!    `Cow::Borrowed` *and* its bytes lie inside the input buffer — i.e.
//!    the no-entity fast path performs zero per-event `String`
//!    allocations. (The workspace denies `unsafe_code`, so instead of a
//!    counting global allocator this asserts borrowed-ness plus pointer
//!    ranges — any allocation would have to produce an owned `Cow` or a
//!    slice outside the input.)
//! 2. **Skip oracle**: forking the parser just after any start tag,
//!    `skip_subtree()` lands at exactly the byte offset where depth-counted
//!    event consumption lands, reports exactly the bytes and tag events the
//!    depth counter saw, and the two forks produce identical event streams
//!    afterwards — including documents with `]]>` inside text, `>` and `/`
//!    inside attribute values, and comments/CDATA containing `<child>`
//!    markup.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_xml::pull::{PullEvent, PullParser};
use std::borrow::Cow;

/// Whether `needle`'s bytes lie inside `haystack`'s buffer.
fn is_subslice(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_ptr() as usize;
    let n = needle.as_ptr() as usize;
    n >= h && n + needle.len() <= h + haystack.len()
}

// The whole point is to distinguish Borrowed from Owned, so `&str` can't
// replace the `&Cow` parameter here.
#[allow(clippy::ptr_arg)]
fn assert_borrowed(input: &str, value: &Cow<'_, str>, what: &str) {
    match value {
        Cow::Borrowed(s) => assert!(
            is_subslice(input, s),
            "{what} {s:?} is borrowed but not a subslice of the input"
        ),
        Cow::Owned(s) => panic!("{what} {s:?} was allocated on the no-entity fast path"),
    }
}

// ---------------------------------------------------------------------------
// Random document generator (entity-free unless asked otherwise).
// ---------------------------------------------------------------------------

const LABELS: &[&str] = &["a", "b", "item", "po", "shipTo", "x-y", "ns:tag"];
/// Text payloads chosen to confuse a naive raw-byte scanner.
const TEXTS: &[&str] = &[
    "plain",
    "  spaced out  ",
    "]]>",
    "a ]] > b",
    "greater > than",
    "slash / close",
    "quote \" and ' here",
];
const ATTR_VALUES: &[&str] = &["v", "a > b", "/>", "fake/close", "two  words", "']]>'"];

fn gen_element(rng: &mut SmallRng, depth: usize, out: &mut String) {
    let label = LABELS[rng.gen_range(0..LABELS.len())];
    out.push('<');
    out.push_str(label);
    for i in 0..rng.gen_range(0..3u32) {
        let value = ATTR_VALUES[rng.gen_range(0..ATTR_VALUES.len())];
        // Alternate quote style; pick one that does not occur in the value.
        let quote = if value.contains('"') { '\'' } else { '"' };
        out.push_str(&format!(" at{i}={quote}{value}{quote}"));
    }
    if depth == 0 || rng.gen_bool(0.3) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for _ in 0..rng.gen_range(0..4u32) {
        match rng.gen_range(0..6u32) {
            0 | 1 => gen_element(rng, depth - 1, out),
            2 => out.push_str(TEXTS[rng.gen_range(0..TEXTS.len())]),
            3 => out.push_str("<!-- a comment with <child> and ]]> inside -->"),
            4 => out.push_str("<![CDATA[raw <markup> & </fake> here]]>"),
            _ => out.push_str("<?pi data with > and </fake> ?>"),
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

fn gen_document(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    if rng.gen_bool(0.3) {
        out.push_str("<?xml version=\"1.0\"?>");
    }
    if rng.gen_bool(0.2) {
        out.push_str("<!-- leading comment with <tags> -->");
    }
    let depth = rng.gen_range(1..5);
    gen_element(&mut rng, depth, &mut out);
    out
}

// ---------------------------------------------------------------------------
// 1. Zero-copy assertions.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_entity_fast_path_is_allocation_free(seed in 0u64..100_000) {
        let input = gen_document(seed);
        for event in PullParser::new(&input) {
            match event.expect("generated documents are well-formed") {
                PullEvent::Start { name, attributes, .. } => {
                    assert!(is_subslice(&input, name), "name {name:?}");
                    for (attr, value) in &attributes {
                        assert!(is_subslice(&input, attr), "attr name {attr:?}");
                        assert_borrowed(&input, &value, "attribute value");
                    }
                }
                PullEvent::End { name, .. } => {
                    assert!(is_subslice(&input, name), "end name {name:?}");
                }
                PullEvent::Text(t) => assert_borrowed(&input, &t, "text"),
                PullEvent::Doctype { name, internal } => {
                    assert!(is_subslice(&input, name));
                    if let Some(i) = internal {
                        assert!(is_subslice(&input, i));
                    }
                }
            }
        }
    }
}

#[test]
fn entities_force_owned_only_where_they_occur() {
    let input = "<r a=\"x&amp;y\" b=\"plain\">one &lt; two<sep/>clean</r>";
    let mut owned = 0;
    let mut borrowed = 0;
    for event in PullParser::new(input) {
        match event.expect("well-formed") {
            PullEvent::Start { attributes, .. } => {
                for (name, value) in &attributes {
                    match (name, value) {
                        ("a", Cow::Owned(v)) => {
                            assert_eq!(v, "x&y");
                            owned += 1;
                        }
                        ("b", Cow::Borrowed(v)) => {
                            assert_eq!(v, "plain");
                            borrowed += 1;
                        }
                        other => panic!("unexpected attribute {other:?}"),
                    }
                }
            }
            PullEvent::Text(Cow::Owned(t)) => {
                assert_eq!(t, "one < two");
                owned += 1;
            }
            PullEvent::Text(Cow::Borrowed(t)) => {
                assert_eq!(t, "clean");
                borrowed += 1;
            }
            _ => {}
        }
    }
    assert_eq!((owned, borrowed), (2, 2));
}

// ---------------------------------------------------------------------------
// 2. Skip oracle: lexical skipping ≡ depth-counted consumption.
// ---------------------------------------------------------------------------

/// For every element in `input`: fork the parser after its start tag, skip
/// lexically on one fork and consume by depth counting on the other, and
/// demand byte-identical landing state and identical tails.
fn check_skip_oracle(input: &str) {
    let mut parser = PullParser::new(input);
    while let Some(event) = parser.next() {
        let event = event.expect("well-formed");
        if !matches!(event, PullEvent::Start { .. }) {
            continue;
        }
        let mut lexical = parser.clone();
        let mut counted = parser.clone();

        let before = lexical.offset();
        let skipped = lexical.skip_subtree().expect("skip succeeds");

        let mut depth = 1usize;
        let mut tag_events = 0usize;
        while depth > 0 {
            match counted
                .next()
                .expect("stream ends only after subtree closes")
                .expect("well-formed")
            {
                PullEvent::Start { .. } => {
                    depth += 1;
                    tag_events += 1;
                }
                PullEvent::End { .. } => {
                    depth -= 1;
                    tag_events += 1;
                }
                _ => {}
            }
        }

        assert_eq!(
            lexical.offset(),
            counted.offset(),
            "skip landed at a different byte offset (input {input:?})"
        );
        assert_eq!(lexical.depth(), counted.depth(), "depth after skip");
        assert_eq!(
            skipped.bytes,
            lexical.offset() - before,
            "reported bytes vs actual scan distance"
        );
        if skipped.bytes == 0 {
            // Self-closing: the End event was already lexed and queued, so
            // nothing was avoided; the depth counter consumed exactly it.
            assert_eq!(skipped.events, 0);
            assert_eq!(tag_events, 1);
        } else {
            assert_eq!(
                skipped.events, tag_events,
                "avoided tag events vs depth-counted tag events"
            );
        }

        // The two forks must agree on everything that follows. Compare
        // modulo `NameId`: ids are parser-local dense indices, and the
        // lexical fork legitimately never interned names that only occur
        // inside the skipped subtree.
        let tail_lexical: Vec<_> = lexical
            .collect::<Result<Vec<_>, _>>()
            .expect("well-formed tail");
        let tail_counted: Vec<_> = counted
            .collect::<Result<Vec<_>, _>>()
            .expect("well-formed tail");
        let strip = |events: Vec<PullEvent<'_>>| -> Vec<String> {
            events
                .into_iter()
                .map(|e| match e {
                    PullEvent::Start {
                        name, attributes, ..
                    } => {
                        format!("start {name} {attributes:?}")
                    }
                    PullEvent::End { name, .. } => format!("end {name}"),
                    PullEvent::Text(t) => format!("text {t}"),
                    PullEvent::Doctype { name, .. } => format!("doctype {name}"),
                })
                .collect()
        };
        assert_eq!(
            strip(tail_lexical),
            strip(tail_counted),
            "event tails diverge"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn skip_subtree_matches_depth_counting(seed in 0u64..100_000) {
        check_skip_oracle(&gen_document(seed));
    }
}

#[test]
fn skip_oracle_on_handcrafted_tricky_payloads() {
    for doc in [
        // ']]>' inside ordinary text.
        "<r><s>a ]]> b</s><t/></r>",
        // '>' inside attribute values, both quote styles.
        "<r><s a='x > y' b=\"m > n\"><u/></s>ok</r>",
        // '/>' inside an attribute value of a non-self-closing tag.
        "<r><s a=\"/>\">body</s><after/></r>",
        // comments containing child markup and a fake close.
        "<r><s><!-- <child></s> --><real/></s><next/></r>",
        // CDATA containing a fake close tag for the skipped element.
        "<r><s><![CDATA[</s>]]><k/></s><z/></r>",
        // processing instruction containing '>' and a fake close.
        "<r><s><?pi > </s> ?><p/></s><q/></r>",
        // nested same-name elements (depth counting must not short-circuit).
        "<r><s><s><s/>text</s>more</s></r>",
        // self-closing skip target with attributes.
        "<r><s a='1' b=\"2\"/><tail>t</tail></r>",
        // entity references inside the skipped region (never resolved).
        "<r><s>&lt;&amp;&gt;<c>&#65;</c></s><d/></r>",
    ] {
        check_skip_oracle(doc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The unified DOM parser and the raw event stream accept/reject the
    // same documents (one tokenizer, one conformance behavior).
    #[test]
    fn dom_and_pull_agree_on_wellformedness(seed in 0u64..100_000) {
        let input = gen_document(seed);
        let via_dom = schemacast_xml::parse_document(&input);
        let via_pull: Result<Vec<_>, _> = PullParser::new(&input).collect();
        assert_eq!(via_dom.is_ok(), via_pull.is_ok());
    }
}
