//! Fuzz smoke: malformed and truncated inputs through the tape builder.
//!
//! The structural indexer runs *before* well-formedness is known, so it
//! must classify arbitrary garbage without panicking and hand the
//! tape-fed parser enough structure to reproduce the scalar lexer's
//! behavior **exactly** — same events, then the same error at the same
//! position. Three mutation families drive that:
//!
//! * every prefix truncation of a well-formed document (unterminated
//!   tags, comments, CDATA, PIs, DOCTYPE, attribute values — each
//!   truncation point lands inside a different construct);
//! * random single-byte substitutions from the structural byte set
//!   (`< > & " ' ] - / ! ? =` and NUL), the bytes the SWAR classifier
//!   keys on;
//! * random splices of structural fragments into random positions.
//!
//! Every mutated input is pushed through both parsers to completion; the
//! test fails on any panic (it propagates) and on any divergence in the
//! event/error stream. UB is out of scope by construction — the crate is
//! `deny(unsafe_code)`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_xml::pull::{PullEvent, PullParser};
use schemacast_xml::{ScalarParser, XmlError};

/// Seed documents covering every construct a truncation can bisect.
const SEEDS: &[&str] = &[
    "<po><shipTo country=\"US\"><name>Alice</name></shipTo><items><item part='872-AA'/></items></po>",
    "<?xml version=\"1.0\"?><!DOCTYPE r [ <!ELEMENT r ANY> ]><r a=\"x&amp;y\">t</r>",
    "<r><!-- comment with <fake> --><![CDATA[raw </r> bytes]]><?pi data?><s/></r>",
    "<r>&lt;one&gt; &#65; &#x42;<empty/>  tail  </r>",
    "<a><b><c><d>deep</d></c></b></a>",
];

type Stream<'a> = Vec<Result<PullEvent<'a>, XmlError>>;

fn assert_parity(input: &str) {
    let tape: Stream<'_> = PullParser::new(input).collect();
    let scalar: Stream<'_> = ScalarParser::new(input).collect();
    assert_eq!(tape, scalar, "streams diverge on {input:?}");
}

/// Every prefix of every seed, cut at char boundaries.
#[test]
fn truncations_never_panic_and_match_the_scalar_lexer() {
    let mut checked = 0usize;
    for seed in SEEDS {
        for end in 0..=seed.len() {
            if !seed.is_char_boundary(end) {
                continue;
            }
            assert_parity(&seed[..end]);
            checked += 1;
        }
    }
    assert!(
        checked > 300,
        "truncation sweep collapsed ({checked} cases)"
    );
}

/// Bytes the structural classifier keys on — substitutions land exactly on
/// its decision points.
const STRUCTURAL_BYTES: &[u8] = b"<>&\"']-/!?=\0 ";

fn mutate(seed: &str, rng: &mut SmallRng) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..3u32) {
            // Substitute an ASCII position with a structural byte.
            0 => {
                if let Some(at) = (0..bytes.len())
                    .map(|_| rng.gen_range(0..bytes.len()))
                    .find(|&i| bytes[i].is_ascii())
                {
                    bytes[at] = STRUCTURAL_BYTES[rng.gen_range(0..STRUCTURAL_BYTES.len())];
                }
            }
            // Splice a structural fragment at a random boundary.
            1 => {
                let frags: &[&[u8]] = &[
                    b"<!--",
                    b"-->",
                    b"<![CDATA[",
                    b"]]>",
                    b"<?",
                    b"?>",
                    b"</",
                    b"/>",
                    b"<!",
                    b"&#",
                    b"&amp;",
                    b"='",
                    b"=\"",
                ];
                let frag = frags[rng.gen_range(0..frags.len())];
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, frag.iter().copied());
            }
            // Delete a short run.
            _ => {
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    let len = rng.gen_range(1..=4usize).min(bytes.len() - at);
                    bytes.drain(at..at + len);
                }
            }
        }
    }
    // Parsers take &str: keep only valid UTF-8 mutants (lossy repair would
    // move bytes around and hide offset bugs).
    String::from_utf8(bytes).unwrap_or_else(|e| {
        let bytes = e.into_bytes();
        let valid_to = std::str::from_utf8(&bytes)
            .err()
            .map_or(bytes.len(), |err| err.valid_up_to());
        String::from_utf8_lossy(&bytes[..valid_to]).into_owned()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_mutations_never_panic_and_match_the_scalar_lexer(
        seed_ix in 0usize..5,
        rng_seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mutant = mutate(SEEDS[seed_ix], &mut rng);
        assert_parity(&mutant);
    }
}

/// Anti-vacuity: the mutation engine must actually produce malformed
/// inputs (and some well-formed survivors) — a sweep where everything
/// still parses would test nothing.
#[test]
fn mutation_corpus_contains_malformed_inputs() {
    let mut malformed = 0usize;
    let mut wellformed = 0usize;
    for rng_seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mutant = mutate(SEEDS[(rng_seed % 5) as usize], &mut rng);
        let ok = PullParser::new(&mutant).all(|e| e.is_ok());
        if ok {
            wellformed += 1;
        } else {
            malformed += 1;
        }
    }
    assert!(
        malformed > 20,
        "mutation engine produced only {malformed} malformed inputs"
    );
    assert!(
        wellformed > 0,
        "mutation engine destroyed every input — survivors also matter"
    );
}
