//! The stage-1 structural index: one SWAR classification pass over the raw
//! document producing a compact *tape* of markup boundaries.
//!
//! This is the simdjson idea transplanted to XML. Before any tokenization
//! happens, [`StructuralIndex::build`] scans the input once with the
//! word-at-a-time kernels in [`crate::scan`], classifying every `<`, `>`,
//! `&`, `"`, `'` and the multi-byte delimiters (`<!--`/`-->`,
//! `<![CDATA[`/`]]>`, `<?`/`?>`, `<!DOCTYPE`) into a sequence of
//! [`TapeEntry`] records:
//!
//! * tag entries carry the offsets of their `<` and `>` (found with a
//!   quote-aware scan, so `>` inside attribute values cannot split a tag);
//! * text entries carry their byte span plus a *has-entity* flag (`&`
//!   presence is classified here, so the entity-free fast path never
//!   rescans the text);
//! * comments and processing instructions produce **no** entries — the
//!   tape-fed parser never visits them at all;
//! * start-tag entries are *paired* with their structurally matching end
//!   tag during the same pass (a plain open-tag stack), recording both the
//!   tape index to resume at and the number of tag events in between —
//!   which is what turns [`crate::PullParser::skip_subtree`] into an O(1)
//!   hop.
//!
//! The tape is deliberately **structural, not lexical**: names, attributes
//! and entities are still lexed by the pull parser, but only inside spans
//! whose boundaries the tape already knows. Malformed-markup errors
//! therefore surface at event time exactly like the scalar lexer's; only
//! unterminated-construct errors (comment/CDATA/PI/DOCTYPE that never
//! close) are discovered during the scan and recorded as a terminal
//! [`TapeError`] that the parser replays lazily — events before the error
//! point are still delivered, matching the scalar lexer's laziness.
//!
//! The index is reusable: [`StructuralIndex::rebuild`] clears and refills
//! the entry vector in place, so batch workers (one index per
//! `StreamScratch`) classify thousands of documents with zero steady-state
//! allocation.

use crate::scan;

/// What a [`TapeEntry`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A start tag `<name …>` (possibly self-closing).
    Open,
    /// An end tag `</name>`.
    Close,
    /// A character-data run between markup.
    Text,
    /// A CDATA section.
    Cdata,
    /// The `<!DOCTYPE …>` declaration (recognized only in the prolog,
    /// mirroring the scalar lexer).
    Doctype,
}

/// Bit flags on a [`TapeEntry`].
pub mod flags {
    /// The tag ends in `/>` (set on [`super::EntryKind::Open`]).
    pub const SELF_CLOSING: u8 = 1;
    /// The text span contains at least one `&` (set on
    /// [`super::EntryKind::Text`]).
    pub const HAS_AMP: u8 = 2;
    /// The tag's `>` was never found; its `b` offset is the end of input.
    /// Event-time lexing reproduces the scalar lexer's error for it.
    pub const UNCLOSED: u8 = 4;
    /// Every byte of the text span is XML whitespace (space, tab, CR, LF) —
    /// set on [`super::EntryKind::Text`]. The validator uses this as a
    /// *sound hint*: set means definitely ignorable between elements with
    /// no re-scan; clear means "unknown" (the span may still be Unicode
    /// whitespace, which the slow path re-checks). Entity-bearing spans
    /// never carry it: `&` is not whitespace, and what an entity expands
    /// to is event-time knowledge.
    pub const ALL_WS: u8 = 8;
}

/// One record on the structural tape. 20 bytes, plain data.
///
/// Field meaning by kind:
///
/// | kind      | `a`            | `b`                    | `c`              | `d`                 |
/// |-----------|----------------|------------------------|------------------|---------------------|
/// | `Open`    | offset of `<`  | offset of `>`          | resume tape idx  | tag events within   |
/// | `Close`   | offset of `<`  | offset of `>`          | —                | —                   |
/// | `Text`    | span start     | span end (exclusive)   | —                | —                   |
/// | `Cdata`   | offset of `<`  | offset of `]]>`        | —                | —                   |
/// | `Doctype` | offset of `<`  | offset past `>`        | —                | —                   |
///
/// For `Open`, `c` is the tape index just past the structurally matching
/// `Close` entry (`u32::MAX` when the subtree never closes) and `d` is the
/// number of start/end tag events strictly inside the subtree plus the
/// matching end tag itself (self-closing tags count as two) — exactly the
/// count [`crate::SubtreeSkip::events`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeEntry {
    /// Entry classification.
    pub kind: EntryKind,
    /// Bit flags from [`flags`].
    pub flags: u8,
    /// First offset (see table).
    pub a: u32,
    /// Second offset (see table).
    pub b: u32,
    /// `Open`: resume tape index past the matching close (`u32::MAX` if
    /// unmatched).
    pub c: u32,
    /// `Open`: tag events within the subtree (including the end tag).
    pub d: u32,
}

/// A scan error discovered while building the tape (an unterminated
/// construct). The parser replays it *after* delivering every event that
/// precedes the error point, matching the scalar lexer's laziness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeError {
    /// Byte offset the scalar lexer would report the error at.
    pub offset: usize,
    /// The scalar lexer's message for the same condition.
    pub message: &'static str,
}

/// The structural tape for one document. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct StructuralIndex {
    entries: Vec<TapeEntry>,
    error: Option<TapeError>,
    /// Open-tag pairing stack, kept as a field so `rebuild` reuses its
    /// allocation: `(entry index, tag-event count just after the open)`.
    opens: Vec<(u32, u32)>,
}

impl StructuralIndex {
    /// An empty index (build it with [`rebuild`](Self::rebuild)).
    pub fn new() -> StructuralIndex {
        StructuralIndex::default()
    }

    /// Builds the index for `input` in one pass.
    pub fn build(input: &str) -> StructuralIndex {
        let mut ix = StructuralIndex::new();
        ix.rebuild(input);
        ix
    }

    /// Clears and rebuilds the index in place, reusing allocations.
    pub fn rebuild(&mut self, input: &str) {
        self.entries.clear();
        self.opens.clear();
        self.error = None;
        Builder {
            bytes: input.as_bytes(),
            ix: self,
            tag_events: 0,
            in_prolog: true,
        }
        .run();
        self.opens.clear();
    }

    /// The tape entries in document order.
    pub fn entries(&self) -> &[TapeEntry] {
        &self.entries
    }

    /// Number of tape entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The terminal scan error, if the document contains an unterminated
    /// construct. Entries before the error point are still present.
    pub fn error(&self) -> Option<TapeError> {
        self.error
    }
}

/// One tape-building pass. Separate from `StructuralIndex` so the entry
/// vector and pairing stack borrow-split cleanly.
struct Builder<'i, 'b> {
    bytes: &'b [u8],
    ix: &'i mut StructuralIndex,
    /// Running count of start/end tag events (self-closing counts two).
    tag_events: u32,
    /// Whether we are still in the prolog (only whitespace, comments, and
    /// PIs seen) — the only region where `<!DOCTYPE` is recognized.
    in_prolog: bool,
}

impl Builder<'_, '_> {
    fn run(&mut self) {
        // Offsets are stored as u32; refuse (gracefully) anything bigger.
        if u32::try_from(self.bytes.len()).is_err() {
            self.ix.error = Some(TapeError {
                offset: 0,
                message: "document larger than the 4 GiB structural-index limit",
            });
            return;
        }
        let mut pos = 0usize;
        while pos < self.bytes.len() {
            // One forward scan both finds the next `<` and classifies `&`
            // presence in the text run on the way — a separate
            // `contains_byte` pass over every span would double the bytes
            // the builder touches.
            let (lt, has_amp) = match scan::find_byte2(self.bytes, pos, b'<', b'&') {
                Some(i) if self.bytes[i] == b'<' => (Some(i), false),
                Some(amp) => (scan::find_byte(self.bytes, amp + 1, b'<'), true),
                None => (None, false),
            };
            let Some(lt) = lt else {
                self.text(pos, self.bytes.len(), has_amp);
                break;
            };
            if lt > pos {
                self.text(pos, lt, has_amp);
            }
            pos = match self.markup(lt) {
                Some(next) => next,
                None => return, // terminal scan error recorded
            };
        }
    }

    /// Classifies the markup starting at the `<` at `lt`; returns the next
    /// scan position, or `None` after recording a terminal error.
    fn markup(&mut self, lt: usize) -> Option<usize> {
        match self.bytes.get(lt + 1) {
            Some(b'!') => {
                if self.starts_with(lt, b"<!--") {
                    match scan::find_seq(self.bytes, lt + 4, b"-->") {
                        Some(end) => Some(end + 3),
                        None => self.fail(lt, "unterminated comment"),
                    }
                } else if self.starts_with(lt, b"<![CDATA[") {
                    match scan::find_seq(self.bytes, lt + 9, b"]]>") {
                        Some(end) => {
                            self.in_prolog = false;
                            self.push(EntryKind::Cdata, 0, lt, end);
                            Some(end + 3)
                        }
                        None => self.fail(lt, "unterminated CDATA section"),
                    }
                } else if self.in_prolog && self.starts_with(lt, b"<!DOCTYPE") {
                    self.doctype(lt)
                } else {
                    // `<!…` anywhere else lexes (and fails) as a start tag,
                    // exactly like the scalar lexer.
                    Some(self.open_tag(lt))
                }
            }
            Some(b'?') => match scan::find_seq(self.bytes, lt + 2, b"?>") {
                Some(end) => Some(end + 2),
                None => self.fail(lt, "unterminated processing instruction"),
            },
            Some(b'/') => {
                self.in_prolog = false;
                let idx = self.ix.entries.len() as u32;
                match scan::find_byte(self.bytes, lt + 2, b'>') {
                    Some(gt) => {
                        self.push(EntryKind::Close, 0, lt, gt);
                        self.tag_events += 1;
                        // Pair with the innermost open tag (structural
                        // pairing only; name matching is event-time work).
                        if let Some((open_idx, events_at_open)) = self.ix.opens.pop() {
                            let open = &mut self.ix.entries[open_idx as usize];
                            open.c = idx + 1;
                            open.d = self.tag_events - events_at_open;
                        }
                        Some(gt + 1)
                    }
                    None => {
                        // No `>` before EOF: event-time lexing reproduces
                        // the scalar "malformed end tag" error. Left
                        // unpaired so a skip cannot hop past it.
                        self.push_flagged(EntryKind::Close, flags::UNCLOSED, lt, self.bytes.len());
                        Some(self.bytes.len())
                    }
                }
            }
            _ => Some(self.open_tag(lt)),
        }
    }

    /// A start tag: quote-aware scan to its `>`.
    fn open_tag(&mut self, lt: usize) -> usize {
        self.in_prolog = false;
        let mut at = lt + 1;
        let gt = loop {
            match scan::find_byte3(self.bytes, at, b'>', b'"', b'\'') {
                Some(i) if self.bytes[i] == b'>' => break i,
                Some(i) => match scan::find_byte(self.bytes, i + 1, self.bytes[i]) {
                    Some(close_quote) => at = close_quote + 1,
                    None => {
                        // Unterminated attribute value: event-time lexing
                        // reproduces the scalar error.
                        self.push_flagged(EntryKind::Open, flags::UNCLOSED, lt, self.bytes.len());
                        return self.bytes.len();
                    }
                },
                None => {
                    self.push_flagged(EntryKind::Open, flags::UNCLOSED, lt, self.bytes.len());
                    return self.bytes.len();
                }
            }
        };
        let self_closing = gt > lt + 1 && self.bytes[gt - 1] == b'/';
        let idx = self.ix.entries.len() as u32;
        if self_closing {
            self.push_flagged(EntryKind::Open, flags::SELF_CLOSING, lt, gt);
            self.tag_events += 2;
        } else {
            self.push(EntryKind::Open, 0, lt, gt);
            self.tag_events += 1;
            self.ix.opens.push((idx, self.tag_events));
        }
        gt + 1
    }

    /// `<!DOCTYPE …>` with an optional `[internal subset]` — structural
    /// scan only; the parser re-lexes the details from the span.
    fn doctype(&mut self, lt: usize) -> Option<usize> {
        self.in_prolog = false;
        let mut at = lt + 9;
        loop {
            match scan::find_byte2(self.bytes, at, b'[', b'>') {
                Some(i) if self.bytes[i] == b'>' => {
                    self.push(EntryKind::Doctype, 0, lt, i + 1);
                    return Some(i + 1);
                }
                Some(open_bracket) => match scan::find_byte(self.bytes, open_bracket + 1, b']') {
                    Some(close_bracket) => at = close_bracket + 1,
                    None => {
                        return self.doctype_fail(
                            lt,
                            open_bracket + 1,
                            "unterminated internal DTD subset",
                        )
                    }
                },
                None => return self.doctype_fail(lt, self.bytes.len(), "unterminated DOCTYPE"),
            }
        }
    }

    /// A DOCTYPE declaration that never closes. The scalar lexer lexes the
    /// doctype *name* before it can notice the missing close, so a
    /// truncated `<!DOCTYPE` with a bad or absent name reports "expected a
    /// name" there — mirror that precedence for error parity.
    fn doctype_fail(&mut self, lt: usize, at: usize, message: &'static str) -> Option<usize> {
        let mut p = lt + "<!DOCTYPE".len();
        while p < self.bytes.len() && matches!(self.bytes[p], b' ' | b'\t' | b'\r' | b'\n') {
            p += 1;
        }
        if !self
            .bytes
            .get(p)
            .copied()
            .is_some_and(crate::pull::is_name_start)
        {
            return self.fail(p, "expected a name");
        }
        self.fail(at, message)
    }

    /// A character-data run `[start, end)` (never empty). `&` presence was
    /// classified by the caller's forward scan so the entity-free path
    /// never rescans the span.
    fn text(&mut self, start: usize, end: usize, has_amp: bool) {
        debug_assert!(start < end);
        debug_assert_eq!(has_amp, scan::contains_byte(self.bytes, start, end, b'&'));
        // One SWAR pass classifies the whole span as whitespace-only (or
        // not) at build time, so the validator never re-scans ignorable
        // text. Entity-bearing spans can never be all-whitespace (`&` is
        // not whitespace), so they skip the scan. This also subsumes the
        // prolog check — "still in the prolog" means exactly "nothing but
        // whitespace text so far", over the same four bytes.
        let ws_only = !has_amp && scan::all_ws(self.bytes, start, end);
        if self.in_prolog && !ws_only {
            self.in_prolog = false;
        }
        let mut entry_flags = 0;
        if has_amp {
            entry_flags |= flags::HAS_AMP;
        }
        if ws_only {
            entry_flags |= flags::ALL_WS;
        }
        self.push_flagged(EntryKind::Text, entry_flags, start, end);
    }

    fn push(&mut self, kind: EntryKind, entry_flags: u8, a: usize, b: usize) {
        self.push_flagged(kind, entry_flags, a, b);
    }

    fn push_flagged(&mut self, kind: EntryKind, entry_flags: u8, a: usize, b: usize) {
        self.ix.entries.push(TapeEntry {
            kind,
            flags: entry_flags,
            a: a as u32,
            b: b as u32,
            c: u32::MAX,
            d: 0,
        });
    }

    fn fail(&mut self, offset: usize, message: &'static str) -> Option<usize> {
        self.ix.error = Some(TapeError { offset, message });
        None
    }

    fn starts_with(&self, at: usize, prefix: &[u8]) -> bool {
        self.bytes[at..].starts_with(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(ix: &StructuralIndex) -> Vec<EntryKind> {
        ix.entries().iter().map(|e| e.kind).collect()
    }

    #[test]
    fn classifies_basic_markup() {
        let ix = StructuralIndex::build("<a x=\"1\"><b/>hi</a>");
        assert_eq!(
            kinds(&ix),
            vec![
                EntryKind::Open,
                EntryKind::Open,
                EntryKind::Text,
                EntryKind::Close
            ]
        );
        assert!(ix.error().is_none());
        let a = ix.entries()[0];
        assert_eq!((a.a, a.b), (0, 8));
        let b = ix.entries()[1];
        assert_ne!(b.flags & flags::SELF_CLOSING, 0);
        let text = ix.entries()[2];
        assert_eq!((text.a, text.b), (13, 15));
        assert_eq!(text.flags & flags::HAS_AMP, 0);
    }

    #[test]
    fn pairs_tags_with_resume_and_event_counts() {
        //                  0         1         2         3
        //                  0123456789012345678901234567890123456
        let ix = StructuralIndex::build("<r><skip><i></i><x/></skip><next/></r>");
        let entries = ix.entries();
        // r, skip, i, /i, x, /skip, next, /r
        let skip = entries[1];
        assert_eq!(skip.kind, EntryKind::Open);
        // Resume just past the `</skip>` entry (index 5).
        assert_eq!(skip.c, 6);
        // <i>, </i>, <x/> (×2), </skip> = 5 events.
        assert_eq!(skip.d, 5);
        let r = entries[0];
        assert_eq!(r.c, entries.len() as u32);
        // <skip>, <i>, </i>, <x/> (×2), </skip>, <next/> (×2), </r> = 9.
        assert_eq!(r.d, 9);
    }

    #[test]
    fn quotes_comments_cdata_and_pis_do_not_derail() {
        let input = "<r><s q='a>b'>x ]]> y<![CDATA[</s>]]><!-- </s> --><?pi </s> ?></s></r>";
        let ix = StructuralIndex::build(input);
        assert!(ix.error().is_none());
        assert_eq!(
            kinds(&ix),
            vec![
                EntryKind::Open,  // <r>
                EntryKind::Open,  // <s q='a>b'>
                EntryKind::Text,  // "x ]]> y"
                EntryKind::Cdata, // inner "</s>"
                EntryKind::Close, // the real </s>
                EntryKind::Close, // </r>
            ]
        );
        let s = ix.entries()[1];
        assert_eq!(s.c, 5, "resume past the real </s>");
    }

    #[test]
    fn amp_classification() {
        let ix = StructuralIndex::build("<a>x &amp; y</a><!---->");
        let text = ix.entries()[1];
        assert_eq!(text.kind, EntryKind::Text);
        assert_ne!(text.flags & flags::HAS_AMP, 0);
    }

    #[test]
    fn whitespace_only_text_classification() {
        let ix = StructuralIndex::build("<a>\n  <b/> \t\r\n x <c/>&#32;</a>");
        let texts: Vec<u8> = ix
            .entries()
            .iter()
            .filter(|e| e.kind == EntryKind::Text)
            .map(|e| e.flags)
            .collect();
        assert_eq!(texts.len(), 3);
        assert_ne!(texts[0] & flags::ALL_WS, 0, "newline+indent before <b/>");
        assert_eq!(texts[1] & flags::ALL_WS, 0, "\" \\t\\r\\n x \" has content");
        // The entity-bearing span never carries ALL_WS even though it
        // expands to a space: expansion is event-time knowledge.
        assert_ne!(texts[2] & flags::HAS_AMP, 0);
        assert_eq!(texts[2] & flags::ALL_WS, 0);
    }

    #[test]
    fn doctype_only_in_prolog() {
        let ix = StructuralIndex::build("<!DOCTYPE po [<!ELEMENT po EMPTY>]><po/>");
        assert_eq!(kinds(&ix), vec![EntryKind::Doctype, EntryKind::Open]);
        // After the root, `<!DOCTYPE` is a (doomed) start tag — same as the
        // scalar lexer.
        let ix = StructuralIndex::build("<po/><!DOCTYPE x>");
        assert_eq!(kinds(&ix), vec![EntryKind::Open, EntryKind::Open]);
    }

    #[test]
    fn unterminated_constructs_record_errors() {
        for (doc, message) in [
            ("<a><!-- oops", "unterminated comment"),
            ("<a><![CDATA[ oops", "unterminated CDATA section"),
            ("<a><?pi oops", "unterminated processing instruction"),
            ("<!DOCTYPE a [", "unterminated internal DTD subset"),
            ("<!DOCTYPE a ", "unterminated DOCTYPE"),
        ] {
            let ix = StructuralIndex::build(doc);
            let err = ix.error().unwrap_or_else(|| panic!("{doc:?} must err"));
            assert_eq!(err.message, message, "{doc:?}");
        }
        // Unterminated *tags* are not scan errors: they become UNCLOSED
        // entries whose event-time lexing reproduces the scalar error.
        let ix = StructuralIndex::build("<a href=\"unclosed");
        assert!(ix.error().is_none());
        assert_ne!(ix.entries()[0].flags & flags::UNCLOSED, 0);
    }

    #[test]
    fn rebuild_reuses_and_resets() {
        let mut ix = StructuralIndex::build("<a><!-- broken");
        assert!(ix.error().is_some());
        ix.rebuild("<b/>");
        assert!(ix.error().is_none());
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.entries()[0].kind, EntryKind::Open);
    }
}
