//! XML serialization with escaping and optional pretty-printing.

use crate::parser::{XmlElement, XmlNode};
use std::fmt::Write as _;

/// Escapes character data for element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serializes an element compactly (no added whitespace). Round-trips
/// through [`crate::parse_document`].
pub fn to_string(root: &XmlElement) -> String {
    let mut out = String::new();
    write_element(root, &mut out);
    out
}

/// Serializes with an XML declaration and 2-space indentation. Text-bearing
/// elements keep their text inline; structural elements get one child per
/// line — the layout used by the paper's experiment documents (whose
/// indentation whitespace contributes to DOM node counts).
pub fn to_pretty_string(root: &XmlElement) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_pretty(root, &mut out, 0);
    out.push('\n');
    out
}

fn write_open_tag(e: &XmlElement, out: &mut String, self_close: bool) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attributes {
        let _ = write!(out, " {}=\"{}\"", n, escape_attr(v));
    }
    out.push_str(if self_close { "/>" } else { ">" });
}

fn write_element(e: &XmlElement, out: &mut String) {
    if e.children.is_empty() {
        write_open_tag(e, out, true);
        return;
    }
    write_open_tag(e, out, false);
    for c in &e.children {
        match c {
            XmlNode::Element(child) => write_element(child, out),
            XmlNode::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    let _ = write!(out, "</{}>", e.name);
}

fn write_pretty(e: &XmlElement, out: &mut String, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    if e.children.is_empty() {
        write_open_tag(e, out, true);
        return;
    }
    let only_text = e.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
    write_open_tag(e, out, false);
    if only_text {
        for c in &e.children {
            if let XmlNode::Text(t) = c {
                out.push_str(&escape_text(t));
            }
        }
    } else {
        for c in &e.children {
            match c {
                XmlNode::Element(child) => {
                    out.push('\n');
                    write_pretty(child, out, depth + 1);
                }
                XmlNode::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&escape_text(trimmed));
                    }
                }
            }
        }
        out.push('\n');
        out.push_str(&indent);
    }
    let _ = write!(out, "</{}>", e.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn round_trip_compact() {
        let input = r#"<po id="7"><item>a &amp; b</item><empty/></po>"#;
        let doc = parse_document(input).expect("parse");
        let out = to_string(&doc.root);
        let doc2 = parse_document(&out).expect("reparse");
        assert_eq!(doc.root, doc2.root);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(
            escape_attr(r#"say "hi" & go"#),
            "say &quot;hi&quot; &amp; go"
        );
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let input = "<po><shipTo><name>x</name></shipTo><items><item/><item/></items></po>";
        let doc = parse_document(input).expect("parse");
        let pretty = to_pretty_string(&doc.root);
        assert!(pretty.starts_with("<?xml"));
        assert!(pretty.contains("\n  <shipTo>"));
        let doc2 = parse_document(&pretty).expect("reparse");
        // Structure modulo whitespace text nodes is preserved.
        assert_eq!(doc2.root.name, "po");
        assert_eq!(doc2.root.child_elements().count(), 2);
    }

    #[test]
    fn text_only_elements_stay_inline() {
        let doc = parse_document("<a><b>text</b></a>").expect("parse");
        let pretty = to_pretty_string(&doc.root);
        assert!(pretty.contains("<b>text</b>"));
    }
}
