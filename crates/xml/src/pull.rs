//! A pull (streaming) XML parser.
//!
//! Yields [`PullEvent`]s one at a time with O(depth) memory — the substrate
//! for streaming schema-cast validation, which realizes the paper's claim
//! that "the memory requirement of our algorithm does not vary with the
//! size of the document, but depends solely on the sizes of the schemas".
//!
//! The DOM parser in [`crate::parser`] accepts the same language; the two
//! are cross-checked by tests.

use crate::error::XmlError;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullEvent {
    /// The `<!DOCTYPE name [internal]>` declaration, if present (at most
    /// once, before the root element).
    Doctype {
        /// The document-type name.
        name: String,
        /// The raw internal subset, if any.
        internal: Option<String>,
    },
    /// A start tag (or the opening half of a self-closing tag).
    Start {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
    },
    /// An end tag (self-closing tags produce `Start` then `End`).
    End {
        /// Tag name.
        name: String,
    },
    /// Character data (entities resolved; adjacent runs may be split at
    /// CDATA boundaries).
    Text(String),
}

/// A streaming parser over an in-memory UTF-8 document.
///
/// # Examples
/// ```
/// use schemacast_xml::pull::{PullParser, PullEvent};
/// let mut p = PullParser::new("<a x='1'><b/>hi</a>");
/// let events: Result<Vec<_>, _> = p.collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 5); // <a>, <b>, </b>, "hi", </a>
/// assert!(matches!(&events[0], PullEvent::Start { name, .. } if name == "a"));
/// ```
pub struct PullParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    stack: Vec<String>,
    state: State,
    /// Queued event (self-closing tags emit two events).
    queued: Option<PullEvent>,
    /// Whether the document element has already been seen.
    seen_root: bool,
}

#[derive(PartialEq)]
enum State {
    Prolog,
    InDocument,
    Done,
    Failed,
}

impl<'a> PullParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> PullParser<'a> {
        PullParser {
            bytes: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            state: State::Prolog,
            queued: None,
            seen_root: false,
        }
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, message: &str) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            offset: self.pos,
            line,
            column: col,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn find_from(&self, from: usize, needle: &[u8]) -> Option<usize> {
        if from > self.bytes.len() {
            return None;
        }
        self.bytes[from..]
            .windows(needle.len())
            .position(|w| w == needle)
            .map(|i| from + i)
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        if !self.peek().is_some_and(is_name_start) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(is_name_char) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 name"))?
            .to_owned())
    }

    fn entity(&mut self) -> Result<String, XmlError> {
        self.pos += 1; // '&'
        let end = self.bytes[self.pos..]
            .iter()
            .position(|&b| b == b';')
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-UTF-8 entity"))?;
        let out = match name {
            "amp" => "&".to_owned(),
            "lt" => "<".to_owned(),
            "gt" => ">".to_owned(),
            "apos" => "'".to_owned(),
            "quot" => "\"".to_owned(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err("bad hexadecimal character reference"))?;
                char::from_u32(code)
                    .map(String::from)
                    .ok_or_else(|| self.err("character reference out of range"))?
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err("bad decimal character reference"))?;
                char::from_u32(code)
                    .map(String::from)
                    .ok_or_else(|| self.err("character reference out of range"))?
            }
            _ => return Err(self.err(&format!("unknown entity &{name};"))),
        };
        self.pos = end + 1;
        Ok(out)
    }

    fn attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => out.push_str(&self.entity()?),
                Some(_) => self.push_char(&mut out)?,
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn push_char(&mut self, out: &mut String) -> Result<(), XmlError> {
        let b = self.bytes[self.pos];
        if b < 0x80 {
            out.push(b as char);
            self.pos += 1;
            return Ok(());
        }
        let len = match b {
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            0xF0..=0xF7 => 4,
            _ => 1,
        };
        let end = (self.pos + len).min(self.bytes.len());
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid UTF-8"))?;
        out.push_str(s);
        self.pos = end;
        Ok(())
    }

    fn prolog_event(&mut self) -> Result<Option<PullEvent>, XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self
                    .find_from(self.pos + 2, b"?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with("<!--") {
                let end = self
                    .find_from(self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<!DOCTYPE") {
                self.pos += "<!DOCTYPE".len();
                self.skip_ws();
                let name = self.name()?;
                let mut internal = None;
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'[') => {
                            self.pos += 1;
                            let start = self.pos;
                            let end = self.bytes[self.pos..]
                                .iter()
                                .position(|&b| b == b']')
                                .map(|i| self.pos + i)
                                .ok_or_else(|| self.err("unterminated internal DTD subset"))?;
                            internal = Some(
                                std::str::from_utf8(&self.bytes[start..end])
                                    .map_err(|_| self.err("non-UTF-8 DTD subset"))?
                                    .to_owned(),
                            );
                            self.pos = end + 1;
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
                return Ok(Some(PullEvent::Doctype { name, internal }));
            } else {
                self.state = State::InDocument;
                return Ok(None);
            }
        }
    }

    fn document_event(&mut self) -> Result<Option<PullEvent>, XmlError> {
        // Between events inside the document.
        if self.stack.is_empty() {
            // Only misc allowed outside the root; find the root start tag or
            // the end of input.
            self.skip_ws();
            if self.pos == self.bytes.len() {
                if !self.seen_root {
                    return Err(self.err("no document element"));
                }
                self.state = State::Done;
                return Ok(None);
            }
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input inside element")),
            Some(b'<') => {
                if self.starts_with("</") {
                    self.pos += 2;
                    let close = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("malformed end tag"));
                    }
                    self.pos += 1;
                    match self.stack.pop() {
                        Some(open) if open == close => {}
                        Some(open) => {
                            return Err(self.err(&format!(
                                "mismatched end tag: expected </{open}>, found </{close}>"
                            )))
                        }
                        None => return Err(self.err("end tag with no open element")),
                    }
                    Ok(Some(PullEvent::End { name: close }))
                } else if self.starts_with("<!--") {
                    let end = self
                        .find_from(self.pos + 4, b"-->")
                        .ok_or_else(|| self.err("unterminated comment"))?;
                    self.pos = end + 3;
                    self.document_event()
                } else if self.starts_with("<![CDATA[") {
                    if self.stack.is_empty() {
                        return Err(self.err("character data outside the root element"));
                    }
                    let start = self.pos + 9;
                    let end = self
                        .find_from(start, b"]]>")
                        .ok_or_else(|| self.err("unterminated CDATA section"))?;
                    let text = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("non-UTF-8 CDATA"))?
                        .to_owned();
                    self.pos = end + 3;
                    Ok(Some(PullEvent::Text(text)))
                } else if self.starts_with("<?") {
                    let end = self
                        .find_from(self.pos + 2, b"?>")
                        .ok_or_else(|| self.err("unterminated processing instruction"))?;
                    self.pos = end + 2;
                    self.document_event()
                } else {
                    // Start tag.
                    if self.stack.is_empty() {
                        if self.seen_root {
                            return Err(self.err("content after document element"));
                        }
                        self.seen_root = true;
                    }
                    self.pos += 1;
                    let name = self.name()?;
                    let mut attributes = Vec::new();
                    loop {
                        self.skip_ws();
                        match self.peek() {
                            Some(b'/') => {
                                if !self.starts_with("/>") {
                                    return Err(self.err("malformed empty-element tag"));
                                }
                                self.pos += 2;
                                self.queued = Some(PullEvent::End { name: name.clone() });
                                return Ok(Some(PullEvent::Start { name, attributes }));
                            }
                            Some(b'>') => {
                                self.pos += 1;
                                self.stack.push(name.clone());
                                return Ok(Some(PullEvent::Start { name, attributes }));
                            }
                            Some(b) if is_name_start(b) => {
                                let attr = self.name()?;
                                self.skip_ws();
                                if self.peek() != Some(b'=') {
                                    return Err(self.err("expected '=' after attribute name"));
                                }
                                self.pos += 1;
                                self.skip_ws();
                                let value = self.attribute_value()?;
                                if attributes.iter().any(|(n, _)| *n == attr) {
                                    return Err(self.err(&format!("duplicate attribute {attr:?}")));
                                }
                                attributes.push((attr, value));
                            }
                            _ => return Err(self.err("malformed start tag")),
                        }
                    }
                }
            }
            Some(_) => {
                if self.stack.is_empty() {
                    return Err(self.err("character data outside the root element"));
                }
                let mut text = String::new();
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    if b == b'&' {
                        text.push_str(&self.entity()?);
                    } else {
                        self.push_char(&mut text)?;
                    }
                }
                Ok(Some(PullEvent::Text(text)))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<PullEvent>, XmlError> {
        if let Some(e) = self.queued.take() {
            return Ok(Some(e));
        }
        if self.state == State::Prolog {
            if let Some(e) = self.prolog_event()? {
                self.state = State::InDocument;
                return Ok(Some(e));
            }
        }
        match self.state {
            State::Done | State::Failed => Ok(None),
            _ => {
                let e = self.document_event()?;
                if e.is_none() && self.state == State::Done && !self.stack.is_empty() {
                    return Err(self.err("unclosed elements at end of input"));
                }
                Ok(e)
            }
        }
    }
}

impl<'a> Iterator for PullParser<'a> {
    type Item = Result<PullEvent, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || matches!(b, b'.' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_document, XmlElement, XmlNode};

    fn events(input: &str) -> Vec<PullEvent> {
        PullParser::new(input)
            .collect::<Result<Vec<_>, _>>()
            .expect("parses")
    }

    #[test]
    fn basic_event_stream() {
        let ev = events("<a x=\"1\"><b/>hi &amp; bye</a>");
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[0], PullEvent::Start { name, attributes }
            if name == "a" && attributes == &[("x".to_owned(), "1".to_owned())]));
        assert!(matches!(&ev[1], PullEvent::Start { name, .. } if name == "b"));
        assert!(matches!(&ev[2], PullEvent::End { name } if name == "b"));
        assert!(matches!(&ev[3], PullEvent::Text(t) if t == "hi & bye"));
        assert!(matches!(&ev[4], PullEvent::End { name } if name == "a"));
    }

    #[test]
    fn doctype_event() {
        let ev = events("<!DOCTYPE po [<!ELEMENT po EMPTY>]><po/>");
        assert!(matches!(&ev[0], PullEvent::Doctype { name, internal }
            if name == "po" && internal.as_deref() == Some("<!ELEMENT po EMPTY>")));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["<a>", "<a></b>", "<a/><b/>", "text", "<a>&bogus;</a>"] {
            let r: Result<Vec<_>, _> = PullParser::new(bad).collect();
            assert!(r.is_err(), "should reject {bad:?}");
        }
    }

    /// Build a DOM from pull events and compare against the DOM parser on a
    /// battery of documents.
    #[test]
    fn agrees_with_dom_parser() {
        fn build(input: &str) -> Result<XmlElement, crate::error::XmlError> {
            let mut stack: Vec<XmlElement> = Vec::new();
            let mut root: Option<XmlElement> = None;
            for ev in PullParser::new(input) {
                match ev? {
                    PullEvent::Doctype { .. } => {}
                    PullEvent::Start { name, attributes } => {
                        let mut e = XmlElement::new(name);
                        e.attributes = attributes;
                        stack.push(e);
                    }
                    PullEvent::End { .. } => {
                        let e = stack.pop().expect("balanced");
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(XmlNode::Element(e)),
                            None => root = Some(e),
                        }
                    }
                    PullEvent::Text(t) => {
                        if let Some(parent) = stack.last_mut() {
                            // Coalesce adjacent text like the DOM parser.
                            if let Some(XmlNode::Text(prev)) = parent.children.last_mut() {
                                prev.push_str(&t);
                            } else {
                                parent.children.push(XmlNode::Text(t));
                            }
                        }
                    }
                }
            }
            Ok(root.expect("root"))
        }

        for doc in [
            "<a><b><c/></b><b/></a>",
            "<t>&lt;x&gt; &#65;</t>",
            "<a>\n  <b>text</b>\n  <c/>\n</a>",
            "<r><![CDATA[<raw>]]>tail</r>",
            r#"<x a="1" b='two'/>"#,
            "<?xml version=\"1.0\"?><!-- c --><r><k>v</k></r>",
        ] {
            let via_pull = build(doc).expect("pull parses");
            let via_dom = parse_document(doc).expect("dom parses").root;
            assert_eq!(via_pull, via_dom, "document {doc:?}");
        }
    }

    #[test]
    fn depth_is_bounded_by_nesting() {
        let mut p = PullParser::new("<a><b><c>x</c></b></a>");
        let mut max_depth = 0;
        while let Some(ev) = p.next() {
            ev.expect("ok");
            max_depth = max_depth.max(p.depth());
        }
        assert_eq!(max_depth, 3);
    }
}
