//! A zero-copy pull (streaming) XML parser, fed by the stage-1 structural
//! index.
//!
//! Yields borrowed [`PullEvent`]s one at a time with O(depth) memory — the
//! substrate for streaming schema-cast validation, which realizes the
//! paper's claim that "the memory requirement of our algorithm does not vary
//! with the size of the document, but depends solely on the sizes of the
//! schemas".
//!
//! Four properties make this the hot-path tokenizer:
//!
//! * **Tape-fed dispatch.** Construction runs the SWAR structural indexer
//!   ([`crate::index::StructuralIndex`]) over the input once; `next()` is
//!   then a walk over precomputed [`TapeEntry`]
//!   records — no per-byte `position()` scans, no `starts_with` dispatch
//!   chains, and comments/PIs are never visited at all. Only the *interiors*
//!   of tags and entity-bearing text are lexed, inside spans whose
//!   boundaries the tape already knows.
//! * **Borrowed events.** Element and attribute names are `&str` slices of
//!   the input; text runs and attribute values are [`Cow`]s that stay
//!   borrowed unless entity resolution forces an owned buffer. On the
//!   no-entity path the parser performs **zero** per-event string
//!   allocations (asserted by `tests/zero_copy.rs`).
//! * **Lexer-level label interning.** Every distinct element name is
//!   assigned a dense per-document [`NameId`] by a fast hash table, so
//!   downstream consumers (the streaming cast, the tree builder) hash each
//!   *distinct* name once and afterwards work with integer ids.
//! * **O(1) subtree skipping.** The tape pairs every start tag with its
//!   structurally matching end tag at build time, so
//!   [`PullParser::skip_subtree`] is a single hop: set the cursor to the
//!   recorded resume index and the byte position past the recorded `>`.
//!   No byte between the tags is ever rescanned — this is what makes the
//!   paper's `R_sub` skip *lexical* rather than merely semantic, and it is
//!   measured by [`SubtreeSkip::hops`].
//!
//! The scalar reference lexer this replaced lives on as
//! [`crate::scalar::ScalarParser`]; a property suite
//! (`tests/tape_props.rs`) holds the two to event-for-event, error-for-error
//! equivalence. The DOM parser in [`crate::parser`] is a thin loop over
//! these events; there is exactly one production tokenizer in the workspace.

use crate::error::XmlError;
use crate::index::{flags, EntryKind, StructuralIndex, TapeEntry};
use crate::scan;
use std::borrow::Cow;

/// A dense per-document id for a distinct element name.
///
/// Ids are assigned by the parser's internal interner in first-appearance
/// order and are stable for the lifetime of the parser; `NameId(0)` is the
/// first distinct tag name seen. Use [`PullParser::name_of`] to recover the
/// string and [`PullParser::name_count`] for the table size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// The dense index of this name.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One parsing event, borrowing from the input document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullEvent<'a> {
    /// The `<!DOCTYPE name [internal]>` declaration, if present (at most
    /// once, before the root element).
    Doctype {
        /// The document-type name.
        name: &'a str,
        /// The raw internal subset, if any.
        internal: Option<&'a str>,
    },
    /// A start tag (or the opening half of a self-closing tag).
    Start {
        /// Tag name — a slice of the input.
        name: &'a str,
        /// The name's dense per-document id from the lexer interner.
        id: NameId,
        /// Lazy view of the attributes in document order. The tag was
        /// validated when the event was produced, but nothing is
        /// materialized up front — iterating re-lexes the (already
        /// validated) span, and values stay borrowed unless entity
        /// resolution forces an owned buffer.
        attributes: Attrs<'a>,
    },
    /// An end tag (self-closing tags produce `Start` then `End`).
    End {
        /// Tag name — a slice of the input.
        name: &'a str,
        /// The same id the matching [`PullEvent::Start`] carried.
        id: NameId,
    },
    /// Character data. Borrowed unless entity resolution forced an owned
    /// buffer; adjacent runs may be split at CDATA boundaries.
    Text(Cow<'a, str>),
}

/// A lazy, allocation-free view of a start tag's attributes.
///
/// The producing lexer has already validated the span (syntax, duplicate
/// names, entity references), so iteration cannot fail and nothing is
/// heap-allocated until a value containing an entity reference is actually
/// read. Compares and prints by content, so parity suites that hold two
/// parsers to event-for-event equality keep working unchanged.
#[derive(Clone, Copy)]
pub struct Attrs<'a> {
    text: &'a str,
    /// Byte offset of the attribute region (just after the tag name).
    start: usize,
    /// Attribute count, recorded by the validating lexer.
    count: usize,
}

impl<'a> Attrs<'a> {
    /// A view over a *validated* attribute region starting at `start` and
    /// holding `count` attributes.
    pub(crate) fn from_span(text: &'a str, start: usize, count: usize) -> Attrs<'a> {
        Attrs { text, start, count }
    }

    /// Number of attributes on the tag.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the tag has no attributes.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates `(name, value)` pairs in document order, lexing on demand.
    pub fn iter(&self) -> AttrIter<'a> {
        AttrIter {
            text: self.text,
            pos: self.start,
            remaining: self.count,
        }
    }

    /// The value of the attribute named `name`, if present.
    pub fn get(&self, name: &str) -> Option<Cow<'a, str>> {
        self.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Whether any of the (validated) attributes is named `name` — the
    /// lexers' duplicate check. Scans names only; never expands values.
    pub(crate) fn names_contain(&self, name: &str) -> bool {
        let mut pos = self.start;
        for _ in 0..self.count {
            let raw = scan_attr(self.text, pos);
            if raw.name == name {
                return true;
            }
            pos = raw.next;
        }
        false
    }
}

impl std::fmt::Debug for Attrs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for Attrs<'_> {
    fn eq(&self, other: &Attrs<'_>) -> bool {
        self.count == other.count && self.iter().eq(other.iter())
    }
}

impl Eq for Attrs<'_> {}

impl<'a> IntoIterator for Attrs<'a> {
    type Item = (&'a str, Cow<'a, str>);
    type IntoIter = AttrIter<'a>;
    fn into_iter(self) -> AttrIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Attrs<'a> {
    type Item = (&'a str, Cow<'a, str>);
    type IntoIter = AttrIter<'a>;
    fn into_iter(self) -> AttrIter<'a> {
        self.iter()
    }
}

/// Iterator over a validated attribute region (see [`Attrs`]).
#[derive(Clone)]
pub struct AttrIter<'a> {
    text: &'a str,
    pos: usize,
    remaining: usize,
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = (&'a str, Cow<'a, str>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = scan_attr(self.text, self.pos);
        self.pos = raw.next;
        let value = if raw.has_entity {
            match expand_entities_span(self.text, raw.value_start, raw.value_end) {
                Ok(s) => Cow::Owned(s),
                // Unreachable: the producing lexer validated every entity
                // reference in the span. Fall back to the raw slice rather
                // than panic.
                Err(_) => Cow::Borrowed(&self.text[raw.value_start..raw.value_end]),
            }
        } else {
            Cow::Borrowed(&self.text[raw.value_start..raw.value_end])
        };
        Some((raw.name, value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for AttrIter<'_> {}

/// One lexed attribute from a validated region.
struct RawAttr<'a> {
    name: &'a str,
    value_start: usize,
    value_end: usize,
    has_entity: bool,
    /// Byte offset just past the closing quote.
    next: usize,
}

/// Lexes the attribute at `pos` in a region the producing parser already
/// validated (so every delimiter it expects is present).
fn scan_attr(text: &str, mut pos: usize) -> RawAttr<'_> {
    let bytes = text.as_bytes();
    let ws = |b: u8| matches!(b, b' ' | b'\t' | b'\r' | b'\n');
    while ws(bytes[pos]) {
        pos += 1;
    }
    let name_start = pos;
    while is_name_char(bytes[pos]) {
        pos += 1;
    }
    let name = &text[name_start..pos];
    while ws(bytes[pos]) {
        pos += 1;
    }
    debug_assert_eq!(bytes[pos], b'=');
    pos += 1;
    while ws(bytes[pos]) {
        pos += 1;
    }
    let quote = bytes[pos];
    debug_assert!(matches!(quote, b'"' | b'\''));
    pos += 1;
    let value_start = pos;
    let mut has_entity = false;
    loop {
        let b = bytes[pos];
        if b == quote {
            break;
        }
        has_entity |= b == b'&';
        pos += 1;
    }
    RawAttr {
        name,
        value_start,
        value_end: pos,
        has_entity,
        next: pos + 1,
    }
}

/// Expands the entity references in `text[start..end]`. Errors carry the
/// byte offset and message the streaming lexers report (both delegate
/// here, which is what keeps their error behavior identical).
pub(crate) fn expand_entities_span(
    text: &str,
    start: usize,
    end: usize,
) -> Result<String, (usize, String)> {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(end - start);
    let mut pos = start;
    while pos < end {
        match scan::find_byte(bytes, pos, b'&') {
            Some(amp) if amp < end => {
                out.push_str(&text[pos..amp]);
                pos = amp + 1;
                let semi = scan::find_byte(bytes, pos, b';')
                    .ok_or_else(|| (pos, "unterminated entity reference".to_owned()))?;
                let name = &text[pos..semi];
                match name {
                    "amp" => out.push('&'),
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "apos" => out.push('\''),
                    "quot" => out.push('"'),
                    _ if name.starts_with("#x") || name.starts_with("#X") => {
                        let code = u32::from_str_radix(&name[2..], 16)
                            .map_err(|_| (pos, "bad hexadecimal character reference".to_owned()))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| {
                                (pos, "character reference out of range".to_owned())
                            })?,
                        );
                    }
                    _ if name.starts_with('#') => {
                        let code: u32 = name[1..]
                            .parse()
                            .map_err(|_| (pos, "bad decimal character reference".to_owned()))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| {
                                (pos, "character reference out of range".to_owned())
                            })?,
                        );
                    }
                    _ => return Err((pos, format!("unknown entity &{name};"))),
                }
                pos = semi + 1;
            }
            _ => {
                out.push_str(&text[pos..end]);
                pos = end;
            }
        }
    }
    Ok(out)
}

/// What [`PullParser::skip_subtree`] skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubtreeSkip {
    /// Raw bytes scanned past without tokenization.
    pub bytes: usize,
    /// Start/end tag events that were never tokenized (self-closing tags
    /// count as two, matching the event stream they replace; the skipped
    /// element's own end tag is included).
    pub events: usize,
    /// Tape hops the skip took: 1 on the O(1) indexed path, 0 when the
    /// element was self-closing (its end event was already lexed). The
    /// scalar reference parser always reports 0 — its skip rescans bytes.
    pub hops: usize,
}

/// How the parser holds its structural tape: built and owned by
/// [`PullParser::new`], or borrowed from a caller-managed reusable buffer
/// via [`PullParser::with_index`] (the batch engine's per-worker scratch).
#[derive(Clone)]
enum TapeRef<'a> {
    Owned(StructuralIndex),
    Borrowed(&'a StructuralIndex),
}

/// An open element: its interned name plus the precomputed skip target.
#[derive(Clone, Copy)]
struct OpenElem {
    id: NameId,
    /// Tape index just past the matching close (`u32::MAX` if unmatched).
    resume: u32,
    /// Tag events within the subtree (including the matching end tag).
    events: u32,
}

/// A streaming parser over an in-memory UTF-8 document.
///
/// Cloning a parser forks the stream: both copies independently continue
/// from the same position (used by the skip-oracle property tests).
///
/// # Examples
/// ```
/// use schemacast_xml::pull::{PullParser, PullEvent};
/// let mut p = PullParser::new("<a x='1'><b/>hi</a>");
/// let events: Result<Vec<_>, _> = p.collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 5); // <a>, <b>, </b>, "hi", </a>
/// assert!(matches!(&events[0], PullEvent::Start { name, .. } if *name == "a"));
/// ```
#[derive(Clone)]
pub struct PullParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    tape: TapeRef<'a>,
    /// Next tape entry to consume.
    cursor: usize,
    /// Byte cursor for event-time lexing (tag interiors, entities).
    pos: usize,
    /// Byte offset of the markup (or text run) of the last event returned.
    event_start: usize,
    stack: Vec<OpenElem>,
    names: NameTable<'a>,
    state: State,
    /// Queued event (self-closing tags emit two events).
    queued: Option<PullEvent<'a>>,
    /// Whether the document element has already been seen.
    seen_root: bool,
    /// Whether the most recent [`PullEvent::Text`] came from a tape span
    /// classified [`flags::ALL_WS`] at build time (see
    /// [`last_text_all_ws`](Self::last_text_all_ws)).
    last_text_all_ws: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Active,
    Done,
    Failed,
}

impl<'a> PullParser<'a> {
    /// Creates a parser over `input`, building its structural index.
    pub fn new(input: &'a str) -> PullParser<'a> {
        PullParser::from_tape(input, TapeRef::Owned(StructuralIndex::build(input)))
    }

    /// Creates a parser over `input` running off a caller-provided index
    /// (which must have been built — or rebuilt — for exactly this input).
    /// Lets batch workers reuse one tape allocation across documents.
    pub fn with_index(input: &'a str, index: &'a StructuralIndex) -> PullParser<'a> {
        PullParser::from_tape(input, TapeRef::Borrowed(index))
    }

    fn from_tape(input: &'a str, tape: TapeRef<'a>) -> PullParser<'a> {
        PullParser {
            text: input,
            bytes: input.as_bytes(),
            tape,
            cursor: 0,
            pos: 0,
            event_start: 0,
            stack: Vec::new(),
            names: NameTable::default(),
            state: State::Active,
            queued: None,
            seen_root: false,
            last_text_all_ws: false,
        }
    }

    /// The structural tape this parser runs off (owned or borrowed) —
    /// consumers read its length for instrumentation.
    #[inline]
    pub fn tape(&self) -> &StructuralIndex {
        match &self.tape {
            TapeRef::Owned(ix) => ix,
            TapeRef::Borrowed(ix) => ix,
        }
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Byte offset where the most recently returned event's markup (or text
    /// run) began.
    pub fn last_event_offset(&self) -> usize {
        self.event_start
    }

    /// Whether the most recently returned [`PullEvent::Text`] is *known*
    /// to be all XML whitespace, straight off the structural tape's
    /// build-time classification — no re-scan.
    ///
    /// This is a sound hint, not a complete one: `true` means every byte
    /// of the span is space/tab/CR/LF; `false` means unknown (CDATA
    /// sections and entity-bearing spans always report `false`, and the
    /// caller must re-check if it cares about Unicode whitespace).
    #[inline]
    pub fn last_text_all_ws(&self) -> bool {
        self.last_text_all_ws
    }

    /// Number of distinct element names interned so far.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// The string for an interned name id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this parser.
    pub fn name_of(&self, id: NameId) -> &'a str {
        self.names.get(id)
    }

    fn err(&self, message: &str) -> XmlError {
        self.err_at(self.pos, message)
    }

    fn err_at(&self, offset: usize, message: &str) -> XmlError {
        err_at(self.bytes, offset, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    /// Lexes a name as a borrowed slice (boundaries are ASCII delimiters,
    /// so slicing the `str` is always at char boundaries).
    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        if !self.peek().is_some_and(is_name_start) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(is_name_char) {
            self.pos += 1;
        }
        Ok(&self.text[start..self.pos])
    }

    /// Builds the owned expansion of `text[start..end]`, which is known to
    /// contain at least one `&` (shared kernel; errors carry the exact
    /// offsets the old inline lexer reported).
    fn expand_entities(&mut self, start: usize, end: usize) -> Result<String, XmlError> {
        expand_entities_span(self.text, start, end).map_err(|(o, m)| self.err_at(o, &m))
    }

    fn attribute_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        // First pass: find the closing quote, rejecting '<' and noting '&'.
        let mut has_entity = false;
        loop {
            match self.peek() {
                Some(q) if q == quote => break,
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => {
                    has_entity = true;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        let end = self.pos;
        let value = if has_entity {
            let expanded = self.expand_entities(start, end)?;
            Cow::Owned(expanded)
        } else {
            Cow::Borrowed(&self.text[start..end])
        };
        self.pos = end + 1; // past the closing quote
        Ok(value)
    }

    /// Emits the event for an `Open` tape entry: lex the name and
    /// attributes between the recorded `<` and `>`.
    fn open_event(&mut self, entry: TapeEntry) -> Result<PullEvent<'a>, XmlError> {
        let lt = entry.a as usize;
        self.pos = lt;
        if self.stack.is_empty() {
            if self.seen_root {
                return Err(self.err("content after document element"));
            }
            self.seen_root = true;
        }
        self.event_start = lt;
        self.pos = lt + 1;
        let name = self.name()?;
        let id = self.names.intern(name);
        // Validate-and-count pass: each attribute is fully checked (syntax,
        // quoting, entities, duplicates) but nothing is materialized — the
        // returned `Attrs` view re-lexes the already-validated span on
        // demand, so documents whose attributes are never read pay nothing.
        let attr_start = self.pos;
        let mut count = 0usize;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("malformed empty-element tag"));
                    }
                    let attributes = Attrs::from_span(self.text, attr_start, count);
                    self.pos += 2;
                    self.queued = Some(PullEvent::End { name, id });
                    return Ok(PullEvent::Start {
                        name,
                        id,
                        attributes,
                    });
                }
                Some(b'>') => {
                    let attributes = Attrs::from_span(self.text, attr_start, count);
                    self.pos += 1;
                    self.stack.push(OpenElem {
                        id,
                        resume: entry.c,
                        events: entry.d,
                    });
                    return Ok(PullEvent::Start {
                        name,
                        id,
                        attributes,
                    });
                }
                Some(b) if is_name_start(b) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    self.attribute_value()?;
                    if Attrs::from_span(self.text, attr_start, count).names_contain(attr) {
                        return Err(self.err(&format!("duplicate attribute {attr:?}")));
                    }
                    count += 1;
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
    }

    /// Emits the event for a `Close` tape entry. The close name is compared
    /// byte-for-byte against the open element's interned name — no second
    /// intern, and matching names imply matching ids.
    fn close_event(&mut self, entry: TapeEntry) -> Result<PullEvent<'a>, XmlError> {
        let lt = entry.a as usize;
        self.pos = lt;
        if self.stack.is_empty() {
            return Err(self.err("expected an element name, found an end tag"));
        }
        self.event_start = lt;
        // Fast path: the tape already recorded this tag's `>`, and on
        // well-formed input the bytes between `</` and `>` are exactly the
        // open element's name — one slice compare replaces the per-byte
        // name scan. Any mismatch (trailing whitespace, wrong name,
        // malformed tag) falls through to the scalar-identical slow path
        // so errors keep exact parity.
        if entry.flags & flags::UNCLOSED == 0 {
            let open = *self.stack.last().expect("checked non-empty");
            let open_name = self.names.get(open.id);
            let gt = entry.b as usize;
            if self.bytes.get(lt + 2..gt) == Some(open_name.as_bytes()) {
                self.stack.pop();
                self.pos = gt + 1;
                return Ok(PullEvent::End {
                    name: open_name,
                    id: open.id,
                });
            }
        }
        self.pos = lt + 2;
        let close_name = self.name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err("malformed end tag"));
        }
        self.pos += 1;
        let open = self.stack.pop().expect("checked non-empty");
        let open_name = self.names.get(open.id);
        if open_name != close_name {
            return Err(self.err(&format!(
                "mismatched end tag: expected </{open_name}>, found </{close_name}>"
            )));
        }
        Ok(PullEvent::End {
            name: close_name,
            id: open.id,
        })
    }

    /// Emits the event for a `Doctype` tape entry, re-lexing the details
    /// from the recorded span.
    fn doctype_event(&mut self, entry: TapeEntry) -> Result<PullEvent<'a>, XmlError> {
        let lt = entry.a as usize;
        self.event_start = lt;
        self.pos = lt + "<!DOCTYPE".len();
        self.skip_ws();
        let name = self.name()?;
        let mut internal = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'[') => {
                    self.pos += 1;
                    let start = self.pos;
                    let end = scan::find_byte(self.bytes, self.pos, b']')
                        .ok_or_else(|| self.err("unterminated internal DTD subset"))?;
                    internal = Some(&self.text[start..end]);
                    self.pos = end + 1;
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
        Ok(PullEvent::Doctype { name, internal })
    }

    /// The tape ran out: replay the builder's terminal scan error if there
    /// is one, otherwise check document-level completeness.
    fn end_of_tape(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        if let Some(e) = self.tape().error() {
            // One precedence nit the scalar lexer resolves the other way:
            // outside the root it reports stray CDATA before noticing the
            // section never closes.
            if e.message == "unterminated CDATA section" && self.stack.is_empty() {
                return Err(self.err_at(e.offset, "character data outside the root element"));
            }
            return Err(self.err_at(e.offset, e.message));
        }
        self.pos = self.bytes.len();
        if !self.stack.is_empty() {
            return Err(self.err("unexpected end of input inside element"));
        }
        if !self.seen_root {
            return Err(self.err("expected a document element"));
        }
        self.state = State::Done;
        Ok(None)
    }

    fn advance(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        if let Some(e) = self.queued.take() {
            return Ok(Some(e));
        }
        if self.state != State::Active {
            return Ok(None);
        }
        loop {
            let Some(&entry) = self.tape().entries().get(self.cursor) else {
                return self.end_of_tape();
            };
            self.cursor += 1;
            match entry.kind {
                EntryKind::Text => {
                    let (start, end) = (entry.a as usize, entry.b as usize);
                    if self.stack.is_empty() {
                        // Only whitespace is allowed outside the root. The
                        // tape flag settles clean spans with no re-scan.
                        if entry.flags & flags::ALL_WS == 0 {
                            if let Some(i) = self.bytes[start..end]
                                .iter()
                                .position(|&b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
                            {
                                self.pos = start + i;
                                return Err(self.err(
                                    "expected markup, found character data outside the root element",
                                ));
                            }
                        }
                        self.pos = end;
                        continue;
                    }
                    self.event_start = start;
                    let text = if entry.flags & flags::HAS_AMP != 0 {
                        Cow::Owned(self.expand_entities(start, end)?)
                    } else {
                        Cow::Borrowed(&self.text[start..end])
                    };
                    self.pos = end;
                    self.last_text_all_ws = entry.flags & flags::ALL_WS != 0;
                    return Ok(Some(PullEvent::Text(text)));
                }
                EntryKind::Open => return self.open_event(entry).map(Some),
                EntryKind::Close => return self.close_event(entry).map(Some),
                EntryKind::Cdata => {
                    let lt = entry.a as usize;
                    if self.stack.is_empty() {
                        self.pos = lt;
                        return Err(self.err("character data outside the root element"));
                    }
                    self.event_start = lt;
                    let content = &self.text[lt + 9..entry.b as usize];
                    self.pos = entry.b as usize + 3;
                    // CDATA content is never classified on the tape.
                    self.last_text_all_ws = false;
                    return Ok(Some(PullEvent::Text(Cow::Borrowed(content))));
                }
                EntryKind::Doctype => return self.doctype_event(entry).map(Some),
            }
        }
    }

    /// Skips the content and end tag of the innermost open element in O(1):
    /// the structural index paired the tags at build time, so this is a
    /// single hop to the recorded resume point — no byte in between is
    /// rescanned (reported as [`SubtreeSkip::hops`]).
    ///
    /// Must be called *just after* the element's [`PullEvent::Start`] was
    /// returned. The element's own end tag is consumed; the next event is
    /// whatever follows it. Returns how many bytes and tag events were
    /// skipped without lexing.
    ///
    /// It intentionally does **not** check that end-tag names match
    /// start-tag names inside the skipped region — skipped subtrees trade
    /// well-formedness *checking* for speed, which is exactly the paper's
    /// cost model (work proportional to the decided part of the document).
    /// On well-formed input it lands byte-for-byte where depth-counted
    /// event consumption would (property-tested).
    ///
    /// # Errors
    /// Returns `Err` if the input ends before the subtree closes, if the
    /// scan found an unterminated comment/CDATA/PI, or if no element is
    /// open.
    pub fn skip_subtree(&mut self) -> Result<SubtreeSkip, XmlError> {
        if let Some(queued) = self.queued.take() {
            // A self-closing element: its End event is already lexed and
            // queued; consuming it is the whole skip.
            debug_assert!(matches!(queued, PullEvent::End { .. }));
            return Ok(SubtreeSkip::default());
        }
        if self.stack.is_empty() || self.state != State::Active {
            return Err(self.err("skip_subtree called with no open element"));
        }
        let open = *self.stack.last().expect("checked non-empty");
        if open.resume == u32::MAX {
            // The subtree never closes. Surface the builder's scan error if
            // it recorded one; otherwise the input simply ran out.
            return Err(match self.tape().error() {
                Some(e) => self.err_at(e.offset, e.message),
                None => self.err_at(self.bytes.len(), "unexpected end of input inside element"),
            });
        }
        let start = self.pos;
        let close = self.tape().entries()[open.resume as usize - 1];
        debug_assert_eq!(close.kind, EntryKind::Close);
        self.cursor = open.resume as usize;
        self.pos = close.b as usize + 1;
        self.stack.pop();
        Ok(SubtreeSkip {
            bytes: self.pos - start,
            events: open.events as usize,
            hops: 1,
        })
    }
}

impl<'a> Iterator for PullParser<'a> {
    type Item = Result<PullEvent<'a>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Builds an [`XmlError`] at `offset`, computing line/column on demand.
pub(crate) fn err_at(bytes: &[u8], offset: usize, message: &str) -> XmlError {
    let mut line = 1;
    let mut col = 1;
    for &b in &bytes[..offset.min(bytes.len())] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    XmlError {
        offset,
        line,
        column: col,
        message: message.to_owned(),
    }
}

#[inline]
pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// 256-entry classification table for name characters: the name scan runs
/// once per tag, so each byte costs one indexed load instead of a chain of
/// range compares.
static NAME_CHAR: [bool; 256] = {
    let mut table = [false; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        table[b] = c.is_ascii_alphanumeric() || c >= 0x80 || matches!(c, b'_' | b':' | b'.' | b'-');
        b += 1;
    }
    table
};

#[inline]
pub(crate) fn is_name_char(b: u8) -> bool {
    NAME_CHAR[b as usize]
}

/// The lexer-level name interner: borrowed keys, dense ids, word-at-a-time
/// hashing with open addressing. One (cheap) hash per name occurrence, one id
/// thereafter — consumers resolve each *distinct* name against heavier
/// structures (e.g. the schema [`Alphabet`](../../schemacast_regex/struct.Alphabet.html))
/// exactly once.
#[derive(Clone, Default)]
pub(crate) struct NameTable<'a> {
    names: Vec<&'a str>,
    /// Open-addressing buckets holding `index + 1` (`0` = empty).
    buckets: Vec<u32>,
}

impl<'a> NameTable<'a> {
    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }

    pub(crate) fn get(&self, id: NameId) -> &'a str {
        self.names[id.index()]
    }

    pub(crate) fn intern(&mut self, name: &'a str) -> NameId {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 16];
        } else if (self.names.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut slot = hash_name(name.as_bytes()) as usize & mask;
        loop {
            match self.buckets[slot] {
                0 => {
                    let id = NameId(self.names.len() as u32);
                    self.names.push(name);
                    self.buckets[slot] = id.0 + 1;
                    return id;
                }
                occupied => {
                    let idx = (occupied - 1) as usize;
                    if self.names[idx] == name {
                        return NameId(occupied - 1);
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (idx, name) in self.names.iter().enumerate() {
            let mut slot = hash_name(name.as_bytes()) as usize & mask;
            while buckets[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = idx as u32 + 1;
        }
        self.buckets = buckets;
    }
}

/// Hashes a name word-at-a-time: one load + multiply-mix per 8 bytes
/// instead of a serially dependent multiply per byte (names are hashed on
/// every start-tag occurrence, so this sits on the tokenizer hot path).
fn hash_name(bytes: &[u8]) -> u64 {
    const MIX: u64 = 0xff51_afd7_ed55_8ccd;
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(MIX);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = 0u64;
        for (i, &b) in rem.iter().enumerate() {
            w |= u64::from(b) << (8 * i);
        }
        h = (h ^ w).wrapping_mul(MIX);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_document, XmlElement, XmlNode};

    fn events(input: &str) -> Vec<PullEvent<'_>> {
        PullParser::new(input)
            .collect::<Result<Vec<_>, _>>()
            .expect("parses")
    }

    #[test]
    fn basic_event_stream() {
        let ev = events("<a x=\"1\"><b/>hi &amp; bye</a>");
        assert_eq!(ev.len(), 5);
        match &ev[0] {
            PullEvent::Start {
                name, attributes, ..
            } => {
                assert_eq!(*name, "a");
                assert_eq!(attributes.len(), 1);
                let pairs: Vec<_> = attributes.iter().collect();
                assert_eq!(pairs[0].0, "x");
                assert_eq!(pairs[0].1, "1");
            }
            other => panic!("expected Start, got {other:?}"),
        }
        assert!(matches!(&ev[1], PullEvent::Start { name, .. } if *name == "b"));
        assert!(matches!(&ev[2], PullEvent::End { name, .. } if *name == "b"));
        assert!(matches!(&ev[3], PullEvent::Text(t) if t == "hi & bye"));
        assert!(matches!(&ev[4], PullEvent::End { name, .. } if *name == "a"));
    }

    #[test]
    fn doctype_event() {
        let ev = events("<!DOCTYPE po [<!ELEMENT po EMPTY>]><po/>");
        assert!(matches!(&ev[0], PullEvent::Doctype { name, internal }
            if *name == "po" && *internal == Some("<!ELEMENT po EMPTY>")));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["<a>", "<a></b>", "<a/><b/>", "text", "<a>&bogus;</a>"] {
            let r: Result<Vec<_>, _> = PullParser::new(bad).collect();
            assert!(r.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn name_ids_are_dense_and_stable() {
        let mut p = PullParser::new("<a><b/><b/><a/></a>");
        let mut ids = Vec::new();
        for ev in p.by_ref() {
            if let PullEvent::Start { name, id, .. } = ev.expect("ok") {
                ids.push((name, id));
            }
        }
        assert_eq!(
            ids,
            vec![
                ("a", NameId(0)),
                ("b", NameId(1)),
                ("b", NameId(1)),
                ("a", NameId(0)),
            ]
        );
        assert_eq!(p.name_count(), 2);
        assert_eq!(p.name_of(NameId(0)), "a");
        assert_eq!(p.name_of(NameId(1)), "b");
    }

    #[test]
    fn borrowed_on_fast_path_owned_only_for_entities() {
        let input = "<a k=\"plain\" e=\"x&amp;y\">text<![CDATA[raw]]>with &lt; entity</a>";
        for ev in events(input) {
            match ev {
                PullEvent::Start { attributes, .. } => {
                    for (n, v) in &attributes {
                        match n {
                            "k" => assert!(matches!(v, Cow::Borrowed(_))),
                            "e" => {
                                assert!(matches!(v, Cow::Owned(_)));
                                assert_eq!(v, "x&y");
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                PullEvent::Text(t) => match &*t {
                    "text" | "raw" => assert!(matches!(t, Cow::Borrowed(_))),
                    "with < entity" => assert!(matches!(t, Cow::Owned(_))),
                    other => panic!("unexpected text {other:?}"),
                },
                _ => {}
            }
        }
    }

    #[test]
    fn offsets_track_event_markup() {
        let input = "<a><b>hi</b></a>";
        let mut p = PullParser::new(input);
        let mut offsets = Vec::new();
        while let Some(ev) = p.next() {
            ev.expect("ok");
            offsets.push(p.last_event_offset());
        }
        // <a> at 0, <b> at 3, "hi" at 6, </b> at 8, </a> at 12.
        assert_eq!(offsets, vec![0, 3, 6, 8, 12]);
        assert_eq!(p.offset(), input.len());
    }

    #[test]
    fn skip_subtree_lands_after_matching_end_tag() {
        let input = "<r><skip a=\">\"><inner>]]&gt;</inner><!-- <fake> --><x/></skip><next/></r>";
        let mut p = PullParser::new(input);
        // <r>
        assert!(matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "r"));
        // <skip ...>
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "skip")
        );
        let skipped = p.skip_subtree().expect("skips");
        assert!(skipped.bytes > 0);
        assert_eq!(skipped.events, 5); // <inner>, </inner>, <x/> (×2), </skip>
        assert_eq!(skipped.hops, 1); // one indexed hop, zero bytes rescanned
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "next")
        );
    }

    #[test]
    fn skip_subtree_on_self_closing_consumes_queued_end() {
        let mut p = PullParser::new("<r><leaf/><next/></r>");
        p.next().unwrap().unwrap(); // <r>
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "leaf")
        );
        let skipped = p.skip_subtree().expect("skips");
        assert_eq!(skipped, SubtreeSkip::default());
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "next")
        );
    }

    #[test]
    fn skip_subtree_handles_tricky_payloads() {
        // ']]>' inside text, '>' inside attribute values, comments and CDATA
        // containing tags.
        let input =
            "<r><s q='a>b'>x ]]> y<![CDATA[</s>]]><!-- </s> --><t u=\"/>\">z</t></s><after/></r>";
        let mut p = PullParser::new(input);
        p.next().unwrap().unwrap(); // <r>
        p.next().unwrap().unwrap(); // <s>
        p.skip_subtree().expect("skips");
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "after")
        );
    }

    #[test]
    fn skip_subtree_err_cases() {
        let mut p = PullParser::new("<a><b>unclosed");
        p.next().unwrap().unwrap(); // <a>
        p.next().unwrap().unwrap(); // <b>
        assert!(p.skip_subtree().is_err());

        let mut p = PullParser::new("<a/>");
        assert!(matches!(
            p.next().unwrap().unwrap(),
            PullEvent::Start { .. }
        ));
        // Queued end: fine.
        assert!(p.skip_subtree().is_ok());
        // Nothing open anymore.
        assert!(p.skip_subtree().is_err());
    }

    #[test]
    fn with_index_runs_off_a_reused_tape() {
        let mut tape = StructuralIndex::new();
        for doc in ["<a><b>hi</b></a>", "<x y='1'/>", "<r>&amp;</r>"] {
            tape.rebuild(doc);
            let borrowed: Vec<_> = PullParser::with_index(doc, &tape)
                .collect::<Result<Vec<_>, _>>()
                .expect("parses");
            let owned: Vec<_> = PullParser::new(doc)
                .collect::<Result<Vec<_>, _>>()
                .expect("parses");
            assert_eq!(borrowed, owned);
        }
    }

    /// Build a DOM from pull events and compare against the DOM parser on a
    /// battery of documents.
    #[test]
    fn agrees_with_dom_parser() {
        fn build(input: &str) -> Result<XmlElement, crate::error::XmlError> {
            let mut stack: Vec<XmlElement> = Vec::new();
            let mut root: Option<XmlElement> = None;
            for ev in PullParser::new(input) {
                match ev? {
                    PullEvent::Doctype { .. } => {}
                    PullEvent::Start {
                        name, attributes, ..
                    } => {
                        let mut e = XmlElement::new(name);
                        e.attributes = attributes
                            .into_iter()
                            .map(|(n, v)| (n.to_owned(), v.into_owned()))
                            .collect();
                        stack.push(e);
                    }
                    PullEvent::End { .. } => {
                        let e = stack.pop().expect("balanced");
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(XmlNode::Element(e)),
                            None => root = Some(e),
                        }
                    }
                    PullEvent::Text(t) => {
                        if let Some(parent) = stack.last_mut() {
                            // Coalesce adjacent text like the DOM parser.
                            if let Some(XmlNode::Text(prev)) = parent.children.last_mut() {
                                prev.push_str(&t);
                            } else if !t.is_empty() {
                                parent.children.push(XmlNode::Text(t.into_owned()));
                            }
                        }
                    }
                }
            }
            Ok(root.expect("root"))
        }

        for doc in [
            "<a><b><c/></b><b/></a>",
            "<t>&lt;x&gt; &#65;</t>",
            "<a>\n  <b>text</b>\n  <c/>\n</a>",
            "<r><![CDATA[<raw>]]>tail</r>",
            r#"<x a="1" b='two'/>"#,
            "<?xml version=\"1.0\"?><!-- c --><r><k>v</k></r>",
        ] {
            let via_pull = build(doc).expect("pull parses");
            let via_dom = parse_document(doc).expect("dom parses").root;
            assert_eq!(via_pull, via_dom, "document {doc:?}");
        }
    }

    #[test]
    fn depth_is_bounded_by_nesting() {
        let mut p = PullParser::new("<a><b><c>x</c></b></a>");
        let mut max_depth = 0;
        while let Some(ev) = p.next() {
            ev.expect("ok");
            max_depth = max_depth.max(p.depth());
        }
        assert_eq!(max_depth, 3);
    }
}
